//! Criterion bench backing **Figure 11**: scheduling delay as S5 scales
//! 1×/3×/5× in service count (10× is covered by the fig10_fig11 binary;
//! MIG-serving at 10× is too slow for criterion's repetition model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_sched_scale(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(parva_baselines::Gpulet::new()),
        Box::new(parva_baselines::MigServing::new(&book)),
        Box::new(ParvaGpu::new(&book)),
    ];

    let mut group = c.benchmark_group("fig11_sched_scale");
    group.sample_size(10);
    for k in [1u32, 3, 5] {
        let specs = Scenario::S5.scaled(k);
        for sched in &schedulers {
            group.bench_with_input(
                BenchmarkId::new(sched.name(), format!("{k}x")),
                &specs,
                |b, specs| b.iter(|| sched.schedule(std::hint::black_box(specs)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sched_scale);
criterion_main!(benches);
