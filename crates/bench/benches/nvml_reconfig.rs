//! Microbench: the deployment-execution layer — applying a full S2 map to
//! the simulated NVML fleet, and computing + applying the minimal §III-F
//! reconfiguration diff. The paper quotes "milliseconds to a few seconds"
//! for physical MIG/MPS switches; the *planning* side measured here must be
//! negligible against that.

use criterion::{criterion_group, criterion_main, Criterion};
use parva_core::{reconfigure, ParvaGpu};
use parva_deploy::ServiceSpec;
use parva_mig::GpuModel;
use parva_nvml::{apply_deployment, apply_diff, diff_deployments, SimNvml};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_nvml(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = Scenario::S2.services();
    let (services, before) = sched.plan(&specs).expect("S2 feasible");
    let spike = ServiceSpec::new(
        8,
        specs[8].model,
        specs[8].request_rate_rps * 3.0,
        specs[8].slo.latency_ms,
    );
    let outcome = reconfigure::update_service(&sched, &before, &services, spike).expect("reconfig");
    let diff = diff_deployments(&before, &outcome.deployment);

    let mut group = c.benchmark_group("nvml");
    group.bench_function("apply_s2_deployment", |b| {
        b.iter(|| {
            let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
            apply_deployment(&mut nvml, std::hint::black_box(&before)).unwrap()
        })
    });
    group.bench_function("diff_s2_reconfig", |b| {
        b.iter(|| diff_deployments(std::hint::black_box(&before), &outcome.deployment))
    });
    group.bench_function("apply_s2_diff", |b| {
        b.iter(|| {
            let mut nvml = SimNvml::new(0, GpuModel::A100_80GB);
            apply_deployment(&mut nvml, &before).unwrap();
            apply_diff(&mut nvml, std::hint::black_box(&diff)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nvml);
criterion_main!(benches);
