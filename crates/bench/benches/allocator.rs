//! Microbench: the GPU Segment Allocator (Algorithm 2) — relocation alone
//! vs. the full pipeline with Allocation Optimization and the fill pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parva_core::allocator::{allocate, relocate, AllocatorConfig};
use parva_core::configurator::configure;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_allocator(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let mut group = c.benchmark_group("allocator");
    for (label, scenario, k) in [
        ("S2", Scenario::S2, 1u32),
        ("S5", Scenario::S5, 1),
        ("S5x4", Scenario::S5, 4),
    ] {
        let specs = scenario.scaled(k);
        let services = configure(&specs, &book, 3).unwrap();
        group.bench_with_input(
            BenchmarkId::new("relocate_only", label),
            &services,
            |b, services| b.iter(|| relocate(std::hint::black_box(services))),
        );
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", label),
            &services,
            |b, services| {
                b.iter(|| allocate(std::hint::black_box(services), &AllocatorConfig::default()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
