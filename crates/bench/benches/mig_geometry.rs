//! Microbench: MIG geometry substrate — configuration derivation and
//! placement throughput (the allocator's hot inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use parva_mig::{all_configurations, GpuState, InstanceProfile};

fn bench_mig(c: &mut Criterion) {
    c.bench_function("mig/derive_19_configurations", |b| {
        b.iter(|| {
            let configs = all_configurations();
            assert_eq!(configs.len(), 19);
            configs
        })
    });

    c.bench_function("mig/place_remove_cycle", |b| {
        let mut gpu = GpuState::new();
        b.iter(|| {
            let p4 = gpu.place(InstanceProfile::G4).unwrap();
            let p2 = gpu.place(InstanceProfile::G2).unwrap();
            let p1 = gpu.place(InstanceProfile::G1).unwrap();
            gpu.remove(p1);
            gpu.remove(p2);
            gpu.remove(p4);
        })
    });

    c.bench_function("mig/find_start_on_fragmented", |b| {
        let mut gpu = GpuState::new();
        gpu.place(InstanceProfile::G3).unwrap();
        gpu.place(InstanceProfile::G1).unwrap();
        b.iter(|| std::hint::black_box(gpu.find_start(InstanceProfile::G2)));
    });
}

criterion_group!(benches, bench_mig);
criterion_main!(benches);
