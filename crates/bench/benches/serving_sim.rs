//! Macrobench: the serving simulator's event throughput — one second of
//! simulated S2 serving under a ParvaGPU deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::{ServingConfig, Simulation};

fn bench_serving(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let deployment = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let config = ServingConfig {
        warmup_s: 0.2,
        duration_s: 1.0,
        drain_s: 0.5,
        seed: 42,
        ..Default::default()
    };

    let mut group = c.benchmark_group("serving_sim");
    group.sample_size(10);
    group.bench_function("s2_one_second", |b| {
        b.iter(|| {
            Simulation::new(std::hint::black_box(&deployment), &specs)
                .config(&config)
                .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
