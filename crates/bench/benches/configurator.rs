//! Microbench: the GPU Segment Configurator (Algorithm 1). The paper's
//! complexity claim is O(N·I·B·P) = O(N) for the fixed profiling grid
//! (§III-G); this bench demonstrates the linear scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parva_core::configurator::configure;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_configurator(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let mut group = c.benchmark_group("configurator");
    for k in [1u32, 2, 4, 8] {
        let specs = Scenario::S2.scaled(k);
        group.bench_with_input(
            BenchmarkId::new("configure", format!("{}svc", specs.len())),
            &specs,
            |b, specs| b.iter(|| configure(std::hint::black_box(specs), &book, 3).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_configurator);
criterion_main!(benches);
