//! Microbench: scheduling delay of every Table I framework on one shared
//! workload (Fig. 9's per-framework cost, isolated from the serving
//! simulation). GSLICE and PARIS+ELSA cannot take the Table IV rates (no
//! multi-GPU / multi-instance scale-out), so all frameworks are compared on
//! a rate-reduced S2 every one of them can schedule.

use criterion::{criterion_group, criterion_main, Criterion};
use parva_baselines::{Gpulet, Gslice, IGniter, MigServing, ParisElsa};
use parva_core::ParvaGpu;
use parva_deploy::{Scheduler, ServiceSpec};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

/// S2 with every rate scaled down to single-instance feasibility.
fn feasible_everywhere() -> Vec<ServiceSpec> {
    Scenario::S2
        .services()
        .into_iter()
        .map(|s| {
            ServiceSpec::new(
                s.id,
                s.model,
                (s.request_rate_rps * 0.25).max(5.0),
                s.slo.latency_ms,
            )
        })
        .collect()
}

fn bench_baselines(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let specs = feasible_everywhere();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Gslice::new()),
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(ParisElsa::new()),
        Box::new(MigServing::new(&book)),
        Box::new(ParvaGpu::new(&book)),
    ];
    // Sanity: every framework must actually schedule the reduced set.
    for sched in &schedulers {
        sched
            .schedule(&specs)
            .unwrap_or_else(|e| panic!("{} failed the shared workload: {e}", sched.name()));
    }
    let mut group = c.benchmark_group("baseline_scheduling");
    for sched in &schedulers {
        group.bench_function(sched.name(), |b| {
            b.iter(|| sched.schedule(std::hint::black_box(&specs)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
