//! Criterion bench backing **Figure 9**: scheduling delay of every
//! framework on scenarios S1, S2 and S5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parva_core::{ParvaGpu, ParvaGpuSingle};
use parva_deploy::Scheduler;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn bench_sched_delay(c: &mut Criterion) {
    let book = ProfileBook::builtin();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(parva_baselines::Gpulet::new()),
        Box::new(parva_baselines::IGniter::new()),
        Box::new(parva_baselines::MigServing::new(&book)),
        Box::new(ParvaGpuSingle::new(&book)),
        Box::new(ParvaGpu::new(&book)),
    ];

    let mut group = c.benchmark_group("fig9_sched_delay");
    group.sample_size(10);
    for sc in [Scenario::S1, Scenario::S2, Scenario::S5] {
        let specs = sc.services();
        for sched in &schedulers {
            // iGniter cannot schedule S5 — skip rather than bench an error.
            if sched.name() == "iGniter" && sc == Scenario::S5 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(sched.name(), sc.label()),
                &specs,
                |b, specs| b.iter(|| sched.schedule(std::hint::black_box(specs)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sched_delay);
criterion_main!(benches);
