//! Regenerates **Figure 9**: scheduling delay (log₁₀ ms) per scenario.
//! Pure scheduler wall-clock; run with `--release` for meaningful numbers.

use parva_bench::{evaluate_scenario, write_csv};
use parva_metrics::{log_ms, TextTable};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let mut table = TextTable::new(vec![
        "scenario",
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);
    println!("Figure 9 — scheduling delay (log10 ms) per scenario\n");
    for sc in Scenario::ALL {
        let eval = evaluate_scenario(&book, sc, false, &ServingConfig::default());
        let cell = |name: &str| {
            eval.results
                .iter()
                .find(|r| r.name == name)
                .map_or("n/a".to_string(), |r| {
                    if r.deployment.is_ok() {
                        format!("{:.2}", log_ms(r.delay))
                    } else {
                        "fail".to_string()
                    }
                })
        };
        table.row(vec![
            sc.label().to_string(),
            cell("gpulet"),
            cell("iGniter"),
            cell("MIG-serving"),
            cell("ParvaGPU-single"),
            cell("ParvaGPU"),
        ]);
    }
    println!("{}", table.render());
    write_csv("fig9_scheduling_delay.csv", &table.to_csv());
}
