//! Runs every experiment of the paper end to end and writes all CSVs under
//! `results/`. Scenario evaluations (which include serving simulations) run
//! in parallel across scenarios via std scoped threads.
//!
//! Usage: `cargo run --release -p parva-bench --bin repro_all`

use parva_bench::{evaluate_scenario, write_csv, ScenarioEval};
use parva_metrics::{log_ms, TextTable};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn column(
    eval: &ScenarioEval,
    name: &str,
    f: impl Fn(&parva_bench::FrameworkResult) -> String,
) -> String {
    eval.results
        .iter()
        .find(|r| r.name == name)
        .map_or("n/a".into(), f)
}

fn main() {
    let book = ProfileBook::builtin();
    let serving = ServingConfig::default();

    println!("== ParvaGPU reproduction: all experiments ==\n");

    // Scenario-based figures (5, 6, 7, 8, 9) — evaluate each scenario once
    // with serving, in parallel.
    let mut evals: Vec<Option<ScenarioEval>> = vec![None; Scenario::ALL.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for sc in Scenario::ALL {
            let book = &book;
            let serving = &serving;
            handles.push((
                sc,
                scope.spawn(move || evaluate_scenario(book, sc, true, serving)),
            ));
        }
        for (i, (sc, h)) in handles.into_iter().enumerate() {
            evals[i] = Some(h.join().expect("scenario evaluation panicked"));
            eprintln!("  evaluated {sc}");
        }
    });
    let evals: Vec<ScenarioEval> = evals.into_iter().map(|e| e.expect("filled")).collect();

    let frameworks = [
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-unoptimized",
        "ParvaGPU-single",
        "ParvaGPU",
    ];

    // Fig. 5 — GPU counts.
    let mut fig5 = TextTable::new(
        std::iter::once("scenario")
            .chain(frameworks)
            .collect::<Vec<_>>(),
    );
    for e in &evals {
        let mut row = vec![e.scenario.label().to_string()];
        for fw in frameworks {
            row.push(column(e, fw, |r| {
                r.gpus().map_or("fail".into(), |g| g.to_string())
            }));
        }
        fig5.row(row);
    }
    println!("\nFigure 5 — total GPUs\n{}", fig5.render());
    write_csv("fig5_gpu_counts.csv", &fig5.to_csv());

    // Fig. 6 — internal slack.
    let mut fig6 = TextTable::new(
        std::iter::once("scenario")
            .chain(frameworks)
            .collect::<Vec<_>>(),
    );
    for e in &evals {
        let mut row = vec![e.scenario.label().to_string()];
        for fw in frameworks {
            row.push(column(e, fw, |r| {
                r.slack
                    .map_or("fail".into(), |s| format!("{:.1}", s * 100.0))
            }));
        }
        fig6.row(row);
    }
    println!("\nFigure 6 — internal slack (%)\n{}", fig6.render());
    write_csv("fig6_internal_slack.csv", &fig6.to_csv());

    // Fig. 7 — external fragmentation.
    let mut fig7 = TextTable::new(
        std::iter::once("scenario")
            .chain(frameworks)
            .collect::<Vec<_>>(),
    );
    for e in &evals {
        let mut row = vec![e.scenario.label().to_string()];
        for fw in frameworks {
            row.push(column(e, fw, |r| {
                r.fragmentation
                    .map_or("fail".into(), |f| format!("{:.1}", f * 100.0))
            }));
        }
        fig7.row(row);
    }
    println!("\nFigure 7 — external fragmentation (%)\n{}", fig7.render());
    write_csv("fig7_external_fragmentation.csv", &fig7.to_csv());

    // Fig. 8 — SLO compliance.
    let mut fig8 = TextTable::new(
        std::iter::once("scenario")
            .chain(frameworks)
            .collect::<Vec<_>>(),
    );
    for e in &evals {
        let mut row = vec![e.scenario.label().to_string()];
        for fw in frameworks {
            row.push(column(e, fw, |r| {
                r.compliance
                    .map_or("fail".into(), |c| format!("{:.2}", c * 100.0))
            }));
        }
        fig8.row(row);
    }
    println!("\nFigure 8 — SLO compliance (%)\n{}", fig8.render());
    write_csv("fig8_slo_compliance.csv", &fig8.to_csv());

    // Fig. 9 — scheduling delay.
    let mut fig9 = TextTable::new(
        std::iter::once("scenario")
            .chain(frameworks)
            .collect::<Vec<_>>(),
    );
    for e in &evals {
        let mut row = vec![e.scenario.label().to_string()];
        for fw in frameworks {
            row.push(column(e, fw, |r| {
                if r.deployment.is_ok() {
                    format!("{:.2}", log_ms(r.delay))
                } else {
                    "fail".into()
                }
            }));
        }
        fig9.row(row);
    }
    println!(
        "\nFigure 9 — scheduling delay (log10 ms)\n{}",
        fig9.render()
    );
    write_csv("fig9_scheduling_delay.csv", &fig9.to_csv());

    println!("\nScenario figures complete. Run the remaining binaries for the rest:");
    println!("  table1, fig1, fig3_fig4, table4, fig10_fig11      (paper tables/figures)");
    println!(
        "  cost_table, disc_llm, ext_shadow                  (cost + \u{a7}V/\u{a7}III-F analyses)"
    );
    println!("  ablation_threshold, ablation_profile_noise, ablation_burstiness, autoscale_trace");
}
