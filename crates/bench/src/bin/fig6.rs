//! Regenerates **Figure 6**: GPU internal slack (%) per scenario, measured
//! by the serving simulator via Eq. 3 (1 − SM-weighted activity).
//!
//! Run with `--release`; each scenario×framework runs a full serving
//! simulation.

use parva_bench::{evaluate_scenario, write_csv};
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let serving = ServingConfig::default();
    let mut table = TextTable::new(vec![
        "scenario",
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);
    println!("Figure 6 — internal slack (%) per scenario (Eq. 3)\n");
    for sc in Scenario::ALL {
        let eval = evaluate_scenario(&book, sc, true, &serving);
        let cell = |name: &str| {
            eval.results
                .iter()
                .find(|r| r.name == name)
                .and_then(|r| r.slack)
                .map_or("fail".to_string(), |s| format!("{:.1}", s * 100.0))
        };
        table.row(vec![
            sc.label().to_string(),
            cell("gpulet"),
            cell("iGniter"),
            cell("MIG-serving"),
            cell("ParvaGPU-single"),
            cell("ParvaGPU"),
        ]);
        eprintln!("  {sc} done");
    }
    println!("{}", table.render());
    write_csv("fig6_internal_slack.csv", &table.to_csv());
}
