//! Regenerates **Figure 8**: SLO compliance rate (%) per scenario, measured
//! by the serving simulator (fraction of batches meeting the client SLO).
//!
//! Run with `--release`.

use parva_bench::{evaluate_scenario, write_csv};
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let serving = ServingConfig::default();
    let mut table = TextTable::new(vec![
        "scenario",
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);
    println!("Figure 8 — SLO compliance rate (%) per scenario\n");
    for sc in Scenario::ALL {
        let eval = evaluate_scenario(&book, sc, true, &serving);
        let cell = |name: &str| {
            eval.results
                .iter()
                .find(|r| r.name == name)
                .and_then(|r| r.compliance)
                .map_or("fail".to_string(), |c| format!("{:.2}", c * 100.0))
        };
        table.row(vec![
            sc.label().to_string(),
            cell("gpulet"),
            cell("iGniter"),
            cell("MIG-serving"),
            cell("ParvaGPU-single"),
            cell("ParvaGPU"),
        ]);
        eprintln!("  {sc} done");
    }
    println!("{}", table.render());
    write_csv("fig8_slo_compliance.csv", &table.to_csv());
}
