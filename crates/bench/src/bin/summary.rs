//! Stitches every regenerated CSV under `results/` into `results/SUMMARY.md`
//! — one markdown document in the paper's table/figure order (see
//! `parva_metrics::summary::MANIFEST`). Run it after `repro_all` and the
//! per-figure binaries.

use parva_metrics::build_summary;
use std::path::PathBuf;

fn main() {
    let results: PathBuf = std::env::var_os("PARVA_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    let summary = build_summary(&results);
    let out = results.join("SUMMARY.md");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(&out, &summary).expect("write SUMMARY.md");
    println!("wrote {} ({} bytes)", out.display(), summary.len());
}
