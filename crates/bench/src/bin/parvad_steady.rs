//! Steady-state daemon benchmark: boots parvad on a three-service
//! catalogue and prices its three control-plane hot paths —
//!
//! * **epoch throughput** — serving epochs advanced per wall second under
//!   a steady Poisson load with the default decision cadence running
//!   (`epochs_per_sec`, plus the offered-request volume behind it),
//! * **checkpoint** — wall time to freeze the full daemon (engine,
//!   estimator, placement) to its checksummed JSON envelope and to thaw
//!   it back, plus the envelope's byte size,
//! * **autoscale decision** — mean wall time of one `decide()` pass while
//!   a demand swing forces incremental re-plans with measured recovery.
//!
//! Writes `results/BENCH_parvad.json`. Simulation outputs are unaffected:
//! the daemon runs here are byte-identical to untimed runs at the same
//! seed.
//!
//! Usage: `parvad_steady [--quick] [--out <file>]`

use parva_deploy::ServiceSpec;
use parva_obs::NullSink;
use parva_perf::Model;
use parva_serve::ArrivalProcess;
use parvad::{AutoscalePolicy, Daemon};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct SteadyPerf {
    epochs: u64,
    epochs_per_sec: f64,
    offered_requests: u64,
    wall_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CheckpointPerf {
    bytes: u64,
    encode_ms: f64,
    decode_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct DecisionPerf {
    decisions: u64,
    reconfigs: u64,
    mean_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchDoc {
    schema: String,
    quick: bool,
    steady: SteadyPerf,
    checkpoint: CheckpointPerf,
    decision: DecisionPerf,
}

fn catalogue() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(1, Model::ResNet50, 1200.0, 205.0),
        ServiceSpec::new(2, Model::MobileNetV2, 1000.0, 167.0),
        ServiceSpec::new(3, Model::DenseNet121, 450.0, 183.0),
    ]
}

fn steady(epochs: u64) -> (SteadyPerf, Daemon) {
    let mut daemon = Daemon::new(
        &catalogue(),
        ArrivalProcess::Poisson,
        42,
        500_000,
        AutoscalePolicy::default(),
    )
    .expect("catalogue plans");
    let mut sink = NullSink;
    let start = Instant::now();
    for _ in 0..epochs {
        daemon.step(&mut sink);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let offered: u64 = daemon.report().services.iter().map(|s| s.offered).sum();
    (
        SteadyPerf {
            epochs,
            epochs_per_sec: f64::from(u32::try_from(epochs).unwrap_or(u32::MAX))
                / (wall_ms / 1e3).max(f64::MIN_POSITIVE),
            offered_requests: offered,
            wall_ms,
        },
        daemon,
    )
}

fn checkpoint(daemon: &Daemon, reps: u32) -> CheckpointPerf {
    let envelope = parvad::encode_checkpoint(daemon).expect("daemon serializes");
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(parvad::encode_checkpoint(daemon).expect("daemon serializes"));
    }
    let encode_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let start = Instant::now();
    for _ in 0..reps {
        let thawed: Daemon = parvad::decode_checkpoint(&envelope).expect("envelope decodes");
        assert_eq!(thawed.epoch(), daemon.epoch(), "resume must land on-epoch");
    }
    let decode_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    CheckpointPerf {
        bytes: envelope.len() as u64,
        encode_ms,
        decode_ms,
    }
}

/// Time explicit `decide()` passes while demand swings ±40% around base,
/// so each pass crosses the hysteresis band and re-plans incrementally.
fn decision(rounds: u32) -> DecisionPerf {
    let mut daemon = Daemon::new(
        &catalogue(),
        ArrivalProcess::Poisson,
        7,
        500_000,
        AutoscalePolicy {
            decide_every: 0, // the bench calls decide() itself
            ..AutoscalePolicy::default()
        },
    )
    .expect("catalogue plans");
    let mut sink = NullSink;
    let mut total_ms = 0.0f64;
    let mut max_ms = 0.0f64;
    for round in 0..rounds {
        let m = if round % 2 == 0 { 1.4 } else { 0.6 };
        daemon.scale_all(m);
        daemon.step(&mut sink);
        daemon.step(&mut sink);
        let start = Instant::now();
        daemon.decide(&mut sink);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        max_ms = max_ms.max(ms);
    }
    let status = daemon.status();
    DecisionPerf {
        decisions: status.decisions,
        reconfigs: status.reconfigs,
        mean_ms: total_ms / f64::from(rounds.max(1)),
        max_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_parvad.json".to_string());

    let (steady_perf, warm) = steady(if quick { 40 } else { 200 });
    let checkpoint_perf = checkpoint(&warm, if quick { 5 } else { 20 });
    let decision_perf = decision(if quick { 6 } else { 24 });

    assert!(
        decision_perf.reconfigs > 0,
        "the swing must force incremental re-plans, or decision timing is vacuous"
    );

    let doc = BenchDoc {
        schema: "parva-bench/parvad-steady/v1".to_string(),
        quick,
        steady: steady_perf,
        checkpoint: checkpoint_perf,
        decision: decision_perf,
    };
    let json = serde_json::to_string(&doc).expect("bench doc serializes");
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("bench output dir");
    }
    std::fs::write(&out, &json).expect("bench output file");
    println!(
        "parvad_steady: {:.0} epochs/s  checkpoint {} B ({:.2} ms enc / {:.2} ms dec)  \
         decision {:.2} ms mean / {:.2} ms max -> {out}",
        doc.steady.epochs_per_sec,
        doc.checkpoint.bytes,
        doc.checkpoint.encode_ms,
        doc.checkpoint.decode_ms,
        doc.decision.mean_ms,
        doc.decision.max_ms,
    );
}
