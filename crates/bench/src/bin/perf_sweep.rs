//! DES performance sweep: time the discrete-event engine on three scenario
//! scales — a single serving simulation (`small`), a fleet chaos run
//! (`fleet`), and a multi-region federation run (`federation`) — and write
//! `results/BENCH_des.json` with the engine's measured throughput.
//!
//! Per scenario the harness reports:
//!
//! * `events` — DES events processed across every simulation of the run
//!   (memoized sims deliver their cached reports without re-processing
//!   events, so cache hits lower both `events` and the wall time),
//! * `events_per_sec` — events divided by the scenario's end-to-end wall
//!   time: the rate at which the evaluation pipeline turns DES events
//!   into finished reports. Parallel region fan-out raises it on
//!   multi-core hosts; memoization is roughly neutral (it removes events
//!   and their cost together),
//! * `loop_wall_ms` — wall time spent inside event loops, summed across
//!   threads (under parallel fan-out this exceeds the scenario wall and
//!   over-counts when threads time-slice one core),
//! * `loop_cpu_ms` — per-thread CPU time inside event loops
//!   (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`): the engine metric that
//!   stays exact under fan-out; 0 on platforms without the clock,
//! * `wall_ms` — end-to-end wall time of the whole scenario,
//! * `peak_queue_depth` — the largest pending-event count any sim reached,
//! * `cache_hit_rate` — the fleet orchestrator's simulation-cache hit rate
//!   (identical steady states simulated once per report).
//!
//! Simulation *outputs* are unaffected by the instrumentation: every run
//! here produces byte-identical reports to the untimed paths.
//!
//! Usage: `perf_sweep [--quick] [--check <baseline.json>] [--out <file>]`
//!
//! `--quick` shrinks repetition counts for CI; `--check` exits non-zero if
//! any scenario's `events_per_sec` regressed to below half of the given
//! baseline's (a >2x regression gate).

use parva_deploy::Scheduler;
use parva_profile::ProfileBook;
use parva_serve::{ServingConfig, Simulation};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One scenario's measured row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioPerf {
    name: String,
    sims: u64,
    events: u64,
    events_per_sec: f64,
    loop_wall_ms: f64,
    /// Absent from pre-PR baselines; defaults to 0 when checking old files.
    #[serde(default)]
    loop_cpu_ms: f64,
    wall_ms: f64,
    peak_queue_depth: u64,
    cache_hit_rate: f64,
}

/// The whole `BENCH_des.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchDoc {
    schema: String,
    quick: bool,
    scenarios: Vec<ScenarioPerf>,
}

impl BenchDoc {
    fn scenario(&self, name: &str) -> Option<&ScenarioPerf> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Run `body`, attributing counter deltas and wall time to `name`.
///
/// Scope-safe: snapshots the global counters before and after and
/// reports [`parva_des::counters::Snapshot::delta`], so concurrent or
/// later `measure` calls never clobber each other the way the old
/// reset-then-read pattern could. `peak_queue_depth` is the one
/// high-water mark (not a monotone counter): the delta reports the
/// run's peak only when it exceeds every earlier scenario's, so main
/// still resets the globals once up front to keep the first peak exact.
fn measure(name: &str, body: impl FnOnce()) -> ScenarioPerf {
    let before = parva_des::counters::snapshot();
    let (hits0, misses0) = parva_fleet::simcache::global_stats();
    let started = Instant::now();
    body();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let snap = parva_des::counters::snapshot().delta(&before);
    let (hits1, misses1) = parva_fleet::simcache::global_stats();
    let (hits, misses) = (hits1.saturating_sub(hits0), misses1.saturating_sub(misses0));
    let lookups = hits + misses;
    ScenarioPerf {
        name: name.to_string(),
        sims: snap.sims,
        events: snap.events,
        events_per_sec: if wall_ms <= 0.0 {
            0.0
        } else {
            snap.events as f64 / (wall_ms / 1e3)
        },
        loop_wall_ms: snap.loop_nanos as f64 / 1e6,
        loop_cpu_ms: snap.loop_cpu_nanos as f64 / 1e6,
        wall_ms,
        peak_queue_depth: snap.peak_queue_depth,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_des.json".to_string());

    let book = ProfileBook::builtin();

    // One reset up front so the first scenario's queue-depth high-water
    // mark starts from zero; everything else is delta-attributed.
    parva_des::counters::reset();
    parva_fleet::simcache::reset_global_stats();

    // -- small: one cluster-scale serving simulation, repeated --
    let s2 = parva_scenarios::Scenario::S2.services();
    let d2 = parva_core::ParvaGpu::new(&book)
        .schedule(&s2)
        .expect("S2 schedules");
    let small_reps = if quick { 3 } else { 10 };
    let small = measure("small", || {
        for _ in 0..small_reps {
            let r = Simulation::new(&d2, &s2).run();
            assert!(r.overall_compliance_rate() > 0.0);
        }
    });

    // -- fleet: chaos runs over the mixed heterogeneous fleet --
    let fleet_seeds = if quick { 2 } else { 5 };
    let fleet_spec = parva_fleet::FleetSpec::mixed_demo(2);
    let fleet_services = parva_fleet::demo_services();
    let fleet = measure("fleet", || {
        for seed in 0..fleet_seeds {
            let config = parva_fleet::FleetConfig {
                seed,
                intervals: 8,
                ..parva_fleet::FleetConfig::default()
            };
            parva_fleet::run_chaos(&book, &fleet_services, &fleet_spec, &config)
                .expect("fleet chaos runs");
        }
    });

    // -- federation: three-region federation with serving-heavy windows --
    let fed_seeds = if quick { 1 } else { 3 };
    let fed_spec = parva_region::FederationSpec::three_region_demo();
    let fed_services = parva_region::demo_services();
    let federation = measure("federation", || {
        for seed in 0..fed_seeds {
            let config = parva_region::FederationConfig {
                seed,
                intervals: 8,
                serving: ServingConfig {
                    warmup_s: 0.5,
                    duration_s: 6.0,
                    drain_s: 1.0,
                    ..ServingConfig::default()
                },
                ..parva_region::FederationConfig::default()
            };
            parva_region::run_federation(&book, &fed_services, &fed_spec, &config)
                .expect("federation runs");
        }
    });

    let doc = BenchDoc {
        schema: "parva-bench/des-perf/v1".to_string(),
        quick,
        scenarios: vec![small, fleet, federation],
    };
    for s in &doc.scenarios {
        println!(
            "{:<11} {:>9} events in {:>8.1} ms loop ({:>8.1} ms cpu, {:>10.0} events/s) | \
             wall {:>8.1} ms, {:>3} sims, peak queue {:>5}, cache hit {:>5.1}%",
            s.name,
            s.events,
            s.loop_wall_ms,
            s.loop_cpu_ms,
            s.events_per_sec,
            s.wall_ms,
            s.sims,
            s.peak_queue_depth,
            s.cache_hit_rate * 100.0
        );
    }

    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    parva_bench::write_csv(&out, &json);

    if let Some(baseline_path) = check {
        let base = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let base: BenchDoc = serde_json::from_str(&base).expect("valid baseline JSON");
        let mut failed = false;
        for s in &doc.scenarios {
            if let Some(b) = base.scenario(&s.name) {
                let floor = b.events_per_sec / 2.0;
                let ok = s.events_per_sec >= floor;
                println!(
                    "check {:<11} {:>10.0} events/s vs baseline {:>10.0} (floor {:>10.0}): {}",
                    s.name,
                    s.events_per_sec,
                    b.events_per_sec,
                    floor,
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
        }
        if failed {
            eprintln!("perf_sweep: events/sec regressed >2x against {baseline_path}");
            std::process::exit(1);
        }
    }
}
