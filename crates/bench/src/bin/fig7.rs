//! Regenerates **Figure 7**: GPU external fragmentation (%) per scenario
//! (Eq. 4, complemented — see `parva-metrics` docs). Static metric, no
//! serving needed. Includes the `ParvaGPU-unoptimized` ablation to show the
//! Allocation Optimization algorithm's effect.

use parva_bench::{evaluate_scenario, write_csv};
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let mut table = TextTable::new(vec![
        "scenario",
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-unoptimized",
        "ParvaGPU",
    ]);
    println!("Figure 7 — external fragmentation (%) per scenario\n");
    for sc in Scenario::ALL {
        let eval = evaluate_scenario(&book, sc, false, &ServingConfig::default());
        let cell = |name: &str| {
            eval.results
                .iter()
                .find(|r| r.name == name)
                .and_then(|r| r.fragmentation)
                .map_or("fail".to_string(), |f| format!("{:.1}", f * 100.0))
        };
        table.row(vec![
            sc.label().to_string(),
            cell("gpulet"),
            cell("iGniter"),
            cell("MIG-serving"),
            cell("ParvaGPU-unoptimized"),
            cell("ParvaGPU"),
        ]);
    }
    println!("{}", table.render());
    write_csv("fig7_external_fragmentation.csv", &table.to_csv());
}
