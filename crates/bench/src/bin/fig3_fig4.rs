//! Regenerates **Figures 3 and 4**: InceptionV3 throughput (req/s) and
//! latency (ms) across MIG instance sizes and batch sizes for 1, 2 and 3
//! MPS processes. Instance sizes 5 and 6 do not exist; like the paper we
//! interpolate them for plotting continuity (marked `interp`).

use parva_bench::write_csv;
use parva_perf::{ComputeShare, Model};
use parva_profile::DEFAULT_BATCHES;

fn surface(procs: u32) -> String {
    let mut csv = String::from("instance,batch,throughput_rps,latency_ms,source\n");
    for gpc in 1..=7u8 {
        for &batch in &DEFAULT_BATCHES {
            let (tput, lat, src) = match parva_mig::InstanceProfile::from_gpcs(gpc) {
                Some(p) => {
                    let share = ComputeShare::Mig(p);
                    if !parva_perf::math::fits_memory(Model::InceptionV3, share, batch, procs) {
                        continue; // OOM points are dropped (paper §III-B)
                    }
                    (
                        parva_perf::math::throughput_rps(Model::InceptionV3, share, batch, procs),
                        parva_perf::math::latency_ms(Model::InceptionV3, share, batch, procs),
                        "measured",
                    )
                }
                None => {
                    // 5/6-GPC: linear interpolation between 4 and 7 GPCs.
                    let lo = ComputeShare::Mig(parva_mig::InstanceProfile::G4);
                    let hi = ComputeShare::Mig(parva_mig::InstanceProfile::G7);
                    let w = f64::from(gpc - 4) / 3.0;
                    let t = (1.0 - w)
                        * parva_perf::math::throughput_rps(Model::InceptionV3, lo, batch, procs)
                        + w * parva_perf::math::throughput_rps(
                            Model::InceptionV3,
                            hi,
                            batch,
                            procs,
                        );
                    let l = (1.0 - w)
                        * parva_perf::math::latency_ms(Model::InceptionV3, lo, batch, procs)
                        + w * parva_perf::math::latency_ms(Model::InceptionV3, hi, batch, procs);
                    (t, l, "interp")
                }
            };
            csv.push_str(&format!("{gpc},{batch},{tput:.1},{lat:.2},{src}\n"));
        }
    }
    csv
}

fn main() {
    println!("Figures 3 & 4 — InceptionV3 profiling surfaces (one CSV per process count)\n");
    for procs in 1..=3u32 {
        let csv = surface(procs);
        write_csv(&format!("fig3_fig4_inceptionv3_p{procs}.csv"), &csv);
    }

    // Spot-check against the paper's quoted anchors (§III-B).
    let g1 = ComputeShare::Mig(parva_mig::InstanceProfile::G1);
    let g4 = ComputeShare::Mig(parva_mig::InstanceProfile::G4);
    println!("anchor points (paper → model):");
    let anchors: Vec<(&str, f64, f64)> = vec![
        (
            "g=1 b=4 p=1 tput",
            354.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g1, 4, 1),
        ),
        (
            "g=1 b=4 p=2 tput",
            444.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g1, 4, 2),
        ),
        (
            "g=1 b=4 p=3 tput",
            446.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g1, 4, 3),
        ),
        (
            "g=1 b=4 p=1 lat",
            11.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g1, 4, 1),
        ),
        (
            "g=1 b=4 p=2 lat",
            18.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g1, 4, 2),
        ),
        (
            "g=1 b=4 p=3 lat",
            27.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g1, 4, 3),
        ),
        (
            "g=4 b=8 p=1 tput",
            786.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g4, 8, 1),
        ),
        (
            "g=4 b=8 p=2 tput",
            1695.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g4, 8, 2),
        ),
        (
            "g=4 b=8 p=3 tput",
            1810.0,
            parva_perf::math::throughput_rps(Model::InceptionV3, g4, 8, 3),
        ),
        (
            "g=4 b=8 p=1 lat",
            10.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g4, 8, 1),
        ),
        (
            "g=4 b=8 p=2 lat",
            9.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g4, 8, 2),
        ),
        (
            "g=4 b=8 p=3 lat",
            13.0,
            parva_perf::math::latency_ms(Model::InceptionV3, g4, 8, 3),
        ),
    ];
    let mut anchor_csv = String::from("point,paper,model\n");
    for (name, paper, model) in anchors {
        println!("  {name:<20} {paper:>8.1} → {model:>8.1}");
        anchor_csv.push_str(&format!("{name},{paper},{model:.1}\n"));
    }
    write_csv("fig3_fig4_anchors.csv", &anchor_csv);
}
