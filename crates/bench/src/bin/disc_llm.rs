//! Regenerates the **§V discussion** analysis: the impact of
//! memory-intensive (LLM) models on spatial GPU sharing across GPU
//! generations.
//!
//! The paper argues that although LLMs shrink the set of feasible GPU
//! segments (weights must fit the instance's memory slice allotment),
//! lightweight 7B-class models already fit small segments on an A100-80,
//! and the H200 (141 GB) and B200 (192 GB) parts restore spatial sharing
//! even for a 65B QLoRA model. Two artifacts quantify that:
//!
//! * `disc_llm_feasibility.csv` — for each GPU model × LLM, the smallest
//!   MIG instance profile whose memory holds the model at batch 1, and the
//!   number of surviving profile points out of the sweep;
//! * `disc_llm_serving.csv` — a three-LLM serving scenario scheduled by
//!   ParvaGPU per GPU model: total GPUs, total GPCs and fragmentation.

use parva_bench::write_csv;
use parva_core::ParvaGpu;
use parva_deploy::{Scheduler, ServiceSpec};
use parva_metrics::{external_fragmentation, TextTable};
use parva_mig::{GpuModel, InstanceProfile};
use parva_perf::{ComputeShare, Model};
use parva_profile::{ProfileBook, SweepGrid};

/// GPU models of the §V discussion, ascending memory.
fn gpu_lineup() -> Vec<GpuModel> {
    vec![
        GpuModel::A100_40GB,
        GpuModel::A100_80GB,
        GpuModel::H200_141GB,
        GpuModel::B200_192GB,
    ]
}

/// LLM-appropriate sweep: small batches, the usual process ladder.
fn llm_grid() -> SweepGrid {
    SweepGrid {
        instances: InstanceProfile::ALL.to_vec(),
        batches: vec![1, 2, 4, 8],
        procs: vec![1, 2, 3],
    }
}

/// The §V serving scenario: a lightweight chat model, a QLoRA-tuned 7B and
/// a 65B flagship, at modest rates with generation-scale SLOs.
fn llm_services() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(0, Model::LlamaLite7B, 30.0, 4_000.0),
        ServiceSpec::new(1, Model::Guanaco7B, 20.0, 5_000.0),
        ServiceSpec::new(2, Model::Guanaco65B, 2.0, 15_000.0),
    ]
}

fn main() {
    // ---- Feasibility matrix -------------------------------------------
    let mut feas = TextTable::new(vec![
        "gpu",
        "model",
        "smallest instance",
        "instance mem (GiB)",
        "surviving points",
        "sweep points",
    ]);
    for gpu in gpu_lineup() {
        for llm in Model::LLMS {
            let smallest = InstanceProfile::ALL
                .iter()
                .copied()
                .find(|g| parva_perf::math::fits_memory_on(llm, ComputeShare::Mig(*g), 1, 1, gpu));
            let table = parva_profile::ProfileTable::measure_on(llm, &llm_grid(), gpu);
            feas.row(vec![
                gpu.name.to_string(),
                llm.name().to_string(),
                smallest.map_or("none".into(), |g| g.to_string()),
                smallest
                    .map_or(f64::NAN, |g| gpu.instance_memory_gib(g))
                    .to_string(),
                table.entries().len().to_string(),
                llm_grid().len().to_string(),
            ]);
        }
    }
    println!("§V feasibility — smallest MIG instance per LLM per GPU model\n");
    println!("{}", feas.render());
    write_csv("disc_llm_feasibility.csv", &feas.to_csv());

    // ---- Serving scenario ---------------------------------------------
    let mut serving = TextTable::new(vec![
        "gpu",
        "GPUs",
        "GPCs allocated",
        "external frag %",
        "largest segment",
    ]);
    for gpu in gpu_lineup() {
        let book = ProfileBook::measure_on(&Model::LLMS, &llm_grid(), gpu);
        let sched = ParvaGpu::new(&book);
        match sched.schedule(&llm_services()) {
            Ok(deployment) => {
                let mig = deployment.as_mig().expect("ParvaGPU deploys MIG");
                let largest = mig
                    .segments()
                    .iter()
                    .map(|s| s.segment.triplet.instance.gpcs())
                    .max()
                    .unwrap_or(0);
                serving.row(vec![
                    gpu.name.to_string(),
                    deployment.gpu_count().to_string(),
                    mig.gpcs_allocated().to_string(),
                    format!("{:.1}", external_fragmentation(&deployment) * 100.0),
                    format!("{largest}g"),
                ]);
            }
            Err(e) => {
                serving.row(vec![
                    gpu.name.to_string(),
                    "infeasible".into(),
                    String::new(),
                    String::new(),
                    e.to_string(),
                ]);
            }
        }
    }
    println!("\n§V serving — ParvaGPU on the three-LLM scenario per GPU model\n");
    println!("{}", serving.render());
    write_csv("disc_llm_serving.csv", &serving.to_csv());
}
