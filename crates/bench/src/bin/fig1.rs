//! Regenerates **Figure 1**: the 19 supported MIG configurations on the
//! NVIDIA A100 GPU, derived from first principles (slice starts + memory
//! slices), not hard-coded.

use parva_bench::write_csv;
use parva_metrics::TextTable;
use parva_mig::{all_configurations, GpuState};

fn main() {
    let configs = all_configurations();
    println!(
        "Figure 1 — {} supported MIG configurations on the A100\n",
        configs.len()
    );
    let mut table = TextTable::new(vec!["config", "slices 0-6", "sizes", "GPCs used"]);
    for (i, c) in configs.iter().enumerate() {
        let mut g = GpuState::new();
        for p in c.placements() {
            g.place_at(*p).expect("derived configurations are valid");
        }
        let sizes: Vec<String> = c.sizes().iter().map(ToString::to_string).collect();
        table.row(vec![
            (i + 1).to_string(),
            g.to_string(),
            sizes.join("-"),
            c.gpcs_used().to_string(),
        ]);
    }
    println!("{}", table.render());
    assert_eq!(
        configs.len(),
        19,
        "paper Fig. 1 lists exactly 19 configurations"
    );
    write_csv("fig1_mig_configurations.csv", &table.to_csv());
}
