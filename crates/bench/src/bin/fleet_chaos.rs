//! Fleet-chaos experiment: sweep seeds over a heterogeneous fleet and
//! tabulate recovery behaviour — migrations, re-flashes, compliance dips,
//! recovery latency and mixed-pricing cost — then write `fleet_chaos.csv`
//! under `results/`.
//!
//! Each row runs the registered `fleet_chaos` [`ScenarioSpec`] (the same
//! declarative object behind `parvactl run fleet_chaos`) with the row's
//! seed — the experiment definition lives in the spec registry, not in
//! this binary.
//!
//! Every column except `sim_wall_ms` is deterministic per seed;
//! `sim_wall_ms` is the measured wall-clock of the run on the current
//! host (the DES perf trajectory also tracked by `perf_sweep`).
//!
//! Usage: `cargo run --release -p parva-bench --bin fleet_chaos [seeds]`

use parva_bench::write_csv;
use parvagpu::scenarios::{spec_by_name, ScenarioReport};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let spec = spec_by_name("fleet_chaos").expect("registered builtin");

    let mut csv = String::from(
        "seed,events,migrations,reflashes,worst_measured_dip_pct,worst_analytic_dip_pct,\
         worst_sim_recovery_ms,worst_analytic_recovery_ms,precopied_gib,final_usd_per_hour,\
         recovered,sim_wall_ms\n",
    );
    println!("== fleet chaos: {seeds} seeds, spec '{}' ==\n", spec.name);
    for seed in 0..seeds as u64 {
        let mut run = spec.clone();
        run.seed = seed;
        let run_started = std::time::Instant::now();
        let outcome = run.run();
        let sim_wall_ms = run_started.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(ScenarioReport::Fleet(report)) => {
                let last_cost = report
                    .events
                    .last()
                    .map_or(report.baseline_usd_per_hour, |e| e.usd_per_hour);
                csv.push_str(&format!(
                    "{seed},{},{},{},{:.3},{:.3},{:.0},{:.0},{:.1},{:.2},{},{sim_wall_ms:.1}\n",
                    report.events.len(),
                    report.total_migrations(),
                    report.total_reflashes(),
                    report.worst_measured_dip() * 100.0,
                    report.worst_dip() * 100.0,
                    report.worst_simulated_recovery_ms(),
                    report.worst_recovery_latency_ms(),
                    report.total_precopied_gib(),
                    last_cost,
                    report.fully_recovered()
                ));
                println!("{}", report.render());
            }
            Ok(_) => unreachable!("fleet spec returns a fleet report"),
            Err(e) => {
                csv.push_str(&format!(
                    "{seed},0,0,0,0,0,0,0,0,0,error,{sim_wall_ms:.1}\n"
                ));
                println!("seed {seed}: {e}\n");
            }
        }
    }
    write_csv("fleet_chaos.csv", &csv);
}
