//! Regenerates **Figure 5**: total number of GPUs used by each baseline and
//! ParvaGPU across scenarios S1–S6. (Scheduling only — no serving needed.)

use parva_bench::{evaluate_scenario, write_csv};
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let mut table = TextTable::new(vec![
        "scenario",
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);
    println!("Figure 5 — total number of GPUs per scenario\n");
    for sc in Scenario::ALL {
        let eval = evaluate_scenario(&book, sc, false, &ServingConfig::default());
        let cell = |name: &str| {
            eval.results
                .iter()
                .find(|r| r.name == name)
                .and_then(parva_bench::FrameworkResult::gpus)
                .map_or("fail".to_string(), |g| g.to_string())
        };
        table.row(vec![
            sc.label().to_string(),
            cell("gpulet"),
            cell("iGniter"),
            cell("MIG-serving"),
            cell("ParvaGPU-single"),
            cell("ParvaGPU"),
        ]);
    }
    println!("{}", table.render());
    println!("(\"fail\" = framework cannot run the scenario; the paper shows no bar)");
    write_csv("fig5_gpu_counts.csv", &table.to_csv());
}
