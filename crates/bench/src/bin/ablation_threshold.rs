//! Ablation: the Allocation Optimization fragmentation threshold.
//!
//! The paper sets the "heavily fragmented GPU" threshold heuristically to
//! 4 allocated GPCs (§III-E-2: "This threshold value is adjustable depending
//! on the environment; in this paper, it is heuristically set to 4 for
//! optimal fragmentation minimization"). This binary sweeps the threshold
//! 0..7 across all scenarios and reports fleet size and fragmentation,
//! justifying (or challenging) the paper's choice on this substrate.
//!
//! Run: `cargo run --release -p parva-bench --bin ablation_threshold`

use parva_bench::write_csv;
use parva_core::allocator::AllocatorConfig;
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_metrics::{external_fragmentation, TextTable};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn main() {
    let book = ProfileBook::builtin();
    let mut table = TextTable::new(vec![
        "threshold",
        "total GPUs (S1-S6)",
        "mean frag %",
        "max frag %",
    ]);
    println!("Ablation — Allocation Optimization threshold sweep\n");
    println!("(fill pass disabled so the threshold's own effect is visible;");
    println!(" with the fill pass on, every threshold reaches 0% fragmentation)\n");
    for threshold in 0..=7u8 {
        // Isolate the optimization stage: the final fill pass would flatten
        // every threshold to 0% fragmentation, hiding the sweep.
        let sched = ParvaGpu::new(&book).with_allocator(AllocatorConfig {
            frag_threshold_gpcs: threshold,
            fill: false,
            ..AllocatorConfig::default()
        });
        let mut gpus = 0usize;
        let mut frags = Vec::new();
        for sc in Scenario::ALL {
            let d = sched.schedule(&sc.services()).expect("feasible");
            gpus += d.gpu_count();
            frags.push(external_fragmentation(&d));
        }
        let mean = frags.iter().sum::<f64>() / frags.len() as f64 * 100.0;
        let max = frags.iter().cloned().fold(0.0f64, f64::max) * 100.0;
        table.row(vec![
            threshold.to_string(),
            gpus.to_string(),
            format!("{mean:.2}"),
            format!("{max:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("(paper's choice: threshold = 4)");
    write_csv("ablation_threshold.csv", &table.to_csv());
}
