//! Regenerates **Table IV**: the six evaluation scenarios over eleven DNN
//! models with their request rates (req/s) and SLO latencies (ms).

use parva_bench::write_csv;
use parva_metrics::TextTable;
use parva_perf::Model;
use parva_scenarios::Scenario;

fn main() {
    let mut header: Vec<String> = vec!["scenario".into(), "metric".into()];
    header.extend(Model::ALL.iter().map(|m| m.name().to_string()));
    let mut table = TextTable::new(header);

    // Parameter-count row (the table's "Workload features").
    let mut params: Vec<String> = vec!["—".into(), "params (M)".into()];
    params.extend(
        Model::ALL
            .iter()
            .map(|m| format!("{:.1}", m.params_millions())),
    );
    table.row(params);

    for sc in Scenario::ALL {
        let services = sc.services();
        let cell = |m: Model, f: &dyn Fn(&parva_deploy::ServiceSpec) -> String| {
            services
                .iter()
                .find(|s| s.model == m)
                .map_or("N/A".to_string(), f)
        };
        let mut rate_row: Vec<String> = vec![sc.label().into(), "rate (req/s)".into()];
        rate_row.extend(
            Model::ALL
                .iter()
                .map(|m| cell(*m, &|s| format!("{:.0}", s.request_rate_rps))),
        );
        table.row(rate_row);
        let mut lat_row: Vec<String> = vec![sc.label().into(), "SLO (ms)".into()];
        lat_row.extend(
            Model::ALL
                .iter()
                .map(|m| cell(*m, &|s| format!("{:.0}", s.slo.latency_ms))),
        );
        table.row(lat_row);
    }

    println!("Table IV — six scenarios from eleven DNN inference models\n");
    println!("{}", table.render());
    write_csv("table4_scenarios.csv", &table.to_csv());
}
