//! Observability overhead benchmark: time each scenario engine with
//! tracing disabled (the `NullSink` path every production run takes),
//! with a full [`parvagpu::obs::Recorder`] attached, and with the
//! shard-streaming [`parvagpu::obs::StreamSink`], and write
//! `results/BENCH_obs.json` with all three walls and the on/off ratios.
//!
//! The disabled path is the one under the perf gate: `NullSink` has
//! `ENABLED = false`, so every instrumentation block monomorphizes away
//! and `perf_sweep --check` keeps holding its 2x floor. The enabled
//! ratios recorded here are informational — they price what `--trace`/
//! `--metrics` (batch) and `--stream` (rotating shards, line-by-line
//! file I/O) actually cost when someone turns them on.
//!
//! Usage: `obs_overhead [--quick] [--out <file>]`

use serde::Serialize;
use std::time::Instant;

/// One spec's tracing-off/on/streamed timing row.
#[derive(Debug, Clone, Serialize)]
struct OverheadRow {
    spec: String,
    reps: usize,
    off_wall_ms: f64,
    on_wall_ms: f64,
    stream_wall_ms: f64,
    /// `on / off` — 1.0 means observation is free, 2.0 means it doubles
    /// the wall time.
    on_over_off: f64,
    /// `stream / off` — what retiring shards to disk adds on top of a
    /// blind run.
    stream_over_off: f64,
    trace_events: usize,
    gauge_rows: usize,
    trace_shards: usize,
}

/// The whole `BENCH_obs.json` document.
#[derive(Debug, Clone, Serialize)]
struct ObsBenchDoc {
    schema: String,
    quick: bool,
    rows: Vec<OverheadRow>,
}

fn time_reps(reps: usize, mut body: impl FnMut()) -> f64 {
    // Best-of-reps: the minimum is the least noisy wall estimator on a
    // shared CI runner.
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        body();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let reps = if quick { 3 } else { 7 };
    let shard_root = std::env::temp_dir().join("parva-obs-overhead-bench");

    // One spec per engine: serve, fleet, federation.
    let mut rows = Vec::new();
    for name in ["quickstart", "fleet_chaos", "region_failover"] {
        let spec = parvagpu::scenarios::spec_by_name(name)
            .unwrap_or_else(|| panic!("'{name}' is registered"))
            .quick();
        let off_wall_ms = time_reps(reps, || {
            spec.run().expect("spec runs");
        });
        let mut trace_events = 0;
        let mut gauge_rows = 0;
        let on_wall_ms = time_reps(reps, || {
            let (_, rec) = spec.run_observed().expect("observed spec runs");
            trace_events = rec.events.len();
            gauge_rows = rec.metrics.len();
        });
        let mut trace_shards = 0;
        let stream_wall_ms = time_reps(reps, || {
            // Fresh dir per rep so shard creation is timed every time.
            let dir = shard_root.join(name);
            let _ = std::fs::remove_dir_all(&dir);
            let (_, stats) = spec.run_streamed(&dir).expect("streamed spec runs");
            trace_shards = stats.trace_shards;
        });
        rows.push(OverheadRow {
            spec: name.to_string(),
            reps,
            off_wall_ms,
            on_wall_ms,
            stream_wall_ms,
            on_over_off: if off_wall_ms <= 0.0 {
                0.0
            } else {
                on_wall_ms / off_wall_ms
            },
            stream_over_off: if off_wall_ms <= 0.0 {
                0.0
            } else {
                stream_wall_ms / off_wall_ms
            },
            trace_events,
            gauge_rows,
            trace_shards,
        });
    }
    let _ = std::fs::remove_dir_all(&shard_root);

    for r in &rows {
        println!(
            "{:<16} off {:>8.2} ms | on {:>8.2} ms ({:>5.2}x) | stream {:>8.2} ms ({:>5.2}x) | \
             {:>7} events, {:>5} rows, {:>3} shard(s)",
            r.spec,
            r.off_wall_ms,
            r.on_wall_ms,
            r.on_over_off,
            r.stream_wall_ms,
            r.stream_over_off,
            r.trace_events,
            r.gauge_rows,
            r.trace_shards
        );
    }

    let doc = ObsBenchDoc {
        schema: "parva-bench/obs-overhead/v1".to_string(),
        quick,
        rows,
    };
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    parva_bench::write_csv(&out, &json);
}
