//! Regenerates the **cost view** of Figure 5: the paper's §I/§IV-B1 claim
//! that GPU savings translate one-to-one into cloud cost savings, at the
//! granularity clouds actually bill — whole p4de.24xlarge nodes.
//!
//! For every scenario and framework the harness converts the scheduled GPU
//! count into nodes (8 GPUs each, vCPU budget honoured), prices the fleet
//! on-demand, and reports ParvaGPU's monthly saving versus each baseline.

use parva_bench::{evaluate_scenario, write_csv};
use parva_cluster::{pack, CostReport, NodeType, PricingPlan};
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let node = NodeType::P4DE_24XLARGE;
    let pricing = PricingPlan::OnDemand;

    let mut table = TextTable::new(vec![
        "scenario",
        "framework",
        "GPUs",
        "nodes",
        "idle GPUs",
        "USD/hour",
        "USD/month",
        "ParvaGPU saving %",
    ]);

    for scenario in Scenario::ALL {
        let eval = evaluate_scenario(&book, scenario, false, &ServingConfig::default());
        // ParvaGPU's own report is the baseline for the saving column.
        let parva_report = eval
            .results
            .iter()
            .find(|r| r.name == "ParvaGPU")
            .and_then(|r| r.deployment.as_ref().ok())
            .map(|d| CostReport::from_plan("ParvaGPU", &pack(d, node), pricing));

        for r in &eval.results {
            match &r.deployment {
                Ok(d) => {
                    let report = CostReport::from_plan(r.name, &pack(d, node), pricing);
                    let saving = parva_report.as_ref().map_or(String::new(), |p| {
                        format!("{:.1}", p.saving_vs(&report) * 100.0)
                    });
                    table.row(vec![
                        scenario.label().to_string(),
                        r.name.to_string(),
                        report.gpus.to_string(),
                        report.nodes.to_string(),
                        report.idle_gpus.to_string(),
                        format!("{:.2}", report.usd_per_hour),
                        format!("{:.0}", report.usd_per_month),
                        saving,
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        scenario.label().to_string(),
                        r.name.to_string(),
                        "infeasible".into(),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                        e.to_string(),
                    ]);
                }
            }
        }
    }

    println!("Cost view of Figure 5 — p4de.24xlarge nodes, on-demand pricing\n");
    println!("{}", table.render());
    write_csv("cost_table.csv", &table.to_csv());
}
