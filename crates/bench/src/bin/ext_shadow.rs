//! Regenerates the **§III-F shadow-process** analysis (the paper's deferred
//! future work, implemented here): service continuity through a MIG
//! reconfiguration window, with and without shadow processes on spare GPUs.
//!
//! Fixture: ParvaGPU serves S2; service 8 (ResNet-50) spikes to k× its
//! Table IV rate, triggering an incremental reconfiguration (§III-F). The
//! window is simulated three ways — undisturbed control, blackout (the
//! reconfiguring GPUs dark, no shadows), and shadowed. Compliance is
//! *request-level* (unserved requests count as violations; the batch-level
//! Fig. 8 metric cannot see a blackout).

use parva_autoscale::shadow::simulate_window;
use parva_bench::write_csv;
use parva_core::{reconfigure, ParvaGpu};
use parva_deploy::ServiceSpec;
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn main() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = Scenario::S2.services();
    let (services, before) = sched.plan(&specs).expect("S2 feasible");
    let cfg = ServingConfig {
        warmup_s: 1.0,
        duration_s: 6.0,
        drain_s: 2.0,
        seed: 17,
        ..Default::default()
    };

    let mut table = TextTable::new(vec![
        "spike factor",
        "reconfigured GPUs",
        "affected services",
        "control %",
        "blackout %",
        "shadowed %",
        "recovered pp",
        "spare GPUs",
    ]);

    for factor in [1.5, 2.0, 3.0, 4.0] {
        let updated = ServiceSpec::new(
            8,
            specs[8].model,
            specs[8].request_rate_rps * factor,
            specs[8].slo.latency_ms,
        );
        let Ok(outcome) = reconfigure::update_service(&sched, &before, &services, updated) else {
            table.row(vec![
                format!("{factor:.1}"),
                "infeasible".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        };
        let report = simulate_window(&before, &outcome, &specs, &cfg);
        table.row(vec![
            format!("{factor:.1}"),
            outcome.reconfigured_gpus.len().to_string(),
            report.affected_services.len().to_string(),
            format!("{:.2}", report.control_compliance * 100.0),
            format!("{:.2}", report.blackout_compliance * 100.0),
            format!("{:.2}", report.shadowed_compliance * 100.0),
            format!("{:.2}", report.recovered() * 100.0),
            report.shadow_gpus.to_string(),
        ]);
    }

    println!("§III-F shadow processes — compliance through a reconfiguration window\n");
    println!("{}", table.render());
    write_csv("ext_shadow_disruption.csv", &table.to_csv());
}
