//! Regenerates **Table I**: the feature matrix of spatial GPU-sharing
//! solutions for inference servers.

use parva_bench::write_csv;
use parva_deploy::Capabilities;
use parva_metrics::TextTable;

fn main() {
    let rows: Vec<(&str, Capabilities)> = vec![
        ("GSLICE", Capabilities::gslice()),
        ("gpulet", Capabilities::gpulet()),
        ("iGniter", Capabilities::igniter()),
        ("PARIS and ELSA", Capabilities::paris_elsa()),
        ("MIG-serving", Capabilities::mig_serving()),
        ("ParvaGPU", Capabilities::parvagpu()),
    ];
    let mut table = TextTable::new(vec![
        "framework",
        "MPS",
        "MIG",
        "slack prevention",
        "frag prevention",
        "spatial sched",
        "high rate",
        "overhead",
    ]);
    for (name, caps) in rows {
        let r = caps.row();
        table.row(vec![
            name.to_string(),
            r[0].clone(),
            r[1].clone(),
            r[2].clone(),
            r[3].clone(),
            r[4].clone(),
            r[5].clone(),
            r[6].clone(),
        ]);
    }
    println!("Table I — comparison of spatial GPU sharing solutions\n");
    println!("{}", table.render());
    write_csv("table1_capabilities.csv", &table.to_csv());
}
