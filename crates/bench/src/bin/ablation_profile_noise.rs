//! Ablation: scheduler robustness to profiling measurement noise.
//!
//! The paper's Profiler measures each model once (§III-C) and all scheduling
//! rests on those numbers; iGniter's lightweight profiling is criticized
//! precisely for its "accuracy limitations" (§II-A). This ablation perturbs
//! every profiled throughput/latency by ±ε and re-runs ParvaGPU on S2,
//! measuring where the 5% planned-utilization margin stops absorbing the
//! error and SLO compliance starts to slip.
//!
//! Run: `cargo run --release -p parva-bench --bin ablation_profile_noise`

use parva_bench::write_csv;
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_metrics::{internal_slack, slo_compliance, TextTable};
use parva_perf::Model;
use parva_profile::{ProfileBook, SweepGrid};
use parva_scenarios::Scenario;
use parva_serve::{ServingConfig, Simulation};

fn main() {
    let specs = Scenario::S2.services();
    let serving = ServingConfig::default();
    let mut table = TextTable::new(vec!["noise %", "seed", "GPUs", "compliance %", "slack %"]);
    println!("Ablation — profiling measurement noise (ParvaGPU on S2)\n");
    for rel_err in [0.0, 0.02, 0.05, 0.10, 0.15] {
        for seed in [1u64, 2, 3] {
            let book = ProfileBook::measure_with_noise(
                &Model::ALL,
                &SweepGrid::paper_default(),
                seed,
                rel_err,
            );
            let sched = ParvaGpu::new(&book);
            match sched.schedule(&specs) {
                Ok(d) => {
                    // Serving uses the TRUE performance model; the scheduler
                    // planned with noisy beliefs.
                    let report = Simulation::new(&d, &specs).config(&serving).run();
                    table.row(vec![
                        format!("{:.0}", rel_err * 100.0),
                        seed.to_string(),
                        d.gpu_count().to_string(),
                        format!("{:.2}", slo_compliance(&report) * 100.0),
                        format!("{:.1}", internal_slack(&report) * 100.0),
                    ]);
                }
                Err(e) => {
                    table.row(vec![
                        format!("{:.0}", rel_err * 100.0),
                        seed.to_string(),
                        "fail".into(),
                        e.to_string(),
                        String::new(),
                    ]);
                }
            }
            if rel_err == 0.0 {
                break; // seeds are irrelevant without noise
            }
        }
    }
    println!("{}", table.render());
    write_csv("ablation_profile_noise.csv", &table.to_csv());
}
