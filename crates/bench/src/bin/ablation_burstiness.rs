//! Ablation: how much arrival burstiness can the SLO/2 queuing budget
//! absorb?
//!
//! The paper sizes every deployment against half the client SLO (§IV-A,
//! after Nexus), leaving the other half for queuing — implicitly assuming
//! Poisson arrivals. This ablation offers the same S2 mean rates through a
//! Markov-modulated Poisson process of growing burst factor and reports
//! batch-level compliance, request-level compliance and the p99 latency of
//! the most bursty-sensitive service.

use parva_bench::write_csv;
use parva_core::ParvaGpu;
use parva_deploy::Scheduler;
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::{ArrivalProcess, ServingConfig, Simulation};

fn main() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let deployment = ParvaGpu::new(&book).schedule(&specs).expect("S2 feasible");

    let mut table = TextTable::new(vec![
        "arrivals",
        "batch compliance %",
        "request compliance %",
        "worst p99 (ms)",
        "worst p99 / SLO",
    ]);

    let mut cases: Vec<(String, ArrivalProcess)> = vec![
        ("deterministic".into(), ArrivalProcess::Deterministic),
        ("poisson".into(), ArrivalProcess::Poisson),
    ];
    for factor in [2.0, 4.0, 6.0, 8.0] {
        cases.push((
            format!("mmpp x{factor:.0}"),
            ArrivalProcess::Mmpp {
                burst_factor: factor,
                mean_phase_s: 0.5,
            },
        ));
    }

    for (label, arrivals) in cases {
        let cfg = ServingConfig {
            warmup_s: 1.0,
            duration_s: 8.0,
            drain_s: 2.0,
            seed: 21,
            arrivals,
        };
        let report = Simulation::new(&deployment, &specs).config(&cfg).run();
        // Worst p99-to-SLO ratio across services.
        let worst = specs
            .iter()
            .zip(&report.services)
            .map(|(spec, s)| {
                (
                    s.latency.quantile_ms(0.99),
                    s.latency.quantile_ms(0.99) / spec.slo.latency_ms,
                )
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0.0, 0.0));
        table.row(vec![
            label,
            format!("{:.2}", report.overall_compliance_rate() * 100.0),
            format!("{:.2}", report.overall_request_compliance_rate() * 100.0),
            format!("{:.1}", worst.0),
            format!("{:.2}", worst.1),
        ]);
    }

    println!("Burstiness ablation — ParvaGPU S2 deployment under MMPP arrivals\n");
    println!("{}", table.render());
    write_csv("ablation_burstiness.csv", &table.to_csv());
}
