//! Extension experiment: ParvaGPU chasing fluctuating load.
//!
//! The paper motivates low scheduling overhead with "environments with
//! fluctuating request rates" (§IV-A) and sketches incremental
//! reconfiguration in §III-F, but never shows a closed loop. This harness
//! runs a diurnal day and a flash-crowd spike over a half-S3 catalogue,
//! comparing the **incremental** path (per-service
//! `reconfigure::update_service`) against full **re-planning** each epoch:
//! fleet size, compliance, and — the §III-F payoff — reconfiguration churn.
//!
//! Run: `cargo run --release -p parva-bench --bin autoscale_trace`

use parva_autoscale::{orchestrator, RateTrace};
use parva_bench::write_csv;
use parva_deploy::ServiceSpec;
use parva_metrics::TextTable;
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::ServingConfig;

fn base() -> Vec<ServiceSpec> {
    Scenario::S3
        .services()
        .into_iter()
        .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 0.5, s.slo.latency_ms))
        .collect()
}

fn run(name: &str, trace: &RateTrace, book: &ProfileBook) {
    let serving = ServingConfig {
        warmup_s: 1.0,
        duration_s: 4.0,
        drain_s: 2.0,
        seed: 42,
        ..Default::default()
    };
    #[allow(deprecated)] // benchmark compares the legacy oracle-fed loops
    let inc = orchestrator::run_traced(book, &base(), trace, &serving).expect("feasible");
    #[allow(deprecated)]
    let rep = orchestrator::run_traced_replan(book, &base(), trace, &serving).expect("feasible");

    let mut table = TextTable::new(vec![
        "epoch",
        "load x",
        "GPUs (incr)",
        "GPUs (replan)",
        "churn (incr)",
        "churn (replan)",
        "compliance (incr) %",
    ]);
    for (a, b) in inc.epochs.iter().zip(&rep.epochs) {
        table.row(vec![
            a.epoch.to_string(),
            format!("{:.2}", a.multiplier),
            a.gpus.to_string(),
            b.gpus.to_string(),
            a.reconfigured_gpus.to_string(),
            b.reconfigured_gpus.to_string(),
            format!("{:.2}", a.compliance * 100.0),
        ]);
    }
    println!("=== {name} ===\n{}", table.render());
    println!(
        "incremental: peak {} GPUs, total churn {}, worst compliance {:.2}%",
        inc.peak_gpus(),
        inc.total_reconfigurations(),
        inc.min_compliance() * 100.0
    );
    println!(
        "full replan: peak {} GPUs, total churn {}\n",
        rep.peak_gpus(),
        rep.total_reconfigurations()
    );
    write_csv(&format!("autoscale_{name}.csv"), &table.to_csv());
}

fn main() {
    let book = ProfileBook::builtin();
    run("diurnal", &RateTrace::diurnal(12, 0.4, 1.8), &book);
    run("spike", &RateTrace::spike(8, 3.0, 2), &book);
}
