//! Regenerates **Figures 10 and 11**: the predictor scalability experiment.
//! The number of services in S5 is increased 1- to 10-fold; each framework
//! is run in predictor mode (scheduling only, no execution) and we record
//! the total GPUs (Fig. 10) and scheduling delay (Fig. 11).
//!
//! iGniter is excluded "due to its incompatibility with S5" (paper §IV-D).
//! Run with `--release`; MIG-serving's greedy is intentionally expensive at
//! 10× (that is Fig. 11's point).

use parva_bench::write_csv;
use parva_core::{ParvaGpu, ParvaGpuSingle};
use parva_deploy::Scheduler;
use parva_metrics::{log_ms, TextTable};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;

fn main() {
    let book = ProfileBook::builtin();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(parva_baselines::Gpulet::new()),
        Box::new(parva_baselines::MigServing::new(&book)),
        Box::new(ParvaGpuSingle::new(&book)),
        Box::new(ParvaGpu::new(&book)),
    ];

    let mut gpus_table = TextTable::new(vec![
        "factor",
        "gpulet",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);
    let mut delay_table = TextTable::new(vec![
        "factor",
        "gpulet",
        "MIG-serving",
        "ParvaGPU-single",
        "ParvaGPU",
    ]);

    println!("Figures 10 & 11 — S5 scaled 1..10×: GPUs and scheduling delay\n");
    for k in 1..=10u32 {
        let specs = Scenario::S5.scaled(k);
        let mut gpus_row = vec![k.to_string()];
        let mut delay_row = vec![k.to_string()];
        for sched in &schedulers {
            let _ = sched.schedule(&specs); // warm-up (cold-cache noise)
            let start = std::time::Instant::now();
            let result = sched.schedule(&specs);
            let elapsed = start.elapsed();
            match result {
                Ok(d) => {
                    gpus_row.push(d.gpu_count().to_string());
                    delay_row.push(format!("{:.2}", log_ms(elapsed)));
                }
                Err(_) => {
                    gpus_row.push("fail".into());
                    delay_row.push("fail".into());
                }
            }
        }
        gpus_table.row(gpus_row);
        delay_table.row(delay_row);
        eprintln!("  {k}× done");
    }

    println!("Figure 10 — total GPUs:\n{}", gpus_table.render());
    println!(
        "Figure 11 — scheduling delay (log10 ms):\n{}",
        delay_table.render()
    );
    write_csv("fig10_gpu_scaling.csv", &gpus_table.to_csv());
    write_csv("fig11_delay_scaling.csv", &delay_table.to_csv());
}
