//! Region-failover experiment: sweep seeds over the three-region demo
//! federation with a scripted evacuation + failback drill, tabulate
//! recovery behaviour (spill volume, spilled-tail latency, compliance
//! dips, regional cost), and write `region_failover.csv` under
//! `results/`.
//!
//! Every column except `sim_wall_ms` is deterministic per seed —
//! re-running reproduces those byte for byte; `sim_wall_ms` is the
//! measured wall-clock of the run on the current host.
//!
//! Usage: `cargo run --release -p parva-bench --bin region_failover [seeds]`

use parva_bench::write_csv;
use parva_profile::ProfileBook;
use parva_region::{
    demo_services, run_federation, EvacuationDrill, FederationConfig, FederationSpec,
};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let book = ProfileBook::builtin();
    let spec = FederationSpec::three_region_demo();
    let services = demo_services();

    let mut csv = String::from(
        "seed,intervals,spill_rps_total,worst_spilled_p99_ms,worst_dip_pct,\
         worst_recovery_ms,precopied_gib,final_compliance_pct,final_usd_per_hour,recovered,\
         sim_wall_ms\n",
    );
    println!("== region failover: {seeds} seeds, 3-region federation, evacuation drill ==\n");
    for seed in 0..seeds as u64 {
        let config = FederationConfig {
            seed,
            intervals: 8,
            drill: Some(EvacuationDrill {
                region: 0,
                evacuate_at: 3,
                failback_at: 6,
            }),
            ..FederationConfig::default()
        };
        let run_started = std::time::Instant::now();
        let outcome = run_federation(&book, &services, &spec, &config);
        let sim_wall_ms = run_started.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(report) => {
                let final_cost = report
                    .intervals
                    .last()
                    .map_or(report.baseline.usd_per_hour, |i| i.usd_per_hour);
                csv.push_str(&format!(
                    "{seed},{},{:.0},{:.0},{:.3},{:.0},{:.1},{:.3},{:.2},{},{sim_wall_ms:.1}\n",
                    report.intervals.len(),
                    report.total_spilled_rps(),
                    report.worst_spilled_p99_ms(),
                    report.worst_dip() * 100.0,
                    report.worst_recovery_latency_ms(),
                    report.total_precopied_gib(),
                    report.final_compliance() * 100.0,
                    final_cost,
                    report.recovered()
                ));
                println!("{}", report.render());
            }
            Err(e) => {
                csv.push_str(&format!("{seed},0,0,0,0,0,0,0,0,error,{sim_wall_ms:.1}\n"));
                println!("seed {seed}: {e}\n");
            }
        }
    }
    write_csv("region_failover.csv", &csv);
}
