//! Region-failover experiment: sweep seeds over the three-region demo
//! federation with a scripted evacuation + failback drill, tabulate
//! recovery behaviour (spill volume, spilled-tail latency, compliance
//! dips, regional cost), and write `region_failover.csv` under
//! `results/`.
//!
//! Each row runs the registered `region_failover` [`ScenarioSpec`] (the
//! same declarative object behind `parvactl run region_failover`) with
//! the row's seed — the experiment definition lives in the spec
//! registry, not in this binary.
//!
//! Every column except `sim_wall_ms` is deterministic per seed —
//! re-running reproduces those byte for byte; `sim_wall_ms` is the
//! measured wall-clock of the run on the current host.
//!
//! Usage: `cargo run --release -p parva-bench --bin region_failover [seeds]`

use parva_bench::write_csv;
use parvagpu::scenarios::{spec_by_name, ScenarioReport};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let spec = spec_by_name("region_failover").expect("registered builtin");

    let mut csv = String::from(
        "seed,intervals,spill_rps_total,worst_spilled_p99_ms,worst_dip_pct,\
         worst_recovery_ms,precopied_gib,final_compliance_pct,final_usd_per_hour,recovered,\
         sim_wall_ms\n",
    );
    println!(
        "== region failover: {seeds} seeds, spec '{}' ==\n",
        spec.name
    );
    for seed in 0..seeds as u64 {
        let mut run = spec.clone();
        run.seed = seed;
        let run_started = std::time::Instant::now();
        let outcome = run.run();
        let sim_wall_ms = run_started.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(ScenarioReport::Region(report)) => {
                let final_cost = report
                    .intervals
                    .last()
                    .map_or(report.baseline.usd_per_hour, |i| i.usd_per_hour);
                csv.push_str(&format!(
                    "{seed},{},{:.0},{:.0},{:.3},{:.0},{:.1},{:.3},{:.2},{},{sim_wall_ms:.1}\n",
                    report.intervals.len(),
                    report.total_spilled_rps(),
                    report.worst_spilled_p99_ms(),
                    report.worst_dip() * 100.0,
                    report.worst_recovery_latency_ms(),
                    report.total_precopied_gib(),
                    report.final_compliance() * 100.0,
                    final_cost,
                    report.recovered()
                ));
                println!("{}", report.render());
            }
            Ok(_) => unreachable!("region spec returns a region report"),
            Err(e) => {
                csv.push_str(&format!("{seed},0,0,0,0,0,0,0,0,error,{sim_wall_ms:.1}\n"));
                println!("seed {seed}: {e}\n");
            }
        }
    }
    write_csv("region_failover.csv", &csv);
}
