//! # parva-bench — the experiment harness
//!
//! Shared machinery for the per-figure binaries (`src/bin/fig*.rs`,
//! `table*.rs`, `repro_all.rs`) and the criterion benches. Each binary
//! regenerates the rows/series of one table or figure of the paper; see
//! DESIGN.md §4 for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    evaluate_scenario, framework_names, results_dir, write_csv, FrameworkResult, ScenarioEval,
};
