//! Scenario-evaluation harness shared by the figure binaries.

use parva_core::{ParvaGpu, ParvaGpuSingle, ParvaGpuUnoptimized};
use parva_deploy::{Deployment, ScheduleError, Scheduler, ServiceSpec};
use parva_metrics::{external_fragmentation, internal_slack, slo_compliance};
use parva_profile::ProfileBook;
use parva_scenarios::Scenario;
use parva_serve::{ServingConfig, Simulation};
use std::path::PathBuf;
use std::time::Duration;

/// The framework lineup of the paper's figures, in legend order.
#[must_use]
pub fn framework_names() -> Vec<&'static str> {
    vec![
        "gpulet",
        "iGniter",
        "MIG-serving",
        "ParvaGPU-unoptimized",
        "ParvaGPU-single",
        "ParvaGPU",
    ]
}

/// Construct every scheduler afresh (they are cheap to build; the profile
/// book is shared).
#[must_use]
pub fn build_schedulers(book: &ProfileBook) -> Vec<Box<dyn Scheduler + Send + Sync>> {
    vec![
        Box::new(parva_baselines::Gpulet::new()),
        Box::new(parva_baselines::IGniter::new()),
        Box::new(parva_baselines::MigServing::new(book)),
        Box::new(ParvaGpuUnoptimized::new(book)),
        Box::new(ParvaGpuSingle::new(book)),
        Box::new(ParvaGpu::new(book)),
    ]
}

/// One framework's outcome on one scenario.
#[derive(Debug, Clone)]
pub struct FrameworkResult {
    /// Framework name.
    pub name: &'static str,
    /// Scheduling outcome (`Err` ⇒ the framework cannot run the scenario,
    /// e.g. iGniter on S5/S6).
    pub deployment: Result<Deployment, ScheduleError>,
    /// Wall-clock scheduling delay.
    pub delay: Duration,
    /// External fragmentation of the deployment (static metric).
    pub fragmentation: Option<f64>,
    /// Internal slack measured by the serving simulation.
    pub slack: Option<f64>,
    /// Batch-weighted SLO compliance measured by the serving simulation.
    pub compliance: Option<f64>,
}

impl FrameworkResult {
    /// GPU count, if scheduling succeeded.
    #[must_use]
    pub fn gpus(&self) -> Option<usize> {
        self.deployment.as_ref().ok().map(Deployment::gpu_count)
    }
}

/// Full evaluation of one scenario across all frameworks.
#[derive(Debug, Clone)]
pub struct ScenarioEval {
    /// The scenario.
    pub scenario: Scenario,
    /// Per-framework results, in [`framework_names`] order.
    pub results: Vec<FrameworkResult>,
}

/// Evaluate `scenario` with every framework. When `with_serving` is set, the
/// serving simulation also runs (needed for slack/compliance; costs seconds
/// per framework on the big scenarios).
#[must_use]
pub fn evaluate_scenario(
    book: &ProfileBook,
    scenario: Scenario,
    with_serving: bool,
    serving: &ServingConfig,
) -> ScenarioEval {
    let specs: Vec<ServiceSpec> = scenario.services();
    let results = build_schedulers(book)
        .into_iter()
        .map(|sched| {
            // One untimed warm-up run, then take the best of three timed
            // runs — scheduling delay is the *algorithm's* cost, not the
            // allocator's cold-cache noise.
            let _ = sched.schedule(&specs);
            let mut delay = std::time::Duration::MAX;
            let mut deployment = Err(ScheduleError::InvalidService {
                service_id: u32::MAX,
            });
            for _ in 0..3 {
                let start = std::time::Instant::now();
                deployment = sched.schedule(&specs);
                delay = delay.min(start.elapsed());
            }
            let fragmentation = deployment.as_ref().ok().map(external_fragmentation);
            let (slack, compliance) = match (&deployment, with_serving) {
                (Ok(d), true) => {
                    let report = Simulation::new(d, &specs).config(serving).run();
                    (Some(internal_slack(&report)), Some(slo_compliance(&report)))
                }
                _ => (None, None),
            };
            FrameworkResult {
                name: sched.name(),
                deployment,
                delay,
                fragmentation,
                slack,
                compliance,
            }
        })
        .collect();
    ScenarioEval { scenario, results }
}

/// Directory where harness binaries drop their CSVs (`results/` at the
/// workspace root, overridable with `PARVA_RESULTS_DIR`).
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PARVA_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the executable-independent CWD to find the workspace.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir.join("results");
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd.join("results"),
        }
    }
}

/// Write a CSV string under `results/` and echo the path.
pub fn write_csv(name: &str, csv: &str) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, csv) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_frameworks() {
        let book = ProfileBook::builtin();
        assert_eq!(build_schedulers(&book).len(), framework_names().len());
    }

    #[test]
    fn s1_evaluation_without_serving() {
        let book = ProfileBook::builtin();
        let eval = evaluate_scenario(&book, Scenario::S1, false, &ServingConfig::default());
        assert_eq!(eval.results.len(), 6);
        // Every framework can schedule the small scenario.
        for r in &eval.results {
            assert!(r.deployment.is_ok(), "{} failed", r.name);
            assert!(r.gpus().unwrap() >= 1);
            assert!(r.fragmentation.is_some());
            assert!(r.slack.is_none(), "serving was off");
        }
    }

    #[test]
    fn parvagpu_uses_fewest_gpus_on_s1() {
        let book = ProfileBook::builtin();
        let eval = evaluate_scenario(&book, Scenario::S1, false, &ServingConfig::default());
        let parva = eval.results.iter().find(|r| r.name == "ParvaGPU").unwrap();
        for r in &eval.results {
            if let Some(g) = r.gpus() {
                assert!(parva.gpus().unwrap() <= g, "{} beat ParvaGPU", r.name);
            }
        }
    }
}
