//! gpulet (Choi et al., USENIX ATC 2022) — spatio-temporal MPS scheduler.
//!
//! Faithful to the behaviour the ParvaGPU paper evaluates against (§II-A,
//! §IV):
//!
//! * each service's demand is split into partition-sized chunks by the most
//!   *efficient* (throughput per SM-fraction) operating point;
//! * at most **two** partitions share a GPU; when a pair is placed, the
//!   first partition gets its fitted fraction and the second is inflated to
//!   the **entire remainder** of the GPU — gpulet's way of avoiding external
//!   fragmentation at the price of internal slack;
//! * pairing is gated by an interference *prediction*; the predictor's
//!   pair-dependent error (κ̂ vs true κ) is what produces gpulet's residual
//!   SLO violations (paper Fig. 8, scenario S2);
//! * every pairing candidate is re-fitted under predicted interference —
//!   an O(N²) search giving gpulet its "medium" scheduling overhead.

use crate::common::{best_batch_at, fractions, MpsPoint};
use parva_deploy::{
    Capabilities, Deployment, MpsDeployment, MpsGpu, MpsPartition, ScheduleError, Scheduler,
    ServiceSpec,
};
use parva_perf::interference::kappa_estimate;
use parva_perf::Model;

/// Relative error bound of gpulet's interference predictor (κ̂ deviates from
/// κ by up to this fraction, deterministically per model pair). Calibrated
/// so that the misprediction produces occasional SLO violations in one of
/// the small scenarios, as in the paper's Fig. 8 (3.5% in S2).
pub const DEFAULT_KAPPA_ERROR: f64 = 0.35;

/// Planned utilization of each chunk's partition (gpulet, like every real
/// serving system, leaves burstiness headroom below profiled throughput).
pub const TARGET_UTILIZATION: f64 = 0.95;

/// One demand chunk awaiting placement.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    spec: ServiceSpec,
    point: MpsPoint,
    /// Offered load this chunk must absorb, req/s.
    rate_rps: f64,
}

/// The gpulet scheduler.
#[derive(Debug, Clone)]
pub struct Gpulet {
    kappa_error: f64,
}

impl Default for Gpulet {
    fn default() -> Self {
        Self::new()
    }
}

impl Gpulet {
    /// gpulet with the default interference-predictor error.
    #[must_use]
    pub fn new() -> Self {
        Self {
            kappa_error: DEFAULT_KAPPA_ERROR,
        }
    }

    /// Override the predictor error (0 = oracle predictor).
    #[must_use]
    pub fn with_kappa_error(mut self, err: f64) -> Self {
        self.kappa_error = err.max(0.0);
        self
    }

    /// Split a service into chunks (gpulet's elastic partitioning): the rate
    /// is divided into the fewest chunks a single GPU can serve each of,
    /// then each chunk gets the smallest partition fraction covering it.
    fn chunks_for(&self, spec: &ServiceSpec) -> Result<Vec<Chunk>, ScheduleError> {
        if !spec.is_valid() {
            return Err(ScheduleError::InvalidService {
                service_id: spec.id,
            });
        }
        let target = spec.slo.internal_target_ms();
        let full_gpu =
            best_batch_at(spec.model, 1.0, target, 0.0, 1).ok_or(ScheduleError::InfeasibleSlo {
                service_id: spec.id,
                internal_target_ms: target,
            })?;
        let per_gpu = full_gpu.throughput_rps * TARGET_UTILIZATION;
        let k = (spec.request_rate_rps / per_gpu).ceil().max(1.0) as u32;
        let per_chunk = spec.request_rate_rps / f64::from(k);
        let point = fractions()
            .into_iter()
            .filter_map(|f| best_batch_at(spec.model, f, target, 0.0, 1))
            .find(|p| p.throughput_rps * TARGET_UTILIZATION >= per_chunk)
            .expect("a full GPU covers rate/k by construction of k");
        Ok((0..k)
            .map(|_| Chunk {
                spec: *spec,
                point,
                rate_rps: per_chunk,
            })
            .collect())
    }

    /// Refit a chunk's fraction under predicted interference from `other`:
    /// the smallest fraction ≥ the solo fraction that still covers the
    /// chunk's rate within latency under κ̂.
    fn refit(&self, chunk: &Chunk, other: Model) -> Option<MpsPoint> {
        let k_hat = kappa_estimate(chunk.spec.model, other, self.kappa_error);
        let target = chunk.spec.slo.internal_target_ms();
        fractions()
            .into_iter()
            .filter(|f| *f >= chunk.point.fraction - 1e-9)
            .filter_map(|f| best_batch_at(chunk.spec.model, f, target, k_hat, 1))
            .find(|p| p.throughput_rps * TARGET_UTILIZATION >= chunk.rate_rps)
    }

    fn partition_from(chunk: &Chunk, point: MpsPoint) -> MpsPartition {
        MpsPartition {
            service_id: chunk.spec.id,
            model: chunk.spec.model,
            fraction: point.fraction,
            batch: point.batch,
            procs: point.procs,
            throughput_rps: point.throughput_rps,
            latency_ms: point.latency_ms,
        }
    }

    /// Inflate `partition` to absorb all remaining GPU fraction (gpulet's
    /// remainder rule), re-deriving its batch/throughput at the larger size.
    fn inflate(&self, chunk: &Chunk, to_fraction: f64, co_resident: Option<Model>) -> MpsPartition {
        let k_hat = co_resident.map_or(0.0, |m| {
            kappa_estimate(chunk.spec.model, m, self.kappa_error)
        });
        let target = chunk.spec.slo.internal_target_ms();
        let point =
            best_batch_at(chunk.spec.model, to_fraction, target, k_hat, 1).unwrap_or(chunk.point);
        Self::partition_from(
            chunk,
            MpsPoint {
                fraction: to_fraction,
                ..point
            },
        )
    }
}

impl Scheduler for Gpulet {
    fn name(&self) -> &'static str {
        "gpulet"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        // 1. Elastic partitioning into chunks.
        let mut chunks: Vec<Chunk> = Vec::new();
        for spec in services {
            chunks.extend(self.chunks_for(spec)?);
        }
        // Largest-fraction first (first-fit-decreasing flavour).
        chunks.sort_by(|a, b| {
            b.point
                .fraction
                .total_cmp(&a.point.fraction)
                .then_with(|| a.spec.id.cmp(&b.spec.id))
        });

        // 2. Pairing: exhaustively evaluate partners for the head chunk.
        let mut deployment = MpsDeployment::new();
        let mut remaining: std::collections::VecDeque<Chunk> = chunks.into();
        while let Some(c1) = remaining.pop_front() {
            let mut best: Option<(usize, MpsPoint, MpsPoint)> = None;
            for (i, c2) in remaining.iter().enumerate() {
                let Some(p1) = self.refit(&c1, c2.spec.model) else {
                    continue;
                };
                let Some(p2) = self.refit(c2, c1.spec.model) else {
                    continue;
                };
                if p1.fraction + p2.fraction > 1.0 + 1e-9 {
                    continue;
                }
                let mem = parva_perf::math::memory_gib(c1.spec.model, p1.batch, 1)
                    + parva_perf::math::memory_gib(c2.spec.model, p2.batch, 1);
                if mem > parva_mig::GpuModel::A100_80GB.total_memory_gib() {
                    continue;
                }
                // Prefer the fullest feasible pairing.
                let util = p1.fraction + p2.fraction;
                if best.is_none_or(|(_, q1, q2)| util > q1.fraction + q2.fraction) {
                    best = Some((i, p1, p2));
                }
            }

            let mut gpu = MpsGpu::default();
            match best {
                Some((i, p1, _)) => {
                    let c2 = remaining.remove(i).expect("index valid");
                    gpu.partitions.push(Self::partition_from(&c1, p1));
                    // The second partition takes the whole remainder
                    // (paper: "the remaining GPU resources are then entirely
                    // assigned to the second workload's MPS partition").
                    let remainder = 1.0 - p1.fraction;
                    gpu.partitions
                        .push(self.inflate(&c2, remainder, Some(c1.spec.model)));
                }
                None => {
                    // Alone on the GPU: gpulet gives it the whole card.
                    gpu.partitions.push(self.inflate(&c1, 1.0, None));
                }
            }
            deployment.gpus.push(gpu);
        }
        Ok(Deployment::Mps(deployment))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::gpulet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s2_specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    #[test]
    fn schedules_s2_with_full_coverage() {
        let d = Gpulet::new().schedule(&s2_specs()).unwrap();
        assert!(d.validate());
        for s in s2_specs() {
            assert!(
                d.capacity_of(s.id) + 1e-6 >= s.request_rate_rps,
                "service {} capacity {:.1} < {:.1}",
                s.id,
                d.capacity_of(s.id),
                s.request_rate_rps
            );
        }
    }

    #[test]
    fn at_most_two_partitions_per_gpu() {
        let d = Gpulet::new().schedule(&s2_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        for g in &mps.gpus {
            assert!(g.partitions.len() <= 2, "{} partitions", g.partitions.len());
        }
    }

    #[test]
    fn every_gpu_fully_allocated() {
        // The remainder rule means no GPU has unassigned fraction.
        let d = Gpulet::new().schedule(&s2_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        for g in &mps.gpus {
            assert!(
                (g.fraction_used() - 1.0).abs() < 1e-6,
                "GPU only {:.0}% allocated",
                g.fraction_used() * 100.0
            );
        }
    }

    #[test]
    fn internal_slack_from_remainder_rule() {
        // Somewhere in the fleet, a partition must be bigger than its load
        // needs — the over-allocation the paper criticizes.
        let d = Gpulet::new().schedule(&s2_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        let over = mps
            .partitions()
            .filter(|(_, p)| {
                let solo = best_batch_at(p.model, p.fraction, f64::INFINITY, 0.0, 1);
                solo.is_some_and(|s| s.throughput_rps > p.throughput_rps * 1.05)
                    || p.fraction >= 0.99
            })
            .count();
        assert!(over > 0, "no over-allocated partition found");
    }

    #[test]
    fn high_rate_splits_into_many_chunks() {
        // S6's DenseNet-169 at 5260 req/s exceeds a full GPU's throughput,
        // so elastic partitioning must split it across several GPUs.
        let spec = vec![ServiceSpec::new(0, Model::DenseNet169, 5_260.0, 217.0)];
        let d = Gpulet::new().schedule(&spec).unwrap();
        assert!(d.gpu_count() >= 2, "only {} GPUs", d.gpu_count());
        assert!(d.capacity_of(0) >= 5_260.0);
    }

    #[test]
    fn infeasible_slo_rejected() {
        let spec = vec![ServiceSpec::new(0, Model::BertLarge, 10.0, 1.0)];
        assert!(matches!(
            Gpulet::new().schedule(&spec),
            Err(ScheduleError::InfeasibleSlo { service_id: 0, .. })
        ));
    }

    #[test]
    fn deterministic() {
        let a = Gpulet::new().schedule(&s2_specs()).unwrap();
        let b = Gpulet::new().schedule(&s2_specs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = Gpulet::new().capabilities();
        assert!(c.mps_support && !c.mig_support);
        assert_eq!(
            c.spatial_scheduling,
            parva_deploy::SpatialScheduling::UpTo(2)
        );
    }
}
