//! iGniter (Xu et al., IEEE TPDS 2023) — interference-aware MPS provisioning.
//!
//! Faithful to the behaviour the ParvaGPU paper evaluates against:
//!
//! * each workload gets **one** partition sized by a lightweight performance
//!   model to serve its whole rate within the latency target — iGniter does
//!   not split a workload across GPUs, so rates beyond one full GPU fail
//!   (paper §IV-B: "iGniter is unable to manage high request rates, leading
//!   to its failure to execute in S5 and S6");
//! * the fitted fraction is inflated by an interference headroom ("iGniter
//!   allocates additional GPU resources to each workload", §II-A) —
//!   guaranteeing SLO compliance but creating internal slack;
//! * partitions are placed first-fit-decreasing with an
//!   interference-feasibility gate and **no fragmentation handling**, so
//!   sub-100% leftovers accumulate (paper Fig. 7: ~27% external
//!   fragmentation on average).

use crate::common::{best_batch_at, ceil_fraction, min_fraction_covering};
use parva_deploy::{
    Capabilities, Deployment, MpsDeployment, MpsGpu, MpsPartition, ScheduleError, Scheduler,
    ServiceSpec,
};
use parva_perf::interference::total_interference;
use parva_perf::{Model, PerfParams};

/// Base interference headroom γ added to every fitted fraction.
pub const BASE_HEADROOM: f64 = 0.15;

/// iGniter's inference server overlaps host-side work and PCIe transfers
/// with GPU compute via double-buffered CUDA streams (its performance model
/// separates the data-loading phase from the kernel phase precisely so they
/// can overlap). In the batch-cycle substrate this behaves like two
/// concurrent workers per partition.
pub const PIPELINE_DEPTH: u32 = 2;

/// Planned utilization: like every real serving system, iGniter provisions
/// below profiled peak throughput to absorb Poisson burstiness.
pub const TARGET_UTILIZATION: f64 = 0.90;

/// The iGniter scheduler.
#[derive(Debug, Clone, Default)]
pub struct IGniter;

impl IGniter {
    /// A new iGniter instance.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Size one workload: smallest fraction serving the full rate, inflated
    /// by the interference headroom.
    fn size(&self, spec: &ServiceSpec) -> Result<MpsPartition, ScheduleError> {
        if !spec.is_valid() {
            return Err(ScheduleError::InvalidService {
                service_id: spec.id,
            });
        }
        let target = spec.slo.internal_target_ms();
        let planned_rate = spec.request_rate_rps / TARGET_UTILIZATION;
        let fitted = min_fraction_covering(spec.model, planned_rate, target, PIPELINE_DEPTH)
            .ok_or_else(|| {
                // Distinguish "SLO impossible even at tiny rate" from "rate
                // beyond one GPU".
                let max_rps = best_batch_at(spec.model, 1.0, target, 0.0, PIPELINE_DEPTH)
                    .map_or(0.0, |p| p.throughput_rps);
                if max_rps <= 0.0 {
                    ScheduleError::InfeasibleSlo {
                        service_id: spec.id,
                        internal_target_ms: target,
                    }
                } else {
                    ScheduleError::RateTooHigh {
                        service_id: spec.id,
                        rate_rps: spec.request_rate_rps,
                        max_rps,
                    }
                }
            })?;

        // Headroom grows with the model's own interference sensitivity.
        let gamma = BASE_HEADROOM + 0.10 * PerfParams::for_model(spec.model).memory_intensity();
        let inflated = ceil_fraction(fitted.fraction * (1.0 + gamma));
        let point =
            best_batch_at(spec.model, inflated, target, 0.0, PIPELINE_DEPTH).unwrap_or(fitted);
        Ok(MpsPartition {
            service_id: spec.id,
            model: spec.model,
            fraction: inflated,
            batch: point.batch,
            procs: PIPELINE_DEPTH,
            // Advertise only the demanded rate as capacity headroom is a
            // safety margin, but route with real predicted throughput.
            throughput_rps: point.throughput_rps,
            latency_ms: point.latency_ms,
        })
    }

    /// Would adding `candidate` to `gpu` keep every resident serving its
    /// *offered rate* within its latency target under the predicted
    /// interference? iGniter's placement gate — the headroom baked into the
    /// fraction is exactly what absorbs the co-location penalty.
    fn placement_feasible(gpu: &MpsGpu, candidate: &MpsPartition, specs: &[ServiceSpec]) -> bool {
        let spec_of = |id: u32| specs.iter().find(|s| s.id == id);
        let mut all: Vec<&MpsPartition> = gpu.partitions.iter().collect();
        all.push(candidate);
        all.iter().all(|p| {
            let Some(spec) = spec_of(p.service_id) else {
                return false;
            };
            let others: Vec<Model> = all
                .iter()
                .filter(|q| !std::ptr::eq(*q, p))
                .map(|q| q.model)
                .collect();
            let interference = total_interference(p.model, &others);
            best_batch_at(
                p.model,
                p.fraction,
                spec.slo.internal_target_ms(),
                interference,
                PIPELINE_DEPTH,
            )
            .is_some_and(|pt| pt.throughput_rps * TARGET_UTILIZATION >= spec.request_rate_rps)
        })
    }
}

impl Scheduler for IGniter {
    fn name(&self) -> &'static str {
        "iGniter"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        let mut partitions: Vec<MpsPartition> = services
            .iter()
            .map(|s| self.size(s))
            .collect::<Result<_, _>>()?;
        // First-fit decreasing.
        partitions.sort_by(|a, b| {
            b.fraction
                .total_cmp(&a.fraction)
                .then_with(|| a.service_id.cmp(&b.service_id))
        });

        let mut deployment = MpsDeployment::new();
        'outer: for p in partitions {
            for gpu in &mut deployment.gpus {
                let mem_ok = gpu.memory_gib()
                    + parva_perf::math::memory_gib(p.model, p.batch, p.procs)
                    <= parva_mig::GpuModel::A100_80GB.total_memory_gib();
                if gpu.fraction_free() + 1e-9 >= p.fraction
                    && mem_ok
                    && Self::placement_feasible(gpu, &p, services)
                {
                    gpu.partitions.push(p);
                    continue 'outer;
                }
            }
            deployment.gpus.push(MpsGpu {
                partitions: vec![p],
            });
        }
        Ok(Deployment::Mps(deployment))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::igniter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s2_specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    fn s5_specs() -> Vec<ServiceSpec> {
        let rates = [
            843.0, 2_228.0, 3_507.0, 1_513.0, 3_815.0, 5_009.0, 1_874.0, 1_340.0, 2_796.0, 1_773.0,
            1_531.0,
        ];
        let lats = [
            2_153.0, 69.0, 84.0, 70.0, 146.0, 59.0, 77.0, 80.0, 72.0, 115.0, 134.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    #[test]
    fn schedules_s2() {
        let d = IGniter::new().schedule(&s2_specs()).unwrap();
        assert!(d.validate());
        for s in s2_specs() {
            assert!(
                d.capacity_of(s.id) + 1e-6 >= s.request_rate_rps,
                "svc {}",
                s.id
            );
        }
    }

    #[test]
    fn one_partition_per_service() {
        let d = IGniter::new().schedule(&s2_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        for s in s2_specs() {
            let n = mps
                .partitions()
                .filter(|(_, p)| p.service_id == s.id)
                .count();
            assert_eq!(n, 1, "service {} split across partitions", s.id);
        }
    }

    #[test]
    fn fails_s5_high_rates() {
        // Paper §IV-B: "iGniter is unable to manage high request rates,
        // leading to its failure to execute in S5 and S6".
        match IGniter::new().schedule(&s5_specs()) {
            Err(ScheduleError::RateTooHigh { .. }) => {}
            other => panic!("expected RateTooHigh, got {other:?}"),
        }
    }

    #[test]
    fn leaves_external_fragmentation() {
        // No remainder rule: some GPU must have unallocated fraction.
        let d = IGniter::new().schedule(&s2_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        let total_free: f64 = mps.gpus.iter().map(MpsGpu::fraction_free).sum();
        assert!(total_free > 0.05, "unexpectedly perfect packing");
    }

    #[test]
    fn headroom_inflates_fractions() {
        let spec = ServiceSpec::new(0, Model::ResNet50, 400.0, 200.0);
        let sized = IGniter::new().size(&spec).unwrap();
        let fitted = min_fraction_covering(Model::ResNet50, 400.0, 100.0, PIPELINE_DEPTH).unwrap();
        assert!(sized.fraction >= fitted.fraction, "no headroom added");
    }

    #[test]
    fn deterministic() {
        let a = IGniter::new().schedule(&s2_specs()).unwrap();
        let b = IGniter::new().schedule(&s2_specs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = IGniter::new().capabilities();
        assert!(c.mps_support && !c.mig_support && !c.high_request_rate);
    }
}
