//! MIG-serving (Tan et al., arXiv:2109.11067) — the *fast* (greedy) algorithm.
//!
//! MIG-serving treats instance sizing + placement as one reconfigurable
//! machine-scheduling (cutting-stock) problem over the 19 valid MIG
//! configurations, solved here with its deployable greedy:
//!
//! * **no MPS** — every instance runs a single process, so throughput per
//!   GPC is structurally below ParvaGPU's (part of why the paper's Fig. 5
//!   shows it using more GPUs);
//! * **conservative utilization target** — instances are sized to run at
//!   ≤ 70% of profiled throughput (the over-allocation "heuristic scores"
//!   the paper blames for internal slack, §II-B/IV-B);
//! * **whole-configuration commitment** — each new GPU adopts the
//!   highest-scoring of the 19 configurations with every instance assigned
//!   to some service (fragmentation prevention by construction, at the cost
//!   of more slack on the tail GPU);
//! * **expensive search** — every GPU decision re-scans all configurations ×
//!   slots × services × profile entries, plus an improvement sweep; the cost
//!   grows with services × GPUs, reproducing the "very high" scheduling
//!   overhead of Table I and Figs. 9/11.

use parva_deploy::{
    Capabilities, Deployment, MigDeployment, ScheduleError, Scheduler, Segment, ServiceSpec,
};
use parva_mig::{all_configurations, Configuration, InstanceProfile};
use parva_profile::{ProfileBook, SweepGrid};

/// MIG-serving sizes instances to run at most at this fraction of their
/// profiled throughput (over-provisioning heuristic).
pub const UTILIZATION_TARGET: f64 = 0.7;

/// The MIG-serving scheduler (fast algorithm).
#[derive(Debug, Clone)]
pub struct MigServing {
    book: ProfileBook,
    improvement_rounds: usize,
}

impl MigServing {
    /// Build from a profile book. Only single-process entries are used
    /// (MIG-serving does not employ MPS); the book may contain more.
    #[must_use]
    pub fn new(book: &ProfileBook) -> Self {
        Self {
            book: book.clone(),
            improvement_rounds: 2,
        }
    }

    /// Build with the profiler's single-process grid (convenience).
    #[must_use]
    pub fn with_builtin_profiles() -> Self {
        Self::new(&ProfileBook::measure(
            &parva_perf::Model::ALL,
            &SweepGrid::single_process(),
        ))
    }

    /// Override the improvement-sweep count (0 disables it).
    #[must_use]
    pub fn with_improvement_rounds(mut self, rounds: usize) -> Self {
        self.improvement_rounds = rounds;
        self
    }

    /// Best single-process operating point of `spec` on `instance`, below
    /// the internal latency target. Deliberately a full table scan per call:
    /// the real system re-evaluates candidate configurations against raw
    /// profiles in its inner loop, which is where its overhead lives.
    fn entry_for(&self, spec: &ServiceSpec, instance: InstanceProfile) -> Option<Segment> {
        let table = self.book.table(spec.model)?;
        table
            .entries_for_instance(instance)
            .filter(|e| e.triplet.procs == 1)
            .filter(|e| e.point.latency_ms < spec.slo.internal_target_ms())
            .max_by(|a, b| a.point.throughput_rps.total_cmp(&b.point.throughput_rps))
            .map(|e| Segment {
                service_id: spec.id,
                model: spec.model,
                triplet: e.triplet,
                throughput_rps: e.point.throughput_rps,
                latency_ms: e.point.latency_ms,
            })
    }

    /// Greedily assign the instances of `config` to services, preferring the
    /// assignment that serves the most remaining demand. Returns the
    /// assignment (parallel to `config.placements()`) and the demand served.
    fn assign_config(
        &self,
        config: &Configuration,
        specs: &[ServiceSpec],
        remaining: &[f64],
    ) -> (Vec<Option<Segment>>, Vec<f64>, f64, usize) {
        let mut rem: Vec<f64> = remaining.to_vec();
        let mut assignment: Vec<Option<Segment>> = Vec::with_capacity(config.placements().len());
        let mut served_total = 0.0;
        let mut filled = 0usize;

        // Largest instances first.
        let mut order: Vec<usize> = (0..config.placements().len()).collect();
        order.sort_by_key(|i| std::cmp::Reverse(config.placements()[*i].profile.gpcs()));

        let mut slots: Vec<Option<Segment>> = vec![None; config.placements().len()];
        for idx in order {
            let instance = config.placements()[idx].profile;
            // Candidate serving the most remaining demand at ≤ 70% load.
            let mut best: Option<(usize, Segment, f64)> = None;
            for (si, spec) in specs.iter().enumerate() {
                let Some(seg) = self.entry_for(spec, instance) else {
                    continue;
                };
                let served = (UTILIZATION_TARGET * seg.throughput_rps).min(rem[si]);
                let better = match &best {
                    None => true,
                    Some((bsi, _, bserved)) => {
                        served > *bserved + 1e-9
                            || (served >= *bserved - 1e-9 && rem[si] > rem[*bsi])
                    }
                };
                if better {
                    best = Some((si, seg, served));
                }
            }
            if let Some((si, seg, served)) = best {
                rem[si] -= served;
                served_total += served;
                filled += 1;
                slots[idx] = Some(seg);
            }
        }
        for s in &slots {
            assignment.push(*s);
        }
        (assignment, rem, served_total, filled)
    }

    /// Choose the best configuration for the next GPU.
    #[allow(clippy::type_complexity)]
    fn best_config<'a>(
        &self,
        configs: &'a [Configuration],
        specs: &[ServiceSpec],
        remaining: &[f64],
    ) -> (&'a Configuration, Vec<Option<Segment>>, Vec<f64>, f64) {
        let mut best: Option<(&Configuration, Vec<Option<Segment>>, Vec<f64>, f64, usize)> = None;
        for cfg in configs {
            let (assignment, rem, served, filled) = self.assign_config(cfg, specs, remaining);
            let replace = match &best {
                None => true,
                Some((bc, _, _, bserved, bfilled)) => {
                    // Maximize served demand; tie-break: fewer unfilled slots
                    // (fragmentation prevention), then fewer GPCs committed.
                    served > *bserved + 1e-9
                        || (served >= *bserved - 1e-9
                            && (filled > *bfilled
                                || (filled == *bfilled && cfg.gpcs_used() < bc.gpcs_used())))
                }
            };
            if replace {
                best = Some((cfg, assignment, rem, served, filled));
            }
        }
        let (c, a, r, s, _) = best.expect("19 configurations always exist");
        (c, a, r, s)
    }
}

impl Scheduler for MigServing {
    fn name(&self) -> &'static str {
        "MIG-serving"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        // Feasibility gate: every service needs at least one workable size.
        for spec in services {
            if !spec.is_valid() {
                return Err(ScheduleError::InvalidService {
                    service_id: spec.id,
                });
            }
            if self.book.table(spec.model).is_none() {
                return Err(ScheduleError::NotProfiled {
                    service_id: spec.id,
                });
            }
            if InstanceProfile::ALL
                .iter()
                .all(|i| self.entry_for(spec, *i).is_none())
            {
                return Err(ScheduleError::InfeasibleSlo {
                    service_id: spec.id,
                    internal_target_ms: spec.slo.internal_target_ms(),
                });
            }
        }

        let configs = all_configurations();
        let mut remaining: Vec<f64> = services.iter().map(|s| s.request_rate_rps).collect();
        let mut deployment = MigDeployment::new();

        // Initial stage (the paper's "over-allocating GPU resources to
        // workloads based on heuristic scores during initial stages",
        // §IV-B2): every service is first granted one instance of its
        // *largest* SLO-feasible profile — the scoring heuristic's "safe"
        // choice — regardless of how small its rate is. This is what makes
        // MIG-serving consume the most GPUs at low request rates (Fig. 5).
        {
            let mut queues: Vec<Segment> = Vec::new();
            for (si, spec) in services.iter().enumerate() {
                let seg = InstanceProfile::ALL
                    .iter()
                    .rev()
                    .find_map(|p| self.entry_for(spec, *p))
                    .expect("feasibility gate passed");
                remaining[si] = (remaining[si] - seg.throughput_rps * UTILIZATION_TARGET).max(0.0);
                queues.push(seg);
            }
            // Place the initial grants largest-first.
            queues.sort_by_key(|s| std::cmp::Reverse(s.gpcs()));
            for seg in queues {
                deployment.place_first_fit(seg);
            }
        }

        // Greedy construction: one configuration per new GPU.
        while remaining.iter().any(|r| *r > 1e-9) {
            let (config, assignment, rem, served) =
                self.best_config(&configs, services, &remaining);
            if served <= 1e-9 {
                // Defensive: cannot make progress (should be unreachable
                // thanks to the feasibility gate).
                let (id, _) = remaining
                    .iter()
                    .enumerate()
                    .find(|(_, r)| **r > 1e-9)
                    .expect("loop guard");
                return Err(ScheduleError::InfeasibleSlo {
                    service_id: services[id].id,
                    internal_target_ms: services[id].slo.internal_target_ms(),
                });
            }
            let gpu = deployment.gpu_count();
            for (placement, seg) in config.placements().iter().zip(&assignment) {
                if let Some(seg) = seg {
                    deployment
                        .place_at(*seg, gpu, *placement)
                        .expect("configuration placements are valid");
                }
            }
            remaining = rem;
        }

        // Improvement sweep (the fast algorithm's refinement stage): try to
        // re-cover the demand of the most under-utilized GPU with the spare
        // capacity already deployed elsewhere; drop the GPU if possible.
        for _ in 0..self.improvement_rounds {
            let mut spare: Vec<f64> = services
                .iter()
                .map(|s| deployment.capacity_of(s.id) * UTILIZATION_TARGET - s.request_rate_rps)
                .collect();
            // Find the GPU with the least committed throughput.
            let Some((gpu, _)) = (0..deployment.gpu_count())
                .map(|g| {
                    let tput: f64 = deployment
                        .segments_on(g)
                        .map(|ps| ps.segment.throughput_rps)
                        .sum();
                    (g, tput)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                break;
            };
            // Can the rest of the fleet absorb this GPU's load?
            let mut feasible = true;
            for ps in deployment.segments_on(gpu) {
                let si = services
                    .iter()
                    .position(|s| s.id == ps.segment.service_id)
                    .expect("known service");
                spare[si] -= ps.segment.throughput_rps * UTILIZATION_TARGET;
                if spare[si] < 0.0 {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                break;
            }
            let victims: Vec<_> = deployment.segments_on(gpu).copied().collect();
            for ps in victims {
                deployment.remove(ps.gpu, ps.placement);
            }
            deployment.compact();
        }

        Ok(Deployment::Mig(deployment))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::mig_serving()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;

    fn s2_specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    fn sched() -> MigServing {
        MigServing::with_builtin_profiles()
    }

    #[test]
    fn schedules_s2_with_coverage() {
        let d = sched().schedule(&s2_specs()).unwrap();
        assert!(d.validate());
        for s in s2_specs() {
            // MIG-serving targets ≤70% utilization, so capacity must exceed
            // demand by construction.
            assert!(
                d.capacity_of(s.id) * UTILIZATION_TARGET + 1e-6 >= s.request_rate_rps,
                "service {}: capacity {:.0} for rate {:.0}",
                s.id,
                d.capacity_of(s.id),
                s.request_rate_rps
            );
        }
    }

    #[test]
    fn only_single_process_segments() {
        let d = sched().schedule(&s2_specs()).unwrap();
        let mig = d.as_mig().unwrap();
        assert!(mig
            .segments()
            .iter()
            .all(|ps| ps.segment.triplet.procs == 1));
    }

    #[test]
    fn gpus_follow_valid_configurations() {
        let d = sched().schedule(&s2_specs()).unwrap();
        let mig = d.as_mig().unwrap();
        let configs = all_configurations();
        for g in mig.gpus() {
            assert!(
                configs.iter().any(|c| c.contains(g)),
                "GPU layout {g} not a subset of any configuration"
            );
        }
    }

    #[test]
    fn overallocates_at_low_rates() {
        // A single tiny service still occupies a whole configuration's
        // instances — far more capacity than demand.
        let specs = vec![ServiceSpec::new(0, Model::MobileNetV2, 30.0, 300.0)];
        let d = sched().schedule(&specs).unwrap();
        assert!(
            d.capacity_of(0) > 10.0 * 30.0,
            "capacity {:.0}",
            d.capacity_of(0)
        );
    }

    #[test]
    fn more_gpus_than_parvagpu_style_demand() {
        // Structural claim of Fig. 5: 1-process + 70% target needs more
        // GPCs than the demand-matched MPS approach would.
        let d = sched().schedule(&s2_specs()).unwrap();
        let mig = d.as_mig().unwrap();
        let allocated = mig.gpcs_allocated();
        assert!(allocated >= 14, "only {allocated} GPCs");
    }

    #[test]
    fn infeasible_slo_detected() {
        let specs = vec![ServiceSpec::new(7, Model::BertLarge, 10.0, 1.0)];
        assert!(matches!(
            sched().schedule(&specs),
            Err(ScheduleError::InfeasibleSlo { service_id: 7, .. })
        ));
    }

    #[test]
    fn deterministic() {
        let a = sched().schedule(&s2_specs()).unwrap();
        let b = sched().schedule(&s2_specs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = sched().capabilities();
        assert!(!c.mps_support && c.mig_support);
        assert_eq!(c.overhead, Some(parva_deploy::OverheadClass::VeryHigh));
    }
}
