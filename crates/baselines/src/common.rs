//! Shared helpers for the MPS-fraction baselines.

use parva_perf::{ComputeShare, Model, PerfParams};
use parva_profile::DEFAULT_BATCHES;

/// MPS partition granularity used by gpulet and iGniter: 5% of the GPU's
/// SMs (both papers discretize `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`; 5% is
/// the finest step either system's profiling resolves).
pub const FRACTION_STEP: f64 = 0.05;

/// All partition fractions, ascending: 5%, 10%, …, 100%.
#[must_use]
pub fn fractions() -> Vec<f64> {
    (1..=20).map(|i| f64::from(i) * FRACTION_STEP).collect()
}

/// Round a fraction up to the next step, capped at 1.0.
#[must_use]
pub fn ceil_fraction(f: f64) -> f64 {
    ((f / FRACTION_STEP).ceil() * FRACTION_STEP).min(1.0)
}

/// An evaluated MPS operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpsPoint {
    /// SM fraction.
    pub fraction: f64,
    /// Batch size.
    pub batch: u32,
    /// Concurrent workers in the partition.
    pub procs: u32,
    /// Throughput under the assumed interference, req/s.
    pub throughput_rps: f64,
    /// Latency under the assumed interference, ms.
    pub latency_ms: f64,
}

/// Evaluate one (fraction, batch) point under a given interference sum with
/// `procs` concurrent workers (gpulet: 1; iGniter: 2, its server overlaps
/// transfers with compute via double-buffered streams).
#[must_use]
pub fn mps_point(
    model: Model,
    fraction: f64,
    batch: u32,
    interference: f64,
    procs: u32,
) -> MpsPoint {
    let params = PerfParams::for_model(model);
    let gpcs = ComputeShare::Fraction(fraction).effective_gpcs();
    let cycle =
        parva_perf::math::cycle_ms_with_interference(&params, gpcs, batch, procs, interference);
    MpsPoint {
        fraction,
        batch,
        procs,
        throughput_rps: f64::from(procs) * f64::from(batch) * 1000.0 / cycle,
        latency_ms: cycle,
    }
}

/// Best batch (max throughput) at a fraction under a latency bound and the
/// whole-GPU memory ceiling; `None` when no batch qualifies.
#[must_use]
pub fn best_batch_at(
    model: Model,
    fraction: f64,
    max_latency_ms: f64,
    interference: f64,
    procs: u32,
) -> Option<MpsPoint> {
    DEFAULT_BATCHES
        .iter()
        .map(|b| mps_point(model, fraction, *b, interference, procs))
        .filter(|p| p.latency_ms < max_latency_ms)
        .filter(|p| {
            parva_perf::math::memory_gib(model, p.batch, procs)
                <= parva_mig::GpuModel::A100_80GB.total_memory_gib()
        })
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
}

/// The interference-free operating point maximizing throughput **per
/// fraction** under the latency bound — the fraction-space analogue of
/// Demand Matching's optimal segment.
#[must_use]
pub fn most_efficient_point(model: Model, max_latency_ms: f64, procs: u32) -> Option<MpsPoint> {
    fractions()
        .into_iter()
        .filter_map(|f| best_batch_at(model, f, max_latency_ms, 0.0, procs))
        .max_by(|a, b| (a.throughput_rps / a.fraction).total_cmp(&(b.throughput_rps / b.fraction)))
}

/// Smallest fraction whose best batch covers `rate_rps` under the latency
/// bound (one partition serving the whole workload — iGniter's sizing rule).
#[must_use]
pub fn min_fraction_covering(
    model: Model,
    rate_rps: f64,
    max_latency_ms: f64,
    procs: u32,
) -> Option<MpsPoint> {
    fractions()
        .into_iter()
        .filter_map(|f| best_batch_at(model, f, max_latency_ms, 0.0, procs))
        .find(|p| p.throughput_rps >= rate_rps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_ladder() {
        let f = fractions();
        assert_eq!(f.len(), 20);
        assert!((f[0] - FRACTION_STEP).abs() < 1e-12);
        assert!((f[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ceil_fraction_rounds_up() {
        assert!((ceil_fraction(0.31) - 0.35).abs() < 1e-9);
        assert!((ceil_fraction(0.40) - 0.4).abs() < 1e-9);
        assert!((ceil_fraction(1.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_grows_with_fraction() {
        let t =
            |f| best_batch_at(Model::ResNet50, f, 100.0, 0.0, 1).map_or(0.0, |p| p.throughput_rps);
        assert!(t(0.5) > t(0.2));
        assert!(t(1.0) > t(0.5));
    }

    #[test]
    fn interference_reduces_throughput() {
        let clean = best_batch_at(Model::ResNet50, 0.5, 100.0, 0.0, 1).unwrap();
        let dirty = best_batch_at(Model::ResNet50, 0.5, 100.0, 0.3, 1).unwrap();
        assert!(dirty.throughput_rps < clean.throughput_rps);
    }

    #[test]
    fn min_fraction_covering_is_minimal() {
        let p = min_fraction_covering(Model::MobileNetV2, 500.0, 100.0, 1).unwrap();
        assert!(p.throughput_rps >= 500.0);
        if p.fraction > FRACTION_STEP + 1e-12 {
            let below = best_batch_at(
                Model::MobileNetV2,
                p.fraction - FRACTION_STEP,
                100.0,
                0.0,
                1,
            );
            assert!(below.is_none_or(|q| q.throughput_rps < 500.0));
        }
    }

    #[test]
    fn impossible_rate_returns_none() {
        assert!(min_fraction_covering(Model::BertLarge, 1e9, 100.0, 1).is_none());
    }

    #[test]
    fn strict_latency_returns_none() {
        assert!(best_batch_at(Model::BertLarge, 0.1, 1.0, 0.0, 1).is_none());
    }
}
