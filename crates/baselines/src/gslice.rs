//! GSLICE (Dhakal et al., ACM SoCC 2020) — controlled spatial sharing of a
//! GPU through MPS with self-tuned partition sizes and adaptive batching.
//!
//! Faithful to the behaviour the ParvaGPU paper attributes to it (§II-A and
//! Table I):
//!
//! * partitions are sized by a **self-tuning** loop — GSLICE measures the
//!   workload's latency/throughput at the current partition size and grows
//!   the partition until the SLO holds, rather than predicting from a model.
//!   In this substrate "measurement" means evaluating the true performance
//!   model *including* the true interference of the co-residents, so GSLICE
//!   never mispredicts (no SLO violations) and never over-allocates
//!   (→ internal slack prevention ✓, Table I);
//! * **adaptive batching** picks, at every partition size, the largest batch
//!   that still meets the latency target — "a batch size that increases GPU
//!   utilization without violating the SLO";
//! * partitions are packed first-come first-fit with no remainder handling
//!   (→ external fragmentation not prevented, Table I);
//! * GSLICE manages a *single* GPU worth of spatial shares per workload —
//!   "without considering multi-GPU environments, GSLICE is incapable of
//!   handling high request rates" — so any service whose demand exceeds the
//!   best full-GPU operating point is rejected with
//!   [`ScheduleError::RateTooHigh`].

use crate::common::{best_batch_at, fractions, MpsPoint};
use parva_deploy::{
    Capabilities, Deployment, MpsDeployment, MpsGpu, MpsPartition, ScheduleError, Scheduler,
    ServiceSpec,
};
use parva_perf::interference::total_interference;
use parva_perf::Model;

/// GSLICE serves each inference function from one CUDA process per
/// partition (its "vGPU" abstraction dedicates an MPS client per function).
pub const PROCS_PER_PARTITION: u32 = 1;

/// Planned utilization: the self-tuner keeps a small measured margin so the
/// dynamic batch former can absorb Poisson burstiness (the GSLICE paper's
/// "over-provisioning knob" defaults to a few percent).
pub const TARGET_UTILIZATION: f64 = 0.95;

/// The GSLICE scheduler.
#[derive(Debug, Clone, Default)]
pub struct Gslice;

impl Gslice {
    /// A new GSLICE instance.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// One self-tuning step: measure the best adaptive batch at `fraction`
    /// under the *true* interference of `residents` (GSLICE measures, it
    /// does not predict) and report the operating point.
    #[must_use]
    pub fn measure(
        model: Model,
        fraction: f64,
        max_latency_ms: f64,
        residents: &[Model],
    ) -> Option<MpsPoint> {
        let interference = total_interference(model, residents);
        best_batch_at(
            model,
            fraction,
            max_latency_ms,
            interference,
            PROCS_PER_PARTITION,
        )
    }

    /// The self-tuning loop for one service against a fixed resident set:
    /// walk the fraction ladder upward and stop at the first (smallest)
    /// partition whose measured throughput covers the planned rate within
    /// the latency target. Returns `None` when even a whole GPU cannot.
    #[must_use]
    pub fn self_tune(spec: &ServiceSpec, residents: &[Model]) -> Option<MpsPartition> {
        let target = spec.slo.internal_target_ms();
        let planned_rate = spec.request_rate_rps / TARGET_UTILIZATION;
        for fraction in fractions() {
            if let Some(point) = Self::measure(spec.model, fraction, target, residents) {
                if point.throughput_rps >= planned_rate {
                    return Some(MpsPartition {
                        service_id: spec.id,
                        model: spec.model,
                        fraction,
                        batch: point.batch,
                        procs: PROCS_PER_PARTITION,
                        throughput_rps: point.throughput_rps,
                        latency_ms: point.latency_ms,
                    });
                }
            }
        }
        None
    }

    /// Re-measure every resident of `gpu` after a new partition joins; all
    /// must still cover their planned rate under the enlarged resident set.
    /// This is the "controlled" part of GSLICE's controlled sharing: a
    /// tuning round that degrades a co-resident is rolled back.
    fn gpu_still_feasible(gpu: &MpsGpu, specs: &[ServiceSpec]) -> bool {
        gpu.partitions.iter().enumerate().all(|(i, p)| {
            let Some(spec) = specs.iter().find(|s| s.id == p.service_id) else {
                return false;
            };
            let residents = gpu.co_residents(i);
            Self::measure(
                p.model,
                p.fraction,
                spec.slo.internal_target_ms(),
                &residents,
            )
            .is_some_and(|pt| pt.throughput_rps * TARGET_UTILIZATION >= spec.request_rate_rps)
        })
    }
}

impl Scheduler for Gslice {
    fn name(&self) -> &'static str {
        "GSLICE"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        let mut deployment = MpsDeployment::new();
        'services: for spec in services {
            if !spec.is_valid() {
                return Err(ScheduleError::InvalidService {
                    service_id: spec.id,
                });
            }
            // Try each existing GPU in order: tune against its residents,
            // keep the placement only if everyone still meets their SLO.
            for gpu in &mut deployment.gpus {
                let residents: Vec<Model> = gpu.partitions.iter().map(|p| p.model).collect();
                let Some(tuned) = Self::self_tune(spec, &residents) else {
                    continue;
                };
                let mem = parva_perf::math::memory_gib(tuned.model, tuned.batch, tuned.procs);
                if gpu.fraction_free() + 1e-9 < tuned.fraction
                    || gpu.memory_gib() + mem > parva_mig::GpuModel::A100_80GB.total_memory_gib()
                {
                    continue;
                }
                gpu.partitions.push(tuned);
                if Self::gpu_still_feasible(gpu, services) {
                    continue 'services;
                }
                gpu.partitions.pop();
            }
            // Fresh GPU: tune in isolation.
            let Some(tuned) = Self::self_tune(spec, &[]) else {
                let target = spec.slo.internal_target_ms();
                let max_rps = best_batch_at(spec.model, 1.0, target, 0.0, PROCS_PER_PARTITION)
                    .map_or(0.0, |p| p.throughput_rps * TARGET_UTILIZATION);
                return Err(if max_rps <= 0.0 {
                    ScheduleError::InfeasibleSlo {
                        service_id: spec.id,
                        internal_target_ms: target,
                    }
                } else {
                    ScheduleError::RateTooHigh {
                        service_id: spec.id,
                        rate_rps: spec.request_rate_rps,
                        max_rps,
                    }
                });
            };
            deployment.gpus.push(MpsGpu {
                partitions: vec![tuned],
            });
        }
        Ok(Deployment::Mps(deployment))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::gslice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rate_specs() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::new(0, Model::ResNet50, 300.0, 205.0),
            ServiceSpec::new(1, Model::MobileNetV2, 400.0, 167.0),
            ServiceSpec::new(2, Model::InceptionV3, 250.0, 419.0),
        ]
    }

    #[test]
    fn schedules_low_rates_with_capacity() {
        let d = Gslice::new().schedule(&low_rate_specs()).unwrap();
        assert!(d.validate());
        for s in low_rate_specs() {
            assert!(
                d.capacity_of(s.id) + 1e-6 >= s.request_rate_rps,
                "svc {}",
                s.id
            );
        }
    }

    #[test]
    fn self_tuning_finds_minimal_fraction() {
        // The returned fraction must be the smallest feasible one: one step
        // below must not cover the planned rate.
        let spec = ServiceSpec::new(0, Model::ResNet50, 300.0, 205.0);
        let tuned = Gslice::self_tune(&spec, &[]).unwrap();
        let step = crate::common::FRACTION_STEP;
        if tuned.fraction > step + 1e-12 {
            let below = Gslice::measure(
                spec.model,
                tuned.fraction - step,
                spec.slo.internal_target_ms(),
                &[],
            );
            assert!(
                below.is_none_or(|p| p.throughput_rps < spec.request_rate_rps / TARGET_UTILIZATION)
            );
        }
    }

    #[test]
    fn no_internal_slack_headroom_beyond_one_step() {
        // Table I credits GSLICE with internal-slack prevention: unlike
        // iGniter there is no model-error inflation, so allocated capacity
        // stays within one fraction step of demand.
        let spec = ServiceSpec::new(0, Model::Vgg16, 200.0, 400.0);
        let tuned = Gslice::self_tune(&spec, &[]).unwrap();
        let step_down = tuned.fraction - crate::common::FRACTION_STEP;
        if step_down > 1e-12 {
            let below = Gslice::measure(spec.model, step_down, spec.slo.internal_target_ms(), &[]);
            assert!(
                below.is_none_or(|p| p.throughput_rps * TARGET_UTILIZATION < spec.request_rate_rps)
            );
        }
    }

    #[test]
    fn rejects_high_request_rate() {
        // Table I: high request rate support ✗ — one workload cannot exceed
        // a single GPU's best operating point.
        let spec = vec![ServiceSpec::new(0, Model::ResNet50, 50_000.0, 205.0)];
        match Gslice::new().schedule(&spec) {
            Err(ScheduleError::RateTooHigh { max_rps, .. }) => assert!(max_rps > 0.0),
            other => panic!("expected RateTooHigh, got {other:?}"),
        }
    }

    #[test]
    fn rejects_impossible_slo() {
        let spec = vec![ServiceSpec::new(0, Model::BertLarge, 1.0, 2.0)];
        match Gslice::new().schedule(&spec) {
            Err(ScheduleError::InfeasibleSlo { .. }) => {}
            other => panic!("expected InfeasibleSlo, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_spec() {
        let spec = vec![ServiceSpec::new(0, Model::ResNet50, -5.0, 100.0)];
        assert!(matches!(
            Gslice::new().schedule(&spec),
            Err(ScheduleError::InvalidService { service_id: 0 })
        ));
    }

    #[test]
    fn coresidents_respect_slo_after_joining() {
        // Whatever packing results, every service's partition must cover its
        // rate under the true interference of its final co-residents.
        let specs = low_rate_specs();
        let d = Gslice::new().schedule(&specs).unwrap();
        let mps = d.as_mps().unwrap();
        for gpu in &mps.gpus {
            assert!(Gslice::gpu_still_feasible(gpu, &specs));
        }
    }

    #[test]
    fn leaves_external_fragmentation() {
        // No remainder rule → some GPU share goes unused (Table I: ✗).
        let d = Gslice::new().schedule(&low_rate_specs()).unwrap();
        let mps = d.as_mps().unwrap();
        let free: f64 = mps.gpus.iter().map(MpsGpu::fraction_free).sum();
        assert!(free > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = Gslice::new().schedule(&low_rate_specs()).unwrap();
        let b = Gslice::new().schedule(&low_rate_specs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = Gslice::new().capabilities();
        assert!(c.mps_support && !c.mig_support);
        assert!(c.internal_slack_prevention && !c.high_request_rate);
    }
}
