//! # parva-baselines — the paper's comparison schedulers
//!
//! Reimplementations of the three frameworks ParvaGPU is evaluated against
//! (paper §II, §IV-A), built from their published algorithm descriptions and
//! faithful to the *behavioural* properties the paper attributes to them:
//!
//! * [`Gpulet`] (Choi et al., USENIX ATC 2022) — MPS-only. Sizes per-service
//!   partitions by throughput-per-fraction, packs **at most two** partitions
//!   per GPU, and hands the *entire remaining* GPU share to the second
//!   partition (→ internal slack, no external fragmentation). Its pairing
//!   decisions rest on an imperfect interference predictor (→ occasional SLO
//!   violations, Fig. 8).
//! * [`IGniter`] (Xu et al., IEEE TPDS 2023) — MPS-only. Computes each
//!   workload's required SM fraction from a performance model, inflates it
//!   with an interference headroom (→ internal slack), first-fits partitions
//!   onto GPUs with no fragmentation handling (→ external fragmentation),
//!   and cannot split one workload across GPUs (→ fails S5/S6's high rates).
//! * [`MigServing`] (Tan et al., arXiv:2109.11067), *fast* greedy algorithm —
//!   MIG-only, no MPS. Treats sizing + placement as one cutting-stock-style
//!   search over the 19 MIG configurations with conservative utilization
//!   targets (→ over-allocation/internal slack at low rates) and an
//!   improvement loop whose cost grows steeply with services × GPUs (→ very
//!   high scheduling overhead, Figs. 9/11).
//!
//! Two further systems appear in the paper's Table I capability matrix but
//! not in its comparative figures; both are implemented so the matrix is
//! complete and their behavioural critiques are testable:
//!
//! * [`Gslice`] (Dhakal et al., SoCC 2020) — MPS-only. Self-tunes partition
//!   sizes from measurements with adaptive batching (→ no internal slack),
//!   but has no multi-GPU scale-out, so high request rates are rejected.
//! * [`ParisElsa`] (Kim et al., DAC 2022) — MIG-only. PARIS sizes one
//!   instance per workload from its batch-size distribution (tail-sized →
//!   internal slack); ELSA schedules *temporally*, so spatial packing and
//!   fragmentation are out of scope.
//!
//! All five implement [`parva_deploy::Scheduler`] and run against the same
//! profiling substrate as ParvaGPU.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod gpulet;
pub mod gslice;
pub mod igniter;
pub mod migserving;
pub mod paris_elsa;

pub use gpulet::Gpulet;
pub use gslice::Gslice;
pub use igniter::IGniter;
pub use migserving::MigServing;
pub use paris_elsa::ParisElsa;
