//! PARIS and ELSA (Kim, Choi and Rhu, DAC 2022) — elastic scheduling for
//! reconfigurable multi-GPU (MIG) inference servers.
//!
//! Faithful to the behaviour the ParvaGPU paper attributes to the pair
//! (§II-B and Table I):
//!
//! * **PARIS** "determines suitable MIG instance sizes for each workload
//!   based on the batch size's normal distribution" — we model the per-
//!   service batch population as a normal distribution induced by its
//!   arrival rate and batching window, then pick the *smallest* instance
//!   profile whose tail-batch (95th percentile) latency still meets the SLO.
//!   Sizing for the tail is conservative, so typical batches under-fill the
//!   instance (→ internal slack not prevented, Table I);
//! * **ELSA** "schedules workloads temporally on GPUs that have been
//!   heterogeneously partitioned" — instances are placed first-fit with no
//!   fragmentation handling (spatial scheduling is N/A in Table I), and a
//!   temporal admission test lets two low-utilization workloads time-share
//!   one instance ([`TemporalPlan`]);
//! * neither component splits one workload across instances, so a rate
//!   beyond a single 7-GPC instance is rejected
//!   (→ high request rate support ✗, Table I).
//!
//! The [`Scheduler`] impl returns the peak-isolation flattening (one
//! dedicated instance per service): [`MigDeployment`] binds each placement
//! to a single service. ELSA's time-sharing is exposed separately through
//! [`TemporalPlan`], which reports how many instances temporal multiplexing
//! saves; the serving simulator and the comparative figures only exercise
//! the flattened deployment, which is the configuration the ParvaGPU paper's
//! Table I critiques.

use parva_deploy::{
    Capabilities, Deployment, MigDeployment, ScheduleError, Scheduler, Segment, ServiceSpec,
};
use parva_mig::{GpuModel, InstanceProfile};
use parva_perf::ComputeShare;
use parva_profile::Triplet;
use serde::{Deserialize, Serialize};

/// PARIS plans at 90% of the instance's typical-batch throughput (DAC'22
/// §IV: utilization cap that keeps the temporal scheduler's queue stable).
pub const TARGET_UTILIZATION: f64 = 0.90;

/// ELSA admits a time-sharing pair only below this combined utilization; the
/// slack absorbs the context-switch and batch-boundary quantization loss.
pub const SHARE_CAP: f64 = 0.85;

/// The per-service batch-size population PARIS reasons over: requests that
/// arrive within one batching window form a batch, so the batch size is
/// approximately normal around `rate × window` (DAC'22 models it exactly
/// this way from production traces).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchDistribution {
    /// Mean batch size.
    pub mean: f64,
    /// Standard deviation of the batch size.
    pub std: f64,
}

impl BatchDistribution {
    /// Derive the distribution from a service's rate and SLO: the batching
    /// window is half the internal latency target (the other half must be
    /// left for execution), and σ follows the Poisson count's √mean.
    #[must_use]
    pub fn for_service(spec: &ServiceSpec) -> Self {
        let window_s = spec.slo.internal_target_ms() / 2.0 / 1000.0;
        let mean = (spec.request_rate_rps * window_s).clamp(1.0, 128.0);
        Self {
            mean,
            std: mean.sqrt(),
        }
    }

    /// The 50th-percentile (typical) batch, clamped to a valid batch size.
    #[must_use]
    pub fn typical_batch(&self) -> u32 {
        self.mean.round().clamp(1.0, 128.0) as u32
    }

    /// The 95th-percentile (tail) batch PARIS sizes the instance for:
    /// `mean + 1.645σ`, clamped to a valid batch size.
    #[must_use]
    pub fn tail_batch(&self) -> u32 {
        (self.mean + 1.645 * self.std).round().clamp(1.0, 128.0) as u32
    }
}

/// One tenant of a time-shared instance in ELSA's temporal plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// The service occupying the time slice.
    pub service_id: u32,
    /// Fraction of instance time the tenant needs (rate / throughput).
    pub utilization: f64,
}

/// ELSA's native output: instances with their time-shared tenant lists.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemporalPlan {
    /// Instance profile and tenants per scheduled instance.
    pub instances: Vec<(InstanceProfile, Vec<Tenant>)>,
}

impl TemporalPlan {
    /// Instances the plan uses.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Instances saved versus one dedicated instance per tenant.
    #[must_use]
    pub fn instances_saved(&self) -> usize {
        let tenants: usize = self.instances.iter().map(|(_, t)| t.len()).sum();
        tenants - self.instances.len()
    }

    /// Total time-utilization of one instance, all tenants summed.
    #[must_use]
    pub fn utilization_of(&self, idx: usize) -> f64 {
        self.instances[idx].1.iter().map(|t| t.utilization).sum()
    }
}

/// A PARIS-sized service: the chosen instance and its operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sized {
    spec: ServiceSpec,
    instance: InstanceProfile,
    typical_batch: u32,
    throughput_rps: f64,
    latency_ms: f64,
    utilization: f64,
}

/// The PARIS+ELSA scheduler.
#[derive(Debug, Clone, Default)]
pub struct ParisElsa;

impl ParisElsa {
    /// A new PARIS+ELSA instance.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// PARIS sizing: smallest instance whose tail-batch latency meets the
    /// internal target, with the instance memory bound respected.
    fn size(spec: &ServiceSpec) -> Result<Sized, ScheduleError> {
        if !spec.is_valid() {
            return Err(ScheduleError::InvalidService {
                service_id: spec.id,
            });
        }
        let target = spec.slo.internal_target_ms();
        let dist = BatchDistribution::for_service(spec);
        let (tail, typical) = (dist.tail_batch(), dist.typical_batch());
        let fits = |g: InstanceProfile, b: u32| {
            parva_perf::math::memory_gib(spec.model, b, 1)
                <= GpuModel::A100_80GB.instance_memory_gib(g)
        };
        let latency_ok = |g: InstanceProfile| {
            fits(g, tail)
                && parva_perf::latency_ms(spec.model, ComputeShare::Mig(g), tail, 1) < target
        };
        let rate_ok = |g: InstanceProfile| {
            parva_perf::throughput_rps(spec.model, ComputeShare::Mig(g), typical, 1)
                * TARGET_UTILIZATION
                >= spec.request_rate_rps
        };
        // Smallest profile meeting both the tail-batch latency bound and the
        // typical-batch throughput demand.
        let chosen = InstanceProfile::ALL
            .iter()
            .copied()
            .find(|g| latency_ok(*g) && rate_ok(*g));
        let Some(instance) = chosen else {
            if !InstanceProfile::ALL.iter().any(|g| latency_ok(*g)) {
                return Err(ScheduleError::InfeasibleSlo {
                    service_id: spec.id,
                    internal_target_ms: target,
                });
            }
            // Latency is achievable but no single instance covers the rate:
            // PARIS never splits one workload across instances.
            let best = parva_perf::throughput_rps(
                spec.model,
                ComputeShare::Mig(InstanceProfile::G7),
                typical,
                1,
            ) * TARGET_UTILIZATION;
            return Err(ScheduleError::RateTooHigh {
                service_id: spec.id,
                rate_rps: spec.request_rate_rps,
                max_rps: best,
            });
        };
        let share = ComputeShare::Mig(instance);
        let throughput_rps = parva_perf::throughput_rps(spec.model, share, typical, 1);
        Ok(Sized {
            spec: *spec,
            instance,
            typical_batch: typical,
            throughput_rps,
            latency_ms: parva_perf::latency_ms(spec.model, share, typical, 1),
            utilization: spec.request_rate_rps / throughput_rps,
        })
    }

    /// ELSA's temporal admission test: may `a` and `b` time-share one
    /// instance? Both must fit the *larger* profile's latency path, their
    /// combined utilization must stay under [`SHARE_CAP`], and each must
    /// tolerate waiting out one batch of the other (time slicing is at
    /// batch granularity, so the worst extra queuing is the co-tenant's
    /// batch latency).
    #[must_use]
    fn can_share(a: &Sized, b: &Sized) -> bool {
        a.instance == b.instance
            && a.utilization + b.utilization <= SHARE_CAP
            && a.latency_ms + b.latency_ms < a.spec.slo.internal_target_ms()
            && a.latency_ms + b.latency_ms < b.spec.slo.internal_target_ms()
            && parva_perf::math::memory_gib(a.spec.model, a.typical_batch, 1)
                + parva_perf::math::memory_gib(b.spec.model, b.typical_batch, 1)
                <= GpuModel::A100_80GB.instance_memory_gib(a.instance)
    }

    /// Build ELSA's temporal plan: greedy first-fit pairing of same-profile
    /// workloads under the admission test (ELSA's online algorithm is also
    /// greedy on utilization headroom).
    ///
    /// # Errors
    /// Propagates PARIS sizing failures.
    pub fn temporal_plan(&self, services: &[ServiceSpec]) -> Result<TemporalPlan, ScheduleError> {
        let sized: Vec<Sized> = services.iter().map(Self::size).collect::<Result<_, _>>()?;
        let mut plan = TemporalPlan::default();
        let mut residents: Vec<Option<Sized>> = Vec::new();
        for s in sized {
            let tenant = Tenant {
                service_id: s.spec.id,
                utilization: s.utilization,
            };
            let slot = residents
                .iter()
                .position(|r| r.as_ref().is_some_and(|r| Self::can_share(r, &s)));
            if let Some(i) = slot {
                plan.instances[i].1.push(tenant);
                residents[i] = None; // at most two tenants per instance
            } else {
                plan.instances.push((s.instance, vec![tenant]));
                residents.push(Some(s));
            }
        }
        Ok(plan)
    }
}

impl Scheduler for ParisElsa {
    fn name(&self) -> &'static str {
        "PARIS+ELSA"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        let sized: Vec<Sized> = services.iter().map(Self::size).collect::<Result<_, _>>()?;
        // ELSA's placement walks instances largest-first onto the fleet but
        // applies no slot preferences or fragmentation repair.
        let mut order = sized;
        order.sort_by(|a, b| {
            b.instance
                .gpcs()
                .cmp(&a.instance.gpcs())
                .then_with(|| a.spec.id.cmp(&b.spec.id))
        });
        let mut deployment = MigDeployment::new();
        for s in order {
            deployment.place_first_fit(Segment {
                service_id: s.spec.id,
                model: s.spec.model,
                triplet: Triplet::new(s.instance, s.typical_batch, 1),
                throughput_rps: s.throughput_rps,
                latency_ms: s.latency_ms,
            });
        }
        Ok(Deployment::Mig(deployment))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::paris_elsa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;

    fn low_rate_specs() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::new(0, Model::ResNet50, 250.0, 205.0),
            ServiceSpec::new(1, Model::MobileNetV2, 300.0, 167.0),
            ServiceSpec::new(2, Model::DenseNet121, 150.0, 183.0),
            ServiceSpec::new(3, Model::InceptionV3, 120.0, 419.0),
        ]
    }

    #[test]
    fn batch_distribution_tracks_rate() {
        let slow =
            BatchDistribution::for_service(&ServiceSpec::new(0, Model::ResNet50, 10.0, 200.0));
        let fast =
            BatchDistribution::for_service(&ServiceSpec::new(0, Model::ResNet50, 1000.0, 200.0));
        assert!(fast.mean > slow.mean);
        assert!(fast.tail_batch() >= fast.typical_batch());
        assert!(slow.typical_batch() >= 1);
    }

    #[test]
    fn schedules_low_rates_with_capacity() {
        let d = ParisElsa::new().schedule(&low_rate_specs()).unwrap();
        assert!(d.validate());
        for s in low_rate_specs() {
            assert!(d.capacity_of(s.id) * TARGET_UTILIZATION + 1e-6 >= s.request_rate_rps);
        }
    }

    #[test]
    fn mig_only_no_mps() {
        // Table I: MPS ✗ — every segment runs exactly one process.
        let d = ParisElsa::new().schedule(&low_rate_specs()).unwrap();
        let mig = d.as_mig().unwrap();
        assert!(mig.segments().iter().all(|s| s.segment.triplet.procs == 1));
    }

    #[test]
    fn one_instance_per_service() {
        let d = ParisElsa::new().schedule(&low_rate_specs()).unwrap();
        let mig = d.as_mig().unwrap();
        for s in low_rate_specs() {
            assert_eq!(mig.segments_of(s.id).count(), 1);
        }
    }

    #[test]
    fn rejects_high_request_rate() {
        // Table I: high request rate support ✗.
        let spec = vec![ServiceSpec::new(0, Model::ResNet50, 50_000.0, 138.0)];
        match ParisElsa::new().schedule(&spec) {
            Err(ScheduleError::RateTooHigh { .. }) => {}
            other => panic!("expected RateTooHigh, got {other:?}"),
        }
    }

    #[test]
    fn rejects_impossible_slo() {
        let spec = vec![ServiceSpec::new(0, Model::BertLarge, 1.0, 2.0)];
        assert!(matches!(
            ParisElsa::new().schedule(&spec),
            Err(ScheduleError::InfeasibleSlo { .. })
        ));
    }

    #[test]
    fn tail_sizing_leaves_internal_slack() {
        // Sizing for the q95 batch means the *typical* batch under-uses the
        // instance — the slack Table I calls out. Verify the chosen profile
        // is at least one step larger than what the typical batch needs for
        // some bursty service.
        let spec = ServiceSpec::new(0, Model::Vgg19, 600.0, 397.0);
        let d = ParisElsa::new().schedule(&[spec]).unwrap();
        let mig = d.as_mig().unwrap();
        let seg = mig.segments_of(0).next().unwrap().segment;
        let dist = BatchDistribution::for_service(&spec);
        let typical_ok = InstanceProfile::ALL.iter().copied().find(|g| {
            parva_perf::latency_ms(spec.model, ComputeShare::Mig(*g), dist.typical_batch(), 1)
                < spec.slo.internal_target_ms()
        });
        assert!(typical_ok.unwrap().gpcs() <= seg.triplet.instance.gpcs());
    }

    #[test]
    fn temporal_plan_shares_low_utilization_pairs() {
        // Two near-idle services of the same model must land on one
        // instance in ELSA's plan.
        let specs = vec![
            ServiceSpec::new(0, Model::ResNet50, 20.0, 400.0),
            ServiceSpec::new(1, Model::ResNet50, 20.0, 400.0),
        ];
        let plan = ParisElsa::new().temporal_plan(&specs).unwrap();
        assert_eq!(plan.instance_count(), 1);
        assert_eq!(plan.instances_saved(), 1);
        assert!(plan.utilization_of(0) <= SHARE_CAP);
    }

    #[test]
    fn temporal_plan_isolates_hot_services() {
        let specs = vec![
            ServiceSpec::new(0, Model::ResNet50, 250.0, 205.0),
            ServiceSpec::new(1, Model::ResNet50, 250.0, 205.0),
        ];
        let plan = ParisElsa::new().temporal_plan(&specs).unwrap();
        // Utilizations near the cap cannot pair up.
        if plan.instance_count() == 1 {
            assert!(plan.utilization_of(0) <= SHARE_CAP);
        } else {
            assert_eq!(plan.instances_saved(), 0);
        }
    }

    #[test]
    fn deterministic() {
        let a = ParisElsa::new().schedule(&low_rate_specs()).unwrap();
        let b = ParisElsa::new().schedule(&low_rate_specs()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = ParisElsa::new().capabilities();
        assert!(!c.mps_support && c.mig_support);
        assert_eq!(c.overhead, None);
    }
}
