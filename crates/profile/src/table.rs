//! Profile tables: the recorded measurement points for one model.

use crate::sweep::SweepGrid;
use crate::triplet::Triplet;
use parva_mig::InstanceProfile;
use parva_perf::{ComputeShare, Model, PerfPoint};
use serde::{Deserialize, Serialize};

/// One recorded profiling measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// The operating point.
    pub triplet: Triplet,
    /// Measured throughput/latency/memory at that point.
    pub point: PerfPoint,
}

/// All profiling measurements for one model. Out-of-memory grid points are
/// *absent* (the paper drops them from the graphs and the search, §III-B/C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    /// The profiled model.
    pub model: Model,
    entries: Vec<ProfileEntry>,
}

impl ProfileTable {
    /// Profile `model` over `grid` using the analytic performance substrate,
    /// applying the OOM filter.
    #[must_use]
    pub fn measure(model: Model, grid: &SweepGrid) -> Self {
        Self::measure_with_noise(model, grid, 0, 0.0)
    }

    /// Profile `model` on a specific GPU model: identical sweep, but the
    /// OOM filter uses that GPU's per-slice memory. This is how the §V
    /// discussion's H200/B200 feasibility questions are answered — a
    /// memory-hungry LLM that loses every sub-7g point on an A100-80 keeps
    /// its small-instance points on a B200.
    #[must_use]
    pub fn measure_on(model: Model, grid: &SweepGrid, gpu: parva_mig::GpuModel) -> Self {
        let entries = grid
            .points()
            .filter(|(inst, batch, procs)| {
                parva_perf::math::fits_memory_on(
                    model,
                    ComputeShare::Mig(*inst),
                    *batch,
                    *procs,
                    gpu,
                )
            })
            .map(|(inst, batch, procs)| ProfileEntry {
                triplet: Triplet::new(inst, batch, procs),
                point: parva_perf::math::evaluate(model, ComputeShare::Mig(inst), batch, procs),
            })
            .collect();
        Self { model, entries }
    }

    /// Like [`ProfileTable::measure`], but perturbing every throughput and
    /// latency measurement by a deterministic pseudo-random relative error
    /// up to `rel_err` — modeling the measurement noise a real profiling
    /// campaign carries (run-to-run variance, clock jitter, thermal state).
    /// Used by the robustness ablation: how much profiling error can the
    /// scheduler absorb before SLOs start slipping?
    #[must_use]
    pub fn measure_with_noise(model: Model, grid: &SweepGrid, seed: u64, rel_err: f64) -> Self {
        let noise = |salt: u64| -> f64 {
            if rel_err <= 0.0 {
                return 1.0;
            }
            // SplitMix64-style hash → unit interval → ±rel_err.
            let mut z = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + (2.0 * unit - 1.0) * rel_err
        };
        let entries = grid
            .points()
            .filter(|(inst, batch, procs)| {
                parva_perf::math::fits_memory(model, ComputeShare::Mig(*inst), *batch, *procs)
            })
            .map(|(inst, batch, procs)| {
                let point =
                    parva_perf::math::evaluate(model, ComputeShare::Mig(inst), batch, procs);
                let salt = (model.index() as u64) << 32
                    | u64::from(inst.gpcs()) << 24
                    | u64::from(batch) << 8
                    | u64::from(procs);
                ProfileEntry {
                    triplet: Triplet::new(inst, batch, procs),
                    point: parva_perf::PerfPoint {
                        throughput_rps: point.throughput_rps * noise(salt),
                        latency_ms: point.latency_ms * noise(salt.wrapping_add(1)),
                        memory_gib: point.memory_gib,
                    },
                }
            })
            .collect();
        Self { model, entries }
    }

    /// All recorded entries (OOM points excluded), in sweep order.
    #[must_use]
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Entries restricted to one instance size.
    pub fn entries_for_instance(
        &self,
        instance: InstanceProfile,
    ) -> impl Iterator<Item = &ProfileEntry> {
        self.entries
            .iter()
            .filter(move |e| e.triplet.instance == instance)
    }

    /// Highest-throughput entry for `instance` whose latency is strictly
    /// below `max_latency_ms` — the inner step of the Optimal Triplet
    /// Decision (paper Alg. 1, `UPDATE_MAXTRIPLETS`).
    #[must_use]
    pub fn best_for_instance(
        &self,
        instance: InstanceProfile,
        max_latency_ms: f64,
    ) -> Option<ProfileEntry> {
        self.entries_for_instance(instance)
            .filter(|e| e.point.latency_ms < max_latency_ms)
            .max_by(|a, b| {
                a.point
                    .throughput_rps
                    .total_cmp(&b.point.throughput_rps)
                    // Deterministic tie-break: cheaper memory first.
                    .then(b.point.memory_gib.total_cmp(&a.point.memory_gib))
            })
            .copied()
    }

    /// Look up the exact entry for a triplet, if it was profiled (and not
    /// dropped for OOM).
    #[must_use]
    pub fn get(&self, triplet: Triplet) -> Option<ProfileEntry> {
        self.entries.iter().find(|e| e.triplet == triplet).copied()
    }

    /// Serialize as CSV rows `instance,batch,procs,throughput_rps,latency_ms,memory_gib`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("instance_gpcs,batch,procs,throughput_rps,latency_ms,memory_gib\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},{:.2},{:.3},{:.2}\n",
                e.triplet.instance.gpcs(),
                e.triplet.batch,
                e.triplet.procs,
                e.point.throughput_rps,
                e.point.latency_ms,
                e.point.memory_gib
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(m: Model) -> ProfileTable {
        ProfileTable::measure(m, &SweepGrid::paper_default())
    }

    #[test]
    fn resnet50_full_grid_survives_oom_filter_partially() {
        let t = table(Model::ResNet50);
        // Some points must exist, some (big batch × procs on 1g) must be gone.
        assert!(!t.entries().is_empty());
        assert!(t.entries().len() < 120, "OOM filter removed nothing");
        // b=128, p=3 on 1 GPC needs 3*(0.3+0.1+11.52) GiB >> 10 GiB.
        assert!(t.get(Triplet::new(InstanceProfile::G1, 128, 3)).is_none());
        // b=1, p=1 on 1 GPC always fits.
        assert!(t.get(Triplet::new(InstanceProfile::G1, 1, 1)).is_some());
    }

    #[test]
    fn best_for_instance_respects_latency_bound() {
        let t = table(Model::InceptionV3);
        let tight = t.best_for_instance(InstanceProfile::G4, 15.0).unwrap();
        assert!(tight.point.latency_ms < 15.0);
        let loose = t.best_for_instance(InstanceProfile::G4, 500.0).unwrap();
        assert!(loose.point.throughput_rps >= tight.point.throughput_rps);
    }

    #[test]
    fn best_for_instance_none_when_slo_infeasible() {
        let t = table(Model::BertLarge);
        // Sub-millisecond SLO: nothing qualifies.
        assert!(t.best_for_instance(InstanceProfile::G7, 0.5).is_none());
    }

    #[test]
    fn best_is_max_throughput() {
        let t = table(Model::ResNet50);
        let best = t.best_for_instance(InstanceProfile::G2, 100.0).unwrap();
        for e in t.entries_for_instance(InstanceProfile::G2) {
            if e.point.latency_ms < 100.0 {
                assert!(e.point.throughput_rps <= best.point.throughput_rps);
            }
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = table(Model::MobileNetV2);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("instance_gpcs,"));
        assert_eq!(lines.len(), t.entries().len() + 1);
    }

    #[test]
    fn json_roundtrip() {
        let t = table(Model::Vgg16);
        let json = serde_json::to_string(&t).unwrap();
        let back: ProfileTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let grid = SweepGrid::paper_default();
        let a = ProfileTable::measure_with_noise(Model::ResNet50, &grid, 7, 0.1);
        let b = ProfileTable::measure_with_noise(Model::ResNet50, &grid, 7, 0.1);
        assert_eq!(a, b, "noise must be reproducible");
        let clean = ProfileTable::measure(Model::ResNet50, &grid);
        assert_ne!(a, clean, "noise must actually perturb");
        for (n, c) in a.entries().iter().zip(clean.entries()) {
            assert_eq!(n.triplet, c.triplet);
            let rel =
                (n.point.throughput_rps - c.point.throughput_rps).abs() / c.point.throughput_rps;
            assert!(rel <= 0.1 + 1e-9, "throughput error {rel}");
            let rel = (n.point.latency_ms - c.point.latency_ms).abs() / c.point.latency_ms;
            assert!(rel <= 0.1 + 1e-9, "latency error {rel}");
        }
    }

    #[test]
    fn zero_noise_equals_clean_measurement() {
        let grid = SweepGrid::paper_default();
        let a = ProfileTable::measure_with_noise(Model::Vgg16, &grid, 3, 0.0);
        let b = ProfileTable::measure(Model::Vgg16, &grid);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let grid = SweepGrid::paper_default();
        let a = ProfileTable::measure_with_noise(Model::ResNet50, &grid, 1, 0.05);
        let b = ProfileTable::measure_with_noise(Model::ResNet50, &grid, 2, 0.05);
        assert_ne!(a, b);
    }

    #[test]
    fn bert_oom_kills_g1_large_batches() {
        let t = table(Model::BertLarge);
        // 0.3+1.4+0.2*64 = 14.5 GiB > 10 GiB → gone.
        assert!(t.get(Triplet::new(InstanceProfile::G1, 64, 1)).is_none());
        // On the 7g/80GiB instance, p=1 b=128 fits (27.3 GiB).
        assert!(t.get(Triplet::new(InstanceProfile::G7, 128, 1)).is_some());
    }
}
