//! The profile book: one profile table per registered model.

use crate::sweep::SweepGrid;
use crate::table::ProfileTable;
use parva_perf::Model;
use serde::{Deserialize, Serialize};

/// A bundle of [`ProfileTable`]s, the Profiler's output handed to the GPU
/// Segment Configurator (paper Fig. 2: "Profiled Data").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileBook {
    tables: Vec<ProfileTable>,
}

impl ProfileBook {
    /// Profile the full 11-model zoo on the paper's default grid.
    #[must_use]
    pub fn builtin() -> Self {
        Self::measure(&Model::ALL, &SweepGrid::paper_default())
    }

    /// Profile the zoo with single-process triplets only (the
    /// `ParvaGPU-single` ablation: MPS disabled, paper §IV-A).
    #[must_use]
    pub fn builtin_single_process() -> Self {
        Self::measure(&Model::ALL, &SweepGrid::single_process())
    }

    /// Profile an arbitrary set of models on an arbitrary grid.
    #[must_use]
    pub fn measure(models: &[Model], grid: &SweepGrid) -> Self {
        Self {
            tables: models
                .iter()
                .map(|m| ProfileTable::measure(*m, grid))
                .collect(),
        }
    }

    /// Profile on a specific GPU model (per-slice memory changes the OOM
    /// filter; see [`ProfileTable::measure_on`]). Used by the §V LLM
    /// feasibility analysis on H200/B200-class parts.
    #[must_use]
    pub fn measure_on(models: &[Model], grid: &SweepGrid, gpu: parva_mig::GpuModel) -> Self {
        Self {
            tables: models
                .iter()
                .map(|m| ProfileTable::measure_on(*m, grid, gpu))
                .collect(),
        }
    }

    /// Profile with measurement noise (see
    /// [`ProfileTable::measure_with_noise`]).
    #[must_use]
    pub fn measure_with_noise(models: &[Model], grid: &SweepGrid, seed: u64, rel_err: f64) -> Self {
        Self {
            tables: models
                .iter()
                .map(|m| ProfileTable::measure_with_noise(*m, grid, seed, rel_err))
                .collect(),
        }
    }

    /// The table for `model`, if profiled.
    #[must_use]
    pub fn table(&self, model: Model) -> Option<&ProfileTable> {
        self.tables.iter().find(|t| t.model == model)
    }

    /// All tables.
    #[must_use]
    pub fn tables(&self) -> &[ProfileTable] {
        &self.tables
    }

    /// Number of profiled models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when nothing has been profiled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Serialize to a JSON string (the "profile once" artifact).
    ///
    /// # Errors
    /// Propagates serializer failures (infallible for this type in practice).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Load from a JSON string produced by [`ProfileBook::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_all_models() {
        let book = ProfileBook::builtin();
        assert_eq!(book.len(), 11);
        for m in Model::ALL {
            assert!(book.table(m).is_some(), "{m}");
        }
    }

    #[test]
    fn single_process_book_has_no_mps_points() {
        let book = ProfileBook::builtin_single_process();
        for t in book.tables() {
            assert!(t.entries().iter().all(|e| e.triplet.procs == 1));
        }
    }

    #[test]
    fn json_roundtrip() {
        let book = ProfileBook::measure(&[Model::ResNet50], &SweepGrid::paper_default());
        let json = book.to_json().unwrap();
        let back = ProfileBook::from_json(&json).unwrap();
        assert_eq!(book, back);
    }

    #[test]
    fn missing_model_is_none() {
        let book = ProfileBook::measure(&[Model::ResNet50], &SweepGrid::paper_default());
        assert!(book.table(Model::Vgg19).is_none());
    }
}
