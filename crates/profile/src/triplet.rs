//! The (instance size, batch size, process count) triplet.

use parva_mig::InstanceProfile;
use serde::{Deserialize, Serialize};

/// A GPU-segment operating point: "Each triplet consists of an instance
/// size, a batch size, and a process size" (paper §III-D-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triplet {
    /// MIG instance size.
    pub instance: InstanceProfile,
    /// Model batch size.
    pub batch: u32,
    /// Number of MPS processes of the (same) workload in the instance.
    pub procs: u32,
}

impl Triplet {
    /// Create a triplet.
    #[must_use]
    pub const fn new(instance: InstanceProfile, batch: u32, procs: u32) -> Self {
        Self {
            instance,
            batch,
            procs,
        }
    }

    /// GPC count of the instance — the "cost" side of Demand Matching's
    /// throughput-per-GPC ratio (paper Eq. 2).
    #[must_use]
    pub const fn gpcs(self) -> u8 {
        self.instance.gpcs()
    }
}

impl std::fmt::Display for Triplet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Matches the paper's Fig. 2 compact notation: e.g. "383" is
        // instance 3, batch 8, 3 processes; batches >9 are bracketed.
        write!(
            f,
            "({}g, b{}, p{})",
            self.instance.gpcs(),
            self.batch,
            self.procs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Triplet::new(InstanceProfile::G3, 8, 3);
        assert_eq!(t.gpcs(), 3);
        assert_eq!(t.batch, 8);
        assert_eq!(t.procs, 3);
    }

    #[test]
    fn display() {
        let t = Triplet::new(InstanceProfile::G4, 16, 2);
        assert_eq!(t.to_string(), "(4g, b16, p2)");
    }
}
