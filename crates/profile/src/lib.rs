//! # parva-profile — the Profiler
//!
//! Implements the Profiler component of ParvaGPU's architecture (paper
//! Fig. 2, §III-C): when a service is registered, its model is profiled once
//! over
//!
//! * the **five** MIG instance sizes (1, 2, 3, 4, 7 GPCs),
//! * **eight** batch sizes growing exponentially from 1 to 128,
//! * up to **three** MPS process counts,
//!
//! recording throughput and latency at each point and dropping points whose
//! working set exceeds the instance memory (out-of-memory, §III-C). On real
//! hardware this is a measurement campaign; here the measurements come from
//! the calibrated analytic model in [`parva_perf`] — the sweep structure,
//! OOM filtering and query interface are identical.
//!
//! The result is a [`ProfileTable`] per model, bundled into a [`ProfileBook`]
//! for the scheduler. Tables serialize to JSON (and CSV for the figure
//! harness) so a "profile once, schedule many times" workflow works exactly
//! as in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod book;
pub mod sweep;
pub mod table;
pub mod triplet;

pub use book::ProfileBook;
pub use sweep::{SweepGrid, DEFAULT_BATCHES, DEFAULT_PROCS};
pub use table::{ProfileEntry, ProfileTable};
pub use triplet::Triplet;
