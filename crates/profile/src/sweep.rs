//! Sweep-grid definition: which (instance, batch, procs) points to profile.

use parva_mig::InstanceProfile;
use serde::{Deserialize, Serialize};

/// The paper's default batch ladder: "a set of eight common batch sizes,
/// exponentially increasing from 1 to 128" (§III-C).
pub const DEFAULT_BATCHES: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The paper's default process counts: "limit the number of processes to
/// three, considering out-of-memory scenarios" (§III-C).
pub const DEFAULT_PROCS: [u32; 3] = [1, 2, 3];

/// A profiling sweep grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Instance sizes to profile (the 5 MIG profiles by default).
    pub instances: Vec<InstanceProfile>,
    /// Batch sizes to profile.
    pub batches: Vec<u32>,
    /// MPS process counts to profile.
    pub procs: Vec<u32>,
}

impl SweepGrid {
    /// The paper's grid: 5 instances × 8 batches × 3 process counts = 120
    /// points per model.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            instances: InstanceProfile::ALL.to_vec(),
            batches: DEFAULT_BATCHES.to_vec(),
            procs: DEFAULT_PROCS.to_vec(),
        }
    }

    /// Single-process grid (used by the `ParvaGPU-single` ablation and by
    /// MIG-serving, which does not use MPS).
    #[must_use]
    pub fn single_process() -> Self {
        Self {
            procs: vec![1],
            ..Self::paper_default()
        }
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len() * self.batches.len() * self.procs.len()
    }

    /// True when the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all (instance, batch, procs) points in deterministic
    /// order (instance-major, procs-minor).
    pub fn points(&self) -> impl Iterator<Item = (InstanceProfile, u32, u32)> + '_ {
        self.instances.iter().flat_map(move |i| {
            self.batches
                .iter()
                .flat_map(move |b| self.procs.iter().map(move |p| (*i, *b, *p)))
        })
    }
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_120_points() {
        // §III-G: I=5, B=8, P=3.
        let g = SweepGrid::paper_default();
        assert_eq!(g.len(), 120);
        assert_eq!(g.points().count(), 120);
    }

    #[test]
    fn single_process_grid() {
        let g = SweepGrid::single_process();
        assert_eq!(g.len(), 40);
        assert!(g.points().all(|(_, _, p)| p == 1));
    }

    #[test]
    fn batch_ladder_is_exponential() {
        for w in DEFAULT_BATCHES.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert_eq!(DEFAULT_BATCHES[0], 1);
        assert_eq!(DEFAULT_BATCHES[7], 128);
    }

    #[test]
    fn points_deterministic_order() {
        let g = SweepGrid::paper_default();
        let first: Vec<_> = g.points().take(4).collect();
        assert_eq!(
            first,
            vec![
                (InstanceProfile::G1, 1, 1),
                (InstanceProfile::G1, 1, 2),
                (InstanceProfile::G1, 1, 3),
                (InstanceProfile::G1, 2, 1),
            ]
        );
    }
}
