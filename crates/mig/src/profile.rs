//! MIG instance profiles (1/2/3/4/7 GPC) and their placement rules.

use serde::{Deserialize, Serialize};

/// A MIG GPU-instance profile, identified by its compute-slice (GPC) count.
///
/// Due to hardware limitations, 5- and 6-GPC instances do not exist
/// (paper §II-B); the only profiles are 1, 2, 3, 4 and 7 GPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstanceProfile {
    /// 1 GPC, 1 memory slice (A100: `1g.10gb`).
    G1,
    /// 2 GPCs, 2 memory slices (`2g.20gb`).
    G2,
    /// 3 GPCs, 4 memory slices (`3g.40gb`).
    G3,
    /// 4 GPCs, 4 memory slices (`4g.40gb`).
    G4,
    /// 7 GPCs, 8 memory slices (`7g.80gb`) — the whole GPU.
    G7,
}

impl InstanceProfile {
    /// All profiles, ascending by GPC count.
    pub const ALL: [InstanceProfile; 5] = [Self::G1, Self::G2, Self::G3, Self::G4, Self::G7];

    /// All profiles, descending by GPC count — the Segment Allocator's
    /// queue-processing order (paper Alg. 2: "starting with those containing
    /// larger segment sizes").
    pub const DESCENDING: [InstanceProfile; 5] = [Self::G7, Self::G4, Self::G3, Self::G2, Self::G1];

    /// Number of compute slices (GPCs) the instance occupies.
    #[must_use]
    pub const fn gpcs(self) -> u8 {
        match self {
            Self::G1 => 1,
            Self::G2 => 2,
            Self::G3 => 3,
            Self::G4 => 4,
            Self::G7 => 7,
        }
    }

    /// Number of memory slices the instance consumes.
    ///
    /// This is the constraint that yields exactly 19 valid configurations:
    /// a 3-GPC instance consumes 4 of the 8 memory slices, so `3g + 3g`
    /// exhausts memory and strands compute slice 3 (paper Fig. 1, rows 5–7).
    #[must_use]
    pub const fn memory_slices(self) -> u8 {
        match self {
            Self::G1 => 1,
            Self::G2 => 2,
            Self::G3 => 4,
            Self::G4 => 4,
            Self::G7 => 8,
        }
    }

    /// Compute slices at which this profile may start (NVIDIA placement rule).
    #[must_use]
    pub const fn valid_starts(self) -> &'static [u8] {
        match self {
            Self::G1 => &[0, 1, 2, 3, 4, 5, 6],
            Self::G2 => &[0, 2, 4],
            Self::G3 => &[0, 4],
            Self::G4 => &[0],
            Self::G7 => &[0],
        }
    }

    /// Start slices in the Segment Allocator's *preference* order
    /// (paper §III-E-1):
    ///
    /// * size 3 → prefer slot 4, so slots 0–3 stay available for a 4-GPC
    ///   instance or 2-GPC pairs;
    /// * size 2 → prefer slots 0 and 2, avoiding 4 (keep it for a size 3);
    /// * size 1 → slots 0–3 first, then 5, 6, and slot 4 last, to avoid
    ///   blocking a later size-3 placement at slot 4.
    #[must_use]
    pub const fn preferred_starts(self) -> &'static [u8] {
        match self {
            Self::G1 => &[0, 1, 2, 3, 5, 6, 4],
            Self::G2 => &[0, 2, 4],
            Self::G3 => &[4, 0],
            Self::G4 => &[0],
            Self::G7 => &[0],
        }
    }

    /// Parse from a GPC count.
    #[must_use]
    pub const fn from_gpcs(gpcs: u8) -> Option<Self> {
        match gpcs {
            1 => Some(Self::G1),
            2 => Some(Self::G2),
            3 => Some(Self::G3),
            4 => Some(Self::G4),
            7 => Some(Self::G7),
            _ => None,
        }
    }

    /// Streaming-multiprocessor count of this instance (14 SMs per GPC).
    #[must_use]
    pub const fn sms(self) -> u32 {
        self.gpcs() as u32 * crate::SMS_PER_SLICE
    }

    /// NVIDIA-style profile name on an 80 GB GPU, e.g. `3g.40gb`.
    #[must_use]
    pub fn nvidia_name(self) -> String {
        format!("{}g.{}gb", self.gpcs(), self.memory_slices() * 10)
    }
}

impl std::fmt::Display for InstanceProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}g", self.gpcs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpc_counts() {
        let gpcs: Vec<u8> = InstanceProfile::ALL.iter().map(|p| p.gpcs()).collect();
        assert_eq!(gpcs, vec![1, 2, 3, 4, 7]);
    }

    #[test]
    fn no_5_or_6_gpc_profiles() {
        assert!(InstanceProfile::from_gpcs(5).is_none());
        assert!(InstanceProfile::from_gpcs(6).is_none());
        assert!(InstanceProfile::from_gpcs(0).is_none());
        assert!(InstanceProfile::from_gpcs(8).is_none());
    }

    #[test]
    fn from_gpcs_roundtrip() {
        for p in InstanceProfile::ALL {
            assert_eq!(InstanceProfile::from_gpcs(p.gpcs()), Some(p));
        }
    }

    #[test]
    fn memory_slices_sum_constraint() {
        // Two 3-GPC instances exhaust all 8 memory slices.
        assert_eq!(
            InstanceProfile::G3.memory_slices() * 2,
            crate::MEMORY_SLICES
        );
    }

    #[test]
    fn valid_starts_within_bounds() {
        for p in InstanceProfile::ALL {
            for &s in p.valid_starts() {
                assert!(
                    s + p.gpcs() <= crate::COMPUTE_SLICES,
                    "{p} start {s} overflows"
                );
            }
        }
    }

    #[test]
    fn preferred_starts_is_permutation_of_valid_starts() {
        for p in InstanceProfile::ALL {
            let mut v: Vec<u8> = p.valid_starts().to_vec();
            let mut pref: Vec<u8> = p.preferred_starts().to_vec();
            v.sort_unstable();
            pref.sort_unstable();
            assert_eq!(v, pref, "{p}");
        }
    }

    #[test]
    fn g3_prefers_slot_4() {
        // Paper §III-E-1: "priority is given to allocating size 3 segments
        // in slot 4".
        assert_eq!(InstanceProfile::G3.preferred_starts()[0], 4);
    }

    #[test]
    fn g2_avoids_slot_4_first() {
        let pref = InstanceProfile::G2.preferred_starts();
        assert_eq!(&pref[..2], &[0, 2]);
    }

    #[test]
    fn nvidia_names() {
        assert_eq!(InstanceProfile::G1.nvidia_name(), "1g.10gb");
        assert_eq!(InstanceProfile::G3.nvidia_name(), "3g.40gb");
        assert_eq!(InstanceProfile::G7.nvidia_name(), "7g.80gb");
    }

    #[test]
    fn sm_counts() {
        assert_eq!(InstanceProfile::G1.sms(), 14);
        assert_eq!(InstanceProfile::G7.sms(), 98);
    }

    #[test]
    fn descending_order() {
        let g: Vec<u8> = InstanceProfile::DESCENDING
            .iter()
            .map(|p| p.gpcs())
            .collect();
        assert_eq!(g, vec![7, 4, 3, 2, 1]);
    }
}
