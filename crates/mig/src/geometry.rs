//! Generic MIG geometry — placement rules parameterized by GPU family.
//!
//! The rest of this crate is specialized to the 7-compute-slice geometry
//! shared by A100, H100 and (per the paper's §V discussion) Hopper/Blackwell
//! successors, because that is what the ParvaGPU scheduler targets. MIG
//! itself, however, ships on one more family the paper names in §II-B: the
//! **A30**, with 4 compute slices and profiles of 1, 2 and 4 GPCs. This
//! module expresses the placement rules generically so configuration sets
//! can be derived for *any* MIG geometry:
//!
//! * [`MigGeometry::a100`] — 7 compute slices / 8 memory slices, profiles
//!   1g/2g/3g/4g/7g. Its derived configuration set is cross-checked against
//!   the specialized [`crate::configs::all_configurations`] (19 entries).
//! * [`MigGeometry::a30`] — 4 compute slices / 4 memory slices, profiles
//!   1g/2g/4g (NVIDIA `1g.6gb` / `2g.12gb` / `4g.24gb`). Deriving from the
//!   rules yields 5 maximal configurations: `4`, `2+2`, `2+1+1`, `1+1+2`
//!   and `1+1+1+1` (the two mixed forms differ in where the 2-GPC instance
//!   sits, which matters for placement just as slot choice does on A100).
//!
//! The derivation is the same exhaustive left-to-right search as
//! [`crate::configs`], generalized over the geometry description.

use serde::{Deserialize, Serialize};

/// One instance profile in a generic geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRule {
    /// Compute slices (GPCs) the instance occupies.
    pub gpcs: u8,
    /// Memory slices the instance consumes.
    pub memory_slices: u8,
    /// Compute slices at which the instance may start.
    pub valid_starts: Vec<u8>,
    /// Memory capacity of one instance in GiB (for NVIDIA-style names).
    pub memory_gib: u32,
}

impl ProfileRule {
    /// NVIDIA-style profile name, e.g. `2g.12gb`.
    #[must_use]
    pub fn nvidia_name(&self) -> String {
        format!("{}g.{}gb", self.gpcs, self.memory_gib)
    }
}

/// A placement in a generic geometry: profile index + start slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GenericPlacement {
    /// Index into [`MigGeometry::profiles`].
    pub profile: usize,
    /// Start compute slice.
    pub start: u8,
}

/// A maximal configuration in a generic geometry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GenericConfiguration {
    /// Placements sorted by start slice.
    pub placements: Vec<GenericPlacement>,
}

impl GenericConfiguration {
    /// GPC sizes in start-slice order, e.g. `[2, 1, 1]`.
    #[must_use]
    pub fn sizes(&self, geometry: &MigGeometry) -> Vec<u8> {
        self.placements
            .iter()
            .map(|p| geometry.profiles[p.profile].gpcs)
            .collect()
    }
}

/// A MIG-capable GPU family's partitioning rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigGeometry {
    /// Family name, e.g. `"A30"`.
    pub name: &'static str,
    /// Compute slices on the GPU.
    pub compute_slices: u8,
    /// Memory slices on the GPU.
    pub memory_slices: u8,
    /// The supported instance profiles, ascending by GPC count.
    pub profiles: Vec<ProfileRule>,
}

impl MigGeometry {
    /// The A100/H100 80 GB geometry (the crate's specialized default).
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "A100",
            compute_slices: crate::COMPUTE_SLICES,
            memory_slices: crate::MEMORY_SLICES,
            profiles: crate::InstanceProfile::ALL
                .iter()
                .map(|p| ProfileRule {
                    gpcs: p.gpcs(),
                    memory_slices: p.memory_slices(),
                    valid_starts: p.valid_starts().to_vec(),
                    memory_gib: u32::from(p.memory_slices()) * 10,
                })
                .collect(),
        }
    }

    /// The A30 24 GB geometry (paper §II-B: "the A30, A100, and H100 GPUs
    /// offer MIG functionality"): 4 compute slices, profiles `1g.6gb`
    /// (starts 0–3), `2g.12gb` (starts 0, 2) and `4g.24gb` (start 0).
    #[must_use]
    pub fn a30() -> Self {
        Self {
            name: "A30",
            compute_slices: 4,
            memory_slices: 4,
            profiles: vec![
                ProfileRule {
                    gpcs: 1,
                    memory_slices: 1,
                    valid_starts: vec![0, 1, 2, 3],
                    memory_gib: 6,
                },
                ProfileRule {
                    gpcs: 2,
                    memory_slices: 2,
                    valid_starts: vec![0, 2],
                    memory_gib: 12,
                },
                ProfileRule {
                    gpcs: 4,
                    memory_slices: 4,
                    valid_starts: vec![0],
                    memory_gib: 24,
                },
            ],
        }
    }

    /// Largest profile (whole GPU), by GPC count.
    #[must_use]
    pub fn whole_gpu_profile(&self) -> &ProfileRule {
        self.profiles
            .iter()
            .max_by_key(|p| p.gpcs)
            .expect("geometry has profiles")
    }

    /// Derive every maximal configuration for this geometry by the same
    /// left-to-right exhaustive search as [`crate::configs::all_configurations`]:
    /// at the lowest undecided slice either leave it permanently empty or
    /// start any profile allowed there, and keep leaves where no further
    /// instance fits. Each maximal set is reached by exactly one decision
    /// sequence, so no deduplication is needed.
    #[must_use]
    pub fn derive_configurations(&self) -> Vec<GenericConfiguration> {
        let mut out = Vec::new();
        let mut occupied = vec![false; usize::from(self.compute_slices)];
        let mut memory_used = 0u8;
        let mut placements: Vec<GenericPlacement> = Vec::new();
        self.dfs(
            0,
            &mut occupied,
            &mut memory_used,
            &mut placements,
            &mut out,
        );
        out.sort();
        out
    }

    /// Can `profile` start at `start` given current occupancy and memory?
    fn fits(&self, profile: usize, start: u8, occupied: &[bool], memory_used: u8) -> bool {
        let rule = &self.profiles[profile];
        rule.valid_starts.contains(&start)
            && start + rule.gpcs <= self.compute_slices
            && memory_used + rule.memory_slices <= self.memory_slices
            && (start..start + rule.gpcs).all(|s| !occupied[usize::from(s)])
    }

    /// No instance of any profile fits anywhere: the state is maximal.
    fn is_maximal(&self, occupied: &[bool], memory_used: u8) -> bool {
        (0..self.compute_slices)
            .all(|s| (0..self.profiles.len()).all(|p| !self.fits(p, s, occupied, memory_used)))
    }

    fn dfs(
        &self,
        slice: u8,
        occupied: &mut Vec<bool>,
        memory_used: &mut u8,
        placements: &mut Vec<GenericPlacement>,
        out: &mut Vec<GenericConfiguration>,
    ) {
        if slice >= self.compute_slices {
            if self.is_maximal(occupied, *memory_used) {
                let mut sorted = placements.clone();
                sorted.sort();
                out.push(GenericConfiguration { placements: sorted });
            }
            return;
        }
        // Leave `slice` empty forever.
        self.dfs(slice + 1, occupied, memory_used, placements, out);
        // Or place each profile that can start here.
        for p in 0..self.profiles.len() {
            if self.fits(p, slice, occupied, *memory_used) {
                let rule_gpcs = self.profiles[p].gpcs;
                let rule_mem = self.profiles[p].memory_slices;
                for s in slice..slice + rule_gpcs {
                    occupied[usize::from(s)] = true;
                }
                *memory_used += rule_mem;
                placements.push(GenericPlacement {
                    profile: p,
                    start: slice,
                });
                self.dfs(slice + rule_gpcs, occupied, memory_used, placements, out);
                placements.pop();
                *memory_used -= rule_mem;
                for s in slice..slice + rule_gpcs {
                    occupied[usize::from(s)] = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sorted multiset of GPC-size multisets for a configuration list.
    fn size_multisets(geometry: &MigGeometry, configs: &[GenericConfiguration]) -> Vec<Vec<u8>> {
        let mut sets: Vec<Vec<u8>> = configs
            .iter()
            .map(|c| {
                let mut s = c.sizes(geometry);
                s.sort_unstable();
                s
            })
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn a100_generic_matches_specialized_derivation() {
        // The generic search must reproduce the specialized module exactly:
        // same count (19) and the same placement sets.
        let geometry = MigGeometry::a100();
        let generic = geometry.derive_configurations();
        let specialized = crate::configs::all_configurations();
        assert_eq!(generic.len(), specialized.len());
        let spec_sets: Vec<Vec<(u8, u8)>> = specialized
            .iter()
            .map(|c| {
                let mut v: Vec<(u8, u8)> = c
                    .placements()
                    .iter()
                    .map(|p| (p.profile.gpcs(), p.start))
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        for c in &generic {
            let mut v: Vec<(u8, u8)> = c
                .placements
                .iter()
                .map(|p| (geometry.profiles[p.profile].gpcs, p.start))
                .collect();
            v.sort_unstable();
            assert!(
                spec_sets.contains(&v),
                "generic config {v:?} not in specialized set"
            );
        }
    }

    #[test]
    fn a30_has_5_configurations() {
        // By hand: 4 | 2+2 | 2@0+1@2+1@3 | 1@0+1@1+2@2 | 1+1+1+1.
        let geometry = MigGeometry::a30();
        let configs = geometry.derive_configurations();
        assert_eq!(configs.len(), 5);
        let sets = size_multisets(&geometry, &configs);
        assert_eq!(
            sets,
            vec![
                vec![1, 1, 1, 1],
                vec![1, 1, 2],
                vec![1, 1, 2],
                vec![2, 2],
                vec![4]
            ]
        );
    }

    #[test]
    fn a30_mixed_configs_differ_in_placement() {
        let geometry = MigGeometry::a30();
        let configs = geometry.derive_configurations();
        let mixed: Vec<&GenericConfiguration> = configs
            .iter()
            .filter(|c| {
                let mut s = c.sizes(&geometry);
                s.sort_unstable();
                s == vec![1, 1, 2]
            })
            .collect();
        assert_eq!(mixed.len(), 2);
        assert_ne!(mixed[0].placements, mixed[1].placements);
    }

    #[test]
    fn a30_profile_names() {
        let geometry = MigGeometry::a30();
        let names: Vec<String> = geometry
            .profiles
            .iter()
            .map(ProfileRule::nvidia_name)
            .collect();
        assert_eq!(names, vec!["1g.6gb", "2g.12gb", "4g.24gb"]);
    }

    #[test]
    fn a100_profile_names_match_specialized() {
        let geometry = MigGeometry::a100();
        let names: Vec<String> = geometry
            .profiles
            .iter()
            .map(ProfileRule::nvidia_name)
            .collect();
        assert_eq!(
            names,
            vec!["1g.10gb", "2g.20gb", "3g.40gb", "4g.40gb", "7g.80gb"]
        );
    }

    #[test]
    fn whole_gpu_profile_is_largest() {
        assert_eq!(MigGeometry::a100().whole_gpu_profile().gpcs, 7);
        assert_eq!(MigGeometry::a30().whole_gpu_profile().gpcs, 4);
    }

    #[test]
    fn a30_configurations_are_memory_feasible_and_maximal() {
        let geometry = MigGeometry::a30();
        for c in geometry.derive_configurations() {
            let mem: u8 = c
                .placements
                .iter()
                .map(|p| geometry.profiles[p.profile].memory_slices)
                .sum();
            assert!(mem <= geometry.memory_slices);
            // Re-play the placements and confirm maximality.
            let mut occupied = vec![false; usize::from(geometry.compute_slices)];
            let mut mem_used = 0u8;
            for p in &c.placements {
                let rule = &geometry.profiles[p.profile];
                for s in p.start..p.start + rule.gpcs {
                    assert!(!occupied[usize::from(s)], "overlap in {c:?}");
                    occupied[usize::from(s)] = true;
                }
                mem_used += rule.memory_slices;
            }
            assert!(
                geometry.is_maximal(&occupied, mem_used),
                "{c:?} not maximal"
            );
        }
    }

    #[test]
    fn memory_starved_geometry_strands_compute() {
        // A synthetic geometry where memory runs out before compute: 4
        // compute slices but only 2 memory slices, 1-GPC instances each
        // costing 1 memory slice. Maximal configurations can cover at most
        // 2 compute slices — the generic search must respect memory, not
        // just compute occupancy (the A100 3g+3g effect, isolated).
        let geometry = MigGeometry {
            name: "synthetic",
            compute_slices: 4,
            memory_slices: 2,
            profiles: vec![ProfileRule {
                gpcs: 1,
                memory_slices: 1,
                valid_starts: vec![0, 1, 2, 3],
                memory_gib: 1,
            }],
        };
        let configs = geometry.derive_configurations();
        // C(4,2) = 6 ways to pick which two slices host the instances.
        assert_eq!(configs.len(), 6);
        for c in &configs {
            assert_eq!(c.placements.len(), 2);
        }
    }
}
