//! Derivation of the valid MIG configurations (paper Fig. 1).
//!
//! A *configuration* is a maximal set of non-overlapping placements: no
//! further instance of any profile can be added without violating a slice or
//! memory constraint. On the A100/H100 exactly **19** such configurations
//! exist; [`all_configurations`] derives them from the placement rules by
//! exhaustive search, and the test-suite pins the count.

use crate::gpu::{GpuState, Placement};
use crate::profile::InstanceProfile;
use serde::{Deserialize, Serialize};

/// A maximal MIG configuration: placements sorted by start slice.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Configuration {
    placements: Vec<Placement>,
}

impl Configuration {
    /// The placements, sorted by start slice.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// GPC sizes in start-slice order, e.g. `[4, 3]`.
    #[must_use]
    pub fn sizes(&self) -> Vec<u8> {
        self.placements.iter().map(|p| p.profile.gpcs()).collect()
    }

    /// Total GPCs covered by instances (≤ 7; 6 for the stranded `3g+3g` case).
    #[must_use]
    pub fn gpcs_used(&self) -> u8 {
        self.sizes().iter().sum()
    }

    /// Whether `state`'s placements are a subset of this configuration.
    #[must_use]
    pub fn contains(&self, state: &GpuState) -> bool {
        state
            .placements()
            .iter()
            .all(|p| self.placements.contains(p))
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.placements.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join(" + "))
    }
}

/// Derive every maximal configuration by depth-first search over placements.
///
/// The search walks start slices left to right; at the lowest undecided slice
/// it either leaves the slice permanently empty or places one of the profiles
/// that may start there. Leaves where [`GpuState::is_full`] holds are the
/// maximal configurations. Each configuration is reached by exactly one
/// decision sequence, so the result needs no deduplication; it is sorted for
/// determinism. On A100/H100 geometry it has exactly 19 entries.
#[must_use]
pub fn all_configurations() -> Vec<Configuration> {
    let mut out: Vec<Configuration> = Vec::new();
    let mut state = GpuState::new();
    dfs(&mut state, 0, &mut out);
    out.sort();
    out
}

fn dfs(state: &mut GpuState, slice: u8, out: &mut Vec<Configuration>) {
    if slice >= crate::COMPUTE_SLICES {
        if state.is_full() {
            let mut placements = state.placements().to_vec();
            placements.sort();
            out.push(Configuration { placements });
        }
        return;
    }
    // Option 1: leave `slice` empty forever (pruned at the leaf when the
    // resulting state is not maximal, e.g. an empty slice with memory left).
    dfs(state, slice + 1, out);
    // Option 2: place each profile that can start here.
    for profile in InstanceProfile::ALL {
        let placement = Placement::new(profile, slice);
        if state.check(placement).is_ok() {
            state.place_at(placement).expect("checked placement");
            dfs(state, slice + profile.gpcs(), out);
            state.remove(placement);
        }
    }
}

/// Check whether a (possibly partial) GPU state is consistent with at least
/// one of the valid configurations. With correct start/memory rules this is
/// implied by per-placement validity, but it is exposed for auditing.
#[must_use]
pub fn is_reachable(state: &GpuState, configs: &[Configuration]) -> bool {
    configs.iter().any(|c| c.contains(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use InstanceProfile::*;

    #[test]
    fn exactly_19_configurations() {
        // Paper §II-B: "a GPU can only be divided into 19 specific
        // configurations".
        let configs = all_configurations();
        for c in &configs {
            eprintln!("{c}");
        }
        assert_eq!(configs.len(), 19);
    }

    #[test]
    fn known_configurations_present() {
        let configs = all_configurations();
        let has = |sizes: &[u8]| {
            configs.iter().any(|c| {
                let mut s = c.sizes();
                s.sort_unstable();
                let mut want = sizes.to_vec();
                want.sort_unstable();
                s == want
            })
        };
        // Paper §II-B names these multisets explicitly.
        assert!(has(&[7]));
        assert!(has(&[4, 3]));
        assert!(has(&[4, 2, 1]));
        assert!(has(&[4, 1, 1, 1]));
        assert!(has(&[1, 1, 1, 1, 1, 1, 1]));
        // The stranded-slice config.
        assert!(has(&[3, 3]));
    }

    #[test]
    fn stranded_3g3g_uses_6_gpcs() {
        let configs = all_configurations();
        let c33 = configs
            .iter()
            .find(|c| {
                let mut s = c.sizes();
                s.sort_unstable();
                s == vec![3, 3]
            })
            .expect("3g+3g configuration");
        assert_eq!(c33.gpcs_used(), 6);
    }

    #[test]
    fn all_other_configs_use_7_gpcs() {
        let configs = all_configurations();
        let full: usize = configs.iter().filter(|c| c.gpcs_used() == 7).count();
        // Only 3g+3g strands a slice.
        assert_eq!(full, 18);
    }

    #[test]
    fn configurations_memory_feasible() {
        for c in all_configurations() {
            let mem: u8 = c
                .placements()
                .iter()
                .map(|p| p.profile.memory_slices())
                .sum();
            assert!(mem <= crate::MEMORY_SLICES, "{c} uses {mem} memory slices");
        }
    }

    #[test]
    fn configurations_have_valid_starts_and_no_overlap() {
        for c in all_configurations() {
            let mut g = GpuState::new();
            for p in c.placements() {
                g.place_at(*p)
                    .unwrap_or_else(|e| panic!("{c}: {p} rejected: {e}"));
            }
            assert!(g.is_full(), "{c} is not maximal");
        }
    }

    #[test]
    fn partial_states_are_reachable() {
        let configs = all_configurations();
        let mut g = GpuState::new();
        g.place(G4).unwrap();
        assert!(is_reachable(&g, &configs));
        g.place(G2).unwrap();
        assert!(is_reachable(&g, &configs));
        g.place(G1).unwrap();
        assert!(is_reachable(&g, &configs));
    }

    #[test]
    fn count_by_largest_instance() {
        // Sanity: unique maximal configs grouped by largest profile present:
        // 7g: 1; 4g: 3; 3g: 7 (two-3g 1, 3@0.. 2, 3@4-only 4); rest 2g/1g: 8.
        let configs = all_configurations();
        let largest = |c: &Configuration| c.sizes().iter().copied().max().unwrap();
        assert_eq!(configs.iter().filter(|c| largest(c) == 7).count(), 1);
        assert_eq!(configs.iter().filter(|c| largest(c) == 4).count(), 3);
        assert_eq!(configs.iter().filter(|c| largest(c) == 3).count(), 7);
        assert_eq!(configs.iter().filter(|c| largest(c) <= 2).count(), 8);
    }
}
