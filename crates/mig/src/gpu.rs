//! Per-GPU MIG occupancy state: placement, removal and validity checking.

use crate::profile::InstanceProfile;
use crate::{COMPUTE_SLICES, MEMORY_SLICES};
use serde::{Deserialize, Serialize};

/// A concrete instance placement: a profile anchored at a start slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// The instance profile.
    pub profile: InstanceProfile,
    /// First compute slice occupied (0-based).
    pub start: u8,
}

impl Placement {
    /// Create a placement; does not validate the start slice.
    #[must_use]
    pub const fn new(profile: InstanceProfile, start: u8) -> Self {
        Self { profile, start }
    }

    /// Bitmask of occupied compute slices (bit *i* = slice *i*).
    #[must_use]
    pub const fn slice_mask(self) -> u8 {
        (((1u16 << self.profile.gpcs()) - 1) << self.start) as u8
    }

    /// Compute slices `[start, start + gpcs)` occupied by this placement.
    pub fn slices(self) -> impl Iterator<Item = u8> {
        self.start..self.start + self.profile.gpcs()
    }

    /// Whether the start slice is one the hardware permits for this profile.
    #[must_use]
    pub fn start_is_valid(self) -> bool {
        self.profile.valid_starts().contains(&self.start)
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.profile, self.start)
    }
}

/// Why a placement was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The profile may not start at the requested slice.
    InvalidStart,
    /// One or more of the requested compute slices is already occupied.
    SliceOccupied,
    /// The GPU's 8 memory slices would be over-committed.
    MemoryExhausted,
    /// No start slice (valid or preferred) can accommodate the profile.
    NoRoom,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::InvalidStart => "profile cannot start at the requested slice",
            Self::SliceOccupied => "compute slice already occupied",
            Self::MemoryExhausted => "GPU memory slices exhausted",
            Self::NoRoom => "no valid start slice has room",
        };
        f.write_str(s)
    }
}

impl std::error::Error for PlaceError {}

/// MIG occupancy state of one physical GPU.
///
/// Invariant: the set of placements always has pairwise-disjoint compute
/// slices, hardware-valid start slices, and a total memory-slice count
/// ≤ 8 — which together guarantee it is a subset of one of the 19 valid
/// configurations (see `configs::tests::every_valid_state_extends_to_a_config`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuState {
    occupied_mask: u8,
    mem_slices_used: u8,
    placements: Vec<Placement>,
}

impl GpuState {
    /// A fresh, empty GPU.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current placements, in insertion order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Total compute slices (GPCs) currently allocated.
    #[must_use]
    pub fn gpcs_used(&self) -> u8 {
        self.occupied_mask.count_ones() as u8
    }

    /// Compute slices still free.
    #[must_use]
    pub fn gpcs_free(&self) -> u8 {
        COMPUTE_SLICES - self.gpcs_used()
    }

    /// Memory slices currently consumed (≤ 8).
    #[must_use]
    pub fn mem_slices_used(&self) -> u8 {
        self.mem_slices_used
    }

    /// True when no instance is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// True when no further instance of any profile fits.
    #[must_use]
    pub fn is_full(&self) -> bool {
        InstanceProfile::ALL
            .iter()
            .all(|p| self.find_start(*p).is_none())
    }

    /// Bitmask of occupied compute slices.
    #[must_use]
    pub fn occupied_mask(&self) -> u8 {
        self.occupied_mask
    }

    /// Check whether `placement` could be added right now.
    pub fn check(&self, placement: Placement) -> Result<(), PlaceError> {
        if !placement.start_is_valid() {
            return Err(PlaceError::InvalidStart);
        }
        if self.occupied_mask & placement.slice_mask() != 0 {
            return Err(PlaceError::SliceOccupied);
        }
        if self.mem_slices_used + placement.profile.memory_slices() > MEMORY_SLICES {
            return Err(PlaceError::MemoryExhausted);
        }
        Ok(())
    }

    /// First start slice in the profile's *preference* order that can host it.
    #[must_use]
    pub fn find_start(&self, profile: InstanceProfile) -> Option<u8> {
        profile
            .preferred_starts()
            .iter()
            .copied()
            .find(|&s| self.check(Placement::new(profile, s)).is_ok())
    }

    /// Place an instance at an explicit start slice.
    pub fn place_at(&mut self, placement: Placement) -> Result<(), PlaceError> {
        self.check(placement)?;
        self.occupied_mask |= placement.slice_mask();
        self.mem_slices_used += placement.profile.memory_slices();
        self.placements.push(placement);
        Ok(())
    }

    /// Place an instance at the first preferred start slice with room.
    /// Returns the placement actually used.
    pub fn place(&mut self, profile: InstanceProfile) -> Result<Placement, PlaceError> {
        let start = self.find_start(profile).ok_or(PlaceError::NoRoom)?;
        let placement = Placement::new(profile, start);
        self.place_at(placement)?;
        Ok(placement)
    }

    /// Remove a previously placed instance. Returns `true` if it was present.
    pub fn remove(&mut self, placement: Placement) -> bool {
        if let Some(i) = self.placements.iter().position(|p| *p == placement) {
            self.placements.swap_remove(i);
            self.occupied_mask &= !placement.slice_mask();
            self.mem_slices_used -= placement.profile.memory_slices();
            true
        } else {
            false
        }
    }

    /// Remove every instance, returning the GPU to empty.
    pub fn clear(&mut self) {
        self.occupied_mask = 0;
        self.mem_slices_used = 0;
        self.placements.clear();
    }

    /// Re-check all invariants from scratch (used by tests and debug builds).
    #[must_use]
    pub fn validate(&self) -> bool {
        let mut mask = 0u8;
        let mut mem = 0u8;
        for p in &self.placements {
            if !p.start_is_valid() || mask & p.slice_mask() != 0 {
                return false;
            }
            mask |= p.slice_mask();
            mem += p.profile.memory_slices();
        }
        mask == self.occupied_mask && mem == self.mem_slices_used && mem <= MEMORY_SLICES
    }
}

impl std::fmt::Display for GpuState {
    /// Render like the rows of paper Fig. 1, e.g. `[3 3 3 . 2 2 1]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut cells = ['.'; COMPUTE_SLICES as usize];
        for p in &self.placements {
            for s in p.slices() {
                cells[s as usize] =
                    char::from_digit(u32::from(p.profile.gpcs()), 10).unwrap_or('?');
            }
        }
        write!(f, "[")?;
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use InstanceProfile::*;

    #[test]
    fn empty_gpu() {
        let g = GpuState::new();
        assert!(g.is_empty());
        assert_eq!(g.gpcs_used(), 0);
        assert_eq!(g.gpcs_free(), 7);
        assert!(g.validate());
    }

    #[test]
    fn place_g7_fills_gpu() {
        let mut g = GpuState::new();
        let p = g.place(G7).unwrap();
        assert_eq!(p.start, 0);
        assert!(g.is_full());
        assert_eq!(g.gpcs_used(), 7);
        assert_eq!(g.mem_slices_used(), 8);
    }

    #[test]
    fn g7_rejected_on_nonempty_gpu() {
        let mut g = GpuState::new();
        g.place(G1).unwrap();
        assert_eq!(g.place(G7), Err(PlaceError::NoRoom));
    }

    #[test]
    fn paper_config_4_3() {
        let mut g = GpuState::new();
        g.place(G4).unwrap();
        let p3 = g.place(G3).unwrap();
        assert_eq!(p3.start, 4);
        assert!(g.is_full());
        assert_eq!(g.gpcs_used(), 7);
    }

    #[test]
    fn g3_prefers_slot_4_then_0() {
        let mut g = GpuState::new();
        assert_eq!(g.place(G3).unwrap().start, 4);
        assert_eq!(g.place(G3).unwrap().start, 0);
    }

    #[test]
    fn two_g3_exhaust_memory_stranding_slice_3() {
        // Paper Fig. 1 row 5: 3g+3g leaves compute slice 3 unusable.
        let mut g = GpuState::new();
        g.place(G3).unwrap();
        g.place(G3).unwrap();
        assert_eq!(g.gpcs_free(), 1); // slice 3 physically free ...
        assert_eq!(g.place(G1), Err(PlaceError::NoRoom)); // ... but no memory
        assert!(g.is_full());
    }

    #[test]
    fn g3_plus_g1_plus_g2_plus_g1_is_valid() {
        // Paper Fig. 1 row 6-equivalent: 3@0 + 1@3 + 2@4 + 1@6 (memory 4+1+2+1=8).
        let mut g = GpuState::new();
        g.place_at(Placement::new(G3, 0)).unwrap();
        g.place_at(Placement::new(G1, 3)).unwrap();
        g.place_at(Placement::new(G2, 4)).unwrap();
        g.place_at(Placement::new(G1, 6)).unwrap();
        assert_eq!(g.gpcs_used(), 7);
        assert_eq!(g.mem_slices_used(), 8);
        assert!(g.is_full());
        assert!(g.validate());
    }

    #[test]
    fn seven_g1s() {
        let mut g = GpuState::new();
        for i in 0..7 {
            let p = g.place(G1).unwrap();
            // preference order 0,1,2,3,5,6,4
            let expect = [0, 1, 2, 3, 5, 6, 4][i];
            assert_eq!(p.start, expect);
        }
        assert!(g.is_full());
        assert_eq!(g.mem_slices_used(), 7); // one memory slice left over
    }

    #[test]
    fn invalid_starts_rejected() {
        let mut g = GpuState::new();
        assert_eq!(
            g.place_at(Placement::new(G4, 1)),
            Err(PlaceError::InvalidStart)
        );
        assert_eq!(
            g.place_at(Placement::new(G3, 2)),
            Err(PlaceError::InvalidStart)
        );
        assert_eq!(
            g.place_at(Placement::new(G2, 1)),
            Err(PlaceError::InvalidStart)
        );
        assert_eq!(
            g.place_at(Placement::new(G7, 1)),
            Err(PlaceError::InvalidStart)
        );
    }

    #[test]
    fn overlap_rejected() {
        let mut g = GpuState::new();
        g.place_at(Placement::new(G2, 0)).unwrap();
        assert_eq!(
            g.place_at(Placement::new(G1, 1)),
            Err(PlaceError::SliceOccupied)
        );
        assert_eq!(
            g.place_at(Placement::new(G4, 0)),
            Err(PlaceError::SliceOccupied)
        );
    }

    #[test]
    fn remove_restores_room() {
        let mut g = GpuState::new();
        let p = g.place(G4).unwrap();
        g.place(G3).unwrap();
        assert!(g.remove(p));
        assert!(!g.remove(p)); // second removal is a no-op
        assert_eq!(g.gpcs_used(), 3);
        let p4 = g.place(G4).unwrap();
        assert_eq!(p4.start, 0);
        assert!(g.validate());
    }

    #[test]
    fn clear_resets() {
        let mut g = GpuState::new();
        g.place(G4).unwrap();
        g.place(G2).unwrap();
        g.clear();
        assert!(g.is_empty());
        assert!(g.validate());
        g.place(G7).unwrap();
    }

    #[test]
    fn display_rendering() {
        let mut g = GpuState::new();
        g.place_at(Placement::new(G3, 0)).unwrap();
        g.place_at(Placement::new(G2, 4)).unwrap();
        assert_eq!(g.to_string(), "[3 3 3 . 2 2 .]");
    }

    #[test]
    fn slice_mask_math() {
        assert_eq!(Placement::new(G2, 4).slice_mask(), 0b0011_0000);
        assert_eq!(Placement::new(G7, 0).slice_mask(), 0b0111_1111);
        assert_eq!(Placement::new(G1, 6).slice_mask(), 0b0100_0000);
    }

    #[test]
    fn g4_plus_g2_plus_g1() {
        // Paper Fig. 1 row 3: 4-2-1.
        let mut g = GpuState::new();
        g.place(G4).unwrap();
        let p2 = g.place(G2).unwrap();
        assert_eq!(p2.start, 4);
        let p1 = g.place(G1).unwrap();
        assert_eq!(p1.start, 6);
        assert!(g.is_full());
    }
}
