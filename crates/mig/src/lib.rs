//! # parva-mig — Multi-Instance GPU geometry model
//!
//! A faithful software model of NVIDIA's Multi-Instance GPU (MIG) partitioning
//! rules on Ampere/Hopper-class datacenter GPUs (A100/H100), as required by the
//! ParvaGPU scheduler (SC 2024, §II-B and Fig. 1).
//!
//! A MIG-capable GPU exposes **7 compute slices** (GPU Processing Clusters,
//! GPCs) and **8 memory slices**. GPU instances come in five profiles —
//! 1, 2, 3, 4 or 7 GPCs — and each profile may only *start* at specific
//! compute slices and consumes a fixed number of memory slices:
//!
//! | profile | compute slices | valid starts | memory slices | memory (80 GB GPU) |
//! |---------|----------------|--------------|---------------|--------------------|
//! | 1 GPC   | 1              | 0–6          | 1             | 10 GB              |
//! | 2 GPC   | 2              | 0, 2, 4      | 2             | 20 GB              |
//! | 3 GPC   | 3              | 0, 4         | 4             | 40 GB              |
//! | 4 GPC   | 4              | 0            | 4             | 40 GB              |
//! | 7 GPC   | 7              | 0            | 8             | 80 GB              |
//!
//! The memory-slice budget is what limits a GPU to exactly **19 maximal
//! configurations** (paper Fig. 1): e.g. two 3-GPC instances consume all
//! 8 memory slices, so the leftover compute slice 3 cannot host a 1-GPC
//! instance. [`configs::all_configurations`] derives the 19 configurations
//! from these rules rather than hard-coding them.
//!
//! [`GpuState`] tracks a single GPU's occupancy and enforces validity on
//! every placement; ParvaGPU's Segment Allocator drives it with the slot
//! preference orders described in §III-E-1 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod geometry;
pub mod gpu;
pub mod profile;

pub use configs::{all_configurations, Configuration};
pub use geometry::{GenericConfiguration, GenericPlacement, MigGeometry, ProfileRule};
pub use gpu::{GpuState, PlaceError, Placement};
pub use profile::InstanceProfile;

/// Number of compute slices (GPC slots) on a MIG-capable GPU.
pub const COMPUTE_SLICES: u8 = 7;

/// Number of memory slices on a MIG-capable GPU.
pub const MEMORY_SLICES: u8 = 8;

/// Streaming multiprocessors per compute slice (A100: 98 usable SMs / 7).
pub const SMS_PER_SLICE: u32 = 14;

/// Usable SMs on a whole MIG-enabled GPU.
pub const SMS_PER_GPU: u32 = SMS_PER_SLICE * COMPUTE_SLICES as u32;

/// A MIG-capable GPU model. The paper evaluates on A100 80 GB; H100 80 GB has
/// identical MIG geometry (§V), differing only in speed, which is handled by
/// the performance model, not the geometry.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuModel {
    /// Human-readable name, e.g. `"A100-80GB"`.
    pub name: &'static str,
    /// Memory per memory slice in GiB (80 GB GPU → 10 GiB per slice).
    pub mem_per_slice_gib: f64,
}

impl GpuModel {
    /// NVIDIA A100 80 GB (the paper's evaluation GPU, p4de.24xlarge).
    pub const A100_80GB: GpuModel = GpuModel {
        name: "A100-80GB",
        mem_per_slice_gib: 10.0,
    };

    /// NVIDIA H100 80 GB — identical MIG geometry (paper §V).
    pub const H100_80GB: GpuModel = GpuModel {
        name: "H100-80GB",
        mem_per_slice_gib: 10.0,
    };

    /// NVIDIA A100 40 GB — the original Ampere part: same slices, half the
    /// memory per slice (instances of 5/10/20/20/40 GB).
    pub const A100_40GB: GpuModel = GpuModel {
        name: "A100-40GB",
        mem_per_slice_gib: 5.0,
    };

    /// NVIDIA H200 141 GB (paper §V: "NVIDIA's H200 GPU with MIG offers
    /// 141GB" — the memory that keeps spatial sharing viable for LLMs).
    pub const H200_141GB: GpuModel = GpuModel {
        name: "H200-141GB",
        mem_per_slice_gib: 141.0 / 8.0,
    };

    /// NVIDIA B200 192 GB (paper §V: "the B200 GPU provides 192GB"; the
    /// Blackwell generation keeps the identical MIG configurations).
    pub const B200_192GB: GpuModel = GpuModel {
        name: "B200-192GB",
        mem_per_slice_gib: 24.0,
    };

    /// Every 7-slice-geometry model this crate knows, smallest memory first.
    /// (The A30's 4-slice geometry is expressed separately in [`geometry`];
    /// `GpuModel` covers the families the ParvaGPU algorithms target.)
    pub const CATALOG: [GpuModel; 5] = [
        Self::A100_40GB,
        Self::A100_80GB,
        Self::H100_80GB,
        Self::H200_141GB,
        Self::B200_192GB,
    ];

    /// Look a model up by its catalog name, e.g. `"H200-141GB"`.
    #[must_use]
    pub fn by_name(name: &str) -> Option<GpuModel> {
        Self::CATALOG
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Memory available to an instance of `profile` on this GPU model, GiB.
    #[must_use]
    pub fn instance_memory_gib(&self, profile: InstanceProfile) -> f64 {
        f64::from(profile.memory_slices()) * self.mem_per_slice_gib
    }

    /// Total GPU memory in GiB.
    #[must_use]
    pub fn total_memory_gib(&self) -> f64 {
        f64::from(MEMORY_SLICES) * self.mem_per_slice_gib
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::A100_80GB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_constants_match_a100() {
        assert_eq!(COMPUTE_SLICES, 7);
        assert_eq!(MEMORY_SLICES, 8);
        assert_eq!(SMS_PER_GPU, 98);
    }

    #[test]
    fn a100_memory_ladder_matches_paper() {
        // Paper §II-B: "10, 20, 40, 40, 80GB of GPU memory, respectively".
        let m = GpuModel::A100_80GB;
        let gb: Vec<f64> = InstanceProfile::ALL
            .iter()
            .map(|p| m.instance_memory_gib(*p))
            .collect();
        assert_eq!(gb, vec![10.0, 20.0, 40.0, 40.0, 80.0]);
    }

    #[test]
    fn h100_same_geometry() {
        let (a, h) = (GpuModel::A100_80GB, GpuModel::H100_80GB);
        assert_eq!(a.total_memory_gib(), h.total_memory_gib());
    }

    #[test]
    fn catalog_totals_match_marketing_capacities() {
        // Paper §V quotes 141 GB (H200) and 192 GB (B200).
        let total = |m: GpuModel| m.total_memory_gib();
        assert!((total(GpuModel::A100_40GB) - 40.0).abs() < 1e-9);
        assert!((total(GpuModel::H200_141GB) - 141.0).abs() < 1e-9);
        assert!((total(GpuModel::B200_192GB) - 192.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_lookup_by_name() {
        assert_eq!(GpuModel::by_name("h200-141gb"), Some(GpuModel::H200_141GB));
        assert_eq!(GpuModel::by_name("B200-192GB"), Some(GpuModel::B200_192GB));
        assert_eq!(GpuModel::by_name("TPUv5"), None);
    }

    #[test]
    fn catalog_is_memory_sorted() {
        let totals: Vec<f64> = GpuModel::CATALOG
            .iter()
            .map(GpuModel::total_memory_gib)
            .collect();
        assert!(totals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn larger_memory_models_host_larger_working_sets() {
        // The §V argument in one assertion: a 41 GiB working set (Guanaco
        // 65B) fits a 4-GPC instance only from the H200 up.
        let fits = |m: GpuModel| m.instance_memory_gib(InstanceProfile::G4) >= 41.0;
        assert!(!fits(GpuModel::A100_80GB));
        assert!(fits(GpuModel::H200_141GB));
        assert!(fits(GpuModel::B200_192GB));
    }
}
