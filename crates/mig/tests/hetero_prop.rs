//! Property tests for heterogeneous MIG geometry: the A30 4-slice rules in
//! `mig::geometry` and the full `GpuModel::CATALOG` memory ladder. (The
//! pre-existing `prop.rs` only exercises the specialized 7-slice A100
//! path.)

use parva_mig::{GenericConfiguration, GpuModel, InstanceProfile, MigGeometry};
use proptest::prelude::*;

/// Replay a placement list against a geometry's rules, greedily accepting
/// only hardware-valid, non-overlapping, memory-feasible placements.
/// Returns the accepted `(profile index, start)` set.
fn greedy_replay(geometry: &MigGeometry, ops: &[(usize, u8)]) -> Vec<(usize, u8)> {
    let mut occupied = vec![false; usize::from(geometry.compute_slices)];
    let mut memory = 0u8;
    let mut accepted = Vec::new();
    for &(raw_profile, raw_start) in ops {
        let profile = raw_profile % geometry.profiles.len();
        let start = raw_start % geometry.compute_slices;
        let rule = &geometry.profiles[profile];
        let fits = rule.valid_starts.contains(&start)
            && start + rule.gpcs <= geometry.compute_slices
            && memory + rule.memory_slices <= geometry.memory_slices
            && (start..start + rule.gpcs).all(|s| !occupied[usize::from(s)]);
        if fits {
            for s in start..start + rule.gpcs {
                occupied[usize::from(s)] = true;
            }
            memory += rule.memory_slices;
            accepted.push((profile, start));
        }
    }
    accepted
}

/// Is `state` a subset of `config`'s placements (exact profile+start match)?
fn subset_of(state: &[(usize, u8)], config: &GenericConfiguration) -> bool {
    state.iter().all(|&(profile, start)| {
        config
            .placements
            .iter()
            .any(|p| p.profile == profile && p.start == start)
    })
}

fn arb_geometry() -> impl Strategy<Value = MigGeometry> {
    prop::sample::select(vec![MigGeometry::a100(), MigGeometry::a30()])
}

fn arb_ops() -> impl Strategy<Value = Vec<(usize, u8)>> {
    prop::collection::vec((0usize..5, 0u8..7), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of valid placements on the A30 stays a subset of one of
    /// its 5 maximal configurations — the 4-slice analogue of the paper's
    /// Fig. 1 claim for the A100's 19.
    #[test]
    fn a30_states_reach_a_configuration(ops in arb_ops()) {
        let geometry = MigGeometry::a30();
        let configs = geometry.derive_configurations();
        prop_assert_eq!(configs.len(), 5);
        let state = greedy_replay(&geometry, &ops);
        prop_assert!(
            configs.iter().any(|c| subset_of(&state, c)),
            "A30 state {:?} not within any configuration",
            state
        );
    }

    /// Hardware limits hold for every geometry the crate ships, under any
    /// op sequence: compute ≤ compute_slices, memory ≤ memory_slices, and
    /// no accepted placement uses an illegal start.
    #[test]
    fn geometry_limits_hold(geometry in arb_geometry(), ops in arb_ops()) {
        let state = greedy_replay(&geometry, &ops);
        let gpcs: u8 = state.iter().map(|&(p, _)| geometry.profiles[p].gpcs).sum();
        let memory: u8 = state.iter().map(|&(p, _)| geometry.profiles[p].memory_slices).sum();
        prop_assert!(gpcs <= geometry.compute_slices);
        prop_assert!(memory <= geometry.memory_slices);
        for &(p, s) in &state {
            prop_assert!(geometry.profiles[p].valid_starts.contains(&s));
        }
    }

    /// Every derived configuration of both geometries is non-overlapping,
    /// memory-feasible, and replayable through the placement rules.
    #[test]
    fn derived_configurations_replay_cleanly(geometry in arb_geometry()) {
        for config in geometry.derive_configurations() {
            let ops: Vec<(usize, u8)> =
                config.placements.iter().map(|p| (p.profile, p.start)).collect();
            let replayed = greedy_replay(&geometry, &ops);
            prop_assert_eq!(
                replayed.len(),
                config.placements.len(),
                "configuration {:?} not replayable",
                config
            );
        }
    }

    /// The catalog memory ladder: instance memory is slices × per-slice
    /// GiB on every model, and `by_name` round-trips every catalog entry.
    #[test]
    fn catalog_memory_ladder_consistent(
        model_idx in 0usize..5,
        profile in prop::sample::select(InstanceProfile::ALL.to_vec()),
    ) {
        let model = GpuModel::CATALOG[model_idx];
        let expect = f64::from(profile.memory_slices()) * model.mem_per_slice_gib;
        prop_assert!((model.instance_memory_gib(profile) - expect).abs() < 1e-9);
        prop_assert_eq!(GpuModel::by_name(model.name), Some(model));
        prop_assert!((model.total_memory_gib()
            - f64::from(parva_mig::MEMORY_SLICES) * model.mem_per_slice_gib)
            .abs() < 1e-9);
    }

    /// Memory feasibility is monotone along the catalog: a working set that
    /// fits an instance on one model fits the same instance on every later
    /// (roomier) model — the §V upgrade argument as an invariant.
    #[test]
    fn feasibility_monotone_across_catalog(
        working_set_gib in 0.1f64..250.0,
        profile in prop::sample::select(InstanceProfile::ALL.to_vec()),
    ) {
        let fits: Vec<bool> = GpuModel::CATALOG
            .iter()
            .map(|m| working_set_gib <= m.instance_memory_gib(profile))
            .collect();
        for w in fits.windows(2) {
            prop_assert!(
                !w[0] || w[1],
                "feasibility not monotone for {:.1} GiB on {}: {:?}",
                working_set_gib,
                profile,
                fits
            );
        }
    }
}
