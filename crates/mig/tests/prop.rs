//! Property-based tests for the MIG geometry model.

use parva_mig::{all_configurations, GpuState, InstanceProfile, Placement};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = InstanceProfile> {
    prop::sample::select(InstanceProfile::ALL.to_vec())
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    (arb_profile(), 0u8..7).prop_map(|(p, s)| Placement::new(p, s))
}

proptest! {
    /// Any sequence of successful placements keeps the state internally
    /// consistent and a subset of at least one of the 19 configurations.
    #[test]
    fn placements_stay_valid_and_reachable(ops in prop::collection::vec(arb_placement(), 0..12)) {
        let configs = all_configurations();
        let mut g = GpuState::new();
        for op in ops {
            let _ = g.place_at(op);
            prop_assert!(g.validate());
            prop_assert!(
                configs.iter().any(|c| c.contains(&g)),
                "state {g} not a subset of any configuration"
            );
        }
    }

    /// place + remove is an exact inverse.
    #[test]
    fn place_remove_roundtrip(ops in prop::collection::vec(arb_placement(), 0..10), extra in arb_placement()) {
        let mut g = GpuState::new();
        for op in ops {
            let _ = g.place_at(op);
        }
        let before = g.clone();
        if g.place_at(extra).is_ok() {
            prop_assert!(g.remove(extra));
            // Placement order may differ but the semantic state must match.
            prop_assert_eq!(g.gpcs_used(), before.gpcs_used());
            prop_assert_eq!(g.mem_slices_used(), before.mem_slices_used());
            prop_assert_eq!(g.occupied_mask(), before.occupied_mask());
        }
    }

    /// Memory slices never exceed 8 and GPC count never exceeds 7, no matter
    /// what is attempted.
    #[test]
    fn hard_limits_hold(ops in prop::collection::vec(arb_placement(), 0..64)) {
        let mut g = GpuState::new();
        for op in ops {
            let _ = g.place_at(op);
        }
        prop_assert!(g.mem_slices_used() <= 8);
        prop_assert!(g.gpcs_used() <= 7);
    }

    /// `find_start` only returns starts that `place_at` then accepts, and
    /// `None` only when every valid start is truly blocked.
    #[test]
    fn find_start_is_sound_and_complete(ops in prop::collection::vec(arb_placement(), 0..10), p in arb_profile()) {
        let mut g = GpuState::new();
        for op in ops {
            let _ = g.place_at(op);
        }
        match g.find_start(p) {
            Some(s) => {
                let mut g2 = g.clone();
                prop_assert!(g2.place_at(Placement::new(p, s)).is_ok());
            }
            None => {
                for &s in p.valid_starts() {
                    prop_assert!(g.check(Placement::new(p, s)).is_err());
                }
            }
        }
    }

    /// Greedy fill with any profile order always terminates in a maximal
    /// state consistent with a configuration.
    #[test]
    fn greedy_fill_reaches_maximal(order in prop::collection::vec(arb_profile(), 1..20)) {
        let configs = all_configurations();
        let mut g = GpuState::new();
        for p in order {
            let _ = g.place(p);
        }
        // Top up with 1-GPC instances until nothing fits.
        while g.place(InstanceProfile::G1).is_ok() {}
        prop_assert!(g.is_full());
        prop_assert!(configs.iter().any(|c| c.contains(&g)));
    }
}
