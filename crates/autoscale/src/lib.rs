//! # parva-autoscale — ParvaGPU under fluctuating request rates
//!
//! The paper motivates its low scheduling overhead with "environments with
//! fluctuating request rates" (§IV-A: MIG-serving's slow algorithm is ruled
//! out for exactly that reason) and sketches the runtime story in §III-F:
//! when a service's rate or SLO changes, only that service is re-configured,
//! its segments are relocated, and unaffected GPUs keep serving; shadow
//! processes bridge the brief MIG/MPS reconfiguration window.
//!
//! This crate closes the loop: [`RateTrace`] describes per-epoch load
//! multipliers (diurnal curves, spikes, ramps), and [`run_traced`] walks the
//! epochs — rescheduling **incrementally** through
//! [`parva_core::reconfigure`], serving each epoch in the simulator, and
//! accounting fleet size, SLO compliance and reconfiguration churn per
//! epoch. The result quantifies what the paper only argues: that ParvaGPU's
//! two-stage scheduler is cheap and local enough to chase load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod orchestrator;
pub mod shadow;
pub mod trace;

pub use estimator::DemandEstimator;
#[allow(deprecated)]
pub use orchestrator::{run_traced, EpochReport, TraceReport};
pub use shadow::{
    displacement_window, simulate_displacement_window, simulate_window, DisplacementWindow,
    DisruptionReport,
};
pub use trace::RateTrace;
