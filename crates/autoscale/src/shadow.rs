//! Shadow-process reconfiguration windows — paper §III-F, quantified.
//!
//! "To prevent service disruptions during brief periods of reconfiguration
//! of MIG and MPS, which can range from milliseconds to a few seconds,
//! services undergoing reconfiguration can continue operating using shadow
//! processes on spare GPUs." The paper defers this to future work; this
//! module implements the proposal in the serving simulator and measures
//! what it buys.
//!
//! A reconfiguration window is simulated three ways:
//!
//! 1. **before** — the old deployment, undisturbed (control);
//! 2. **blackout** — the old deployment with every segment on a
//!    reconfiguring GPU offline (what a shadow-less switch does for the
//!    duration of the MIG rebuild);
//! 3. **shadowed** — the blackout deployment plus shadow segments on spare
//!    GPUs replicating the offline capacity.
//!
//! The gap between (2) and (3) is the §III-F claim: shadow processes keep
//! the affected services' compliance at control levels for the price of
//! [`parva_core::reconfigure::ShadowPlan::spare_gpus`] temporary GPUs.

use parva_core::reconfigure::ReconfigOutcome;
use parva_deploy::{Deployment, MigDeployment, PlacedSegment, ServiceSpec};
use parva_serve::{ServingConfig, Simulation};
use serde::{Deserialize, Serialize};

/// Compliance of the three window variants. All three use *request-level*
/// compliance (in-SLO completions over offered requests): the paper's
/// batch-level Fig. 8 metric cannot see a blackout, because a service with
/// zero capacity completes zero batches and trivially scores 100%.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisruptionReport {
    /// Services with capacity on a reconfiguring GPU.
    pub affected_services: Vec<u32>,
    /// Request-level compliance of the undisturbed deployment.
    pub control_compliance: f64,
    /// Compliance with the reconfiguring GPUs dark and no shadows.
    pub blackout_compliance: f64,
    /// Compliance with shadow segments covering the dark capacity.
    pub shadowed_compliance: f64,
    /// Spare GPUs the shadow fleet occupied.
    pub shadow_gpus: usize,
}

impl DisruptionReport {
    /// Compliance the shadows recovered (shadowed − blackout).
    #[must_use]
    pub fn recovered(&self) -> f64 {
        self.shadowed_compliance - self.blackout_compliance
    }
}

/// Segments resident on the GPUs being reconfigured.
fn doomed_segments(before: &MigDeployment, gpus: &[usize]) -> Vec<PlacedSegment> {
    before
        .segments()
        .iter()
        .filter(|ps| gpus.contains(&ps.gpu))
        .copied()
        .collect()
}

/// Simulate a reconfiguration window for `outcome` against the offered
/// load, with and without shadow processes.
#[must_use]
pub fn simulate_window(
    before: &MigDeployment,
    outcome: &ReconfigOutcome,
    specs: &[ServiceSpec],
    config: &ServingConfig,
) -> DisruptionReport {
    simulate_displacement_window(before, &outcome.reconfigured_gpus, specs, config)
}

/// The three deployments a displacement window compares, built but not yet
/// simulated — callers that memoize serving runs (the fleet orchestrator's
/// probe cache) construct the variants once and feed each through their
/// own simulation path.
#[derive(Debug, Clone)]
pub struct DisplacementWindow {
    /// Services with capacity on a displaced GPU, ascending, deduplicated.
    pub affected_services: Vec<u32>,
    /// The displaced deployment: every doomed segment removed, GPU indices
    /// unchanged.
    pub blackout: MigDeployment,
    /// The blackout deployment plus shadow replicas on spare GPUs.
    pub shadowed: MigDeployment,
    /// Spare GPUs the shadow fleet occupied.
    pub shadow_gpus: usize,
}

/// Build the blackout and shadowed variants for losing `displaced_gpus`
/// out of `before` — pure construction, no simulation. The GPU indices
/// refer to `before`'s (logical) fleet order.
#[must_use]
pub fn displacement_window(before: &MigDeployment, displaced_gpus: &[usize]) -> DisplacementWindow {
    let doomed = doomed_segments(before, displaced_gpus);
    let mut affected: Vec<u32> = doomed.iter().map(|ps| ps.segment.service_id).collect();
    affected.sort_unstable();
    affected.dedup();

    // Blackout: the reconfiguring GPUs' segments are gone; GPU indices
    // must stay stable (no compact) so the untouched fleet is unchanged.
    let mut blackout = before.clone();
    for ps in &doomed {
        blackout.remove(ps.gpu, ps.placement);
    }

    // Shadowed: replicate the dark segments on spare GPUs appended to
    // the fleet. The shadow first-fit scans the spare region only — reusing
    // the blackout holes would defeat the purpose (those slices are mid-
    // rebuild).
    let mut shadowed = blackout.clone();
    let spare_base = before.gpu_count();
    for ps in &doomed {
        let profile = ps.segment.triplet.instance;
        let slot = (spare_base..shadowed.gpu_count())
            .find_map(|gpu| shadowed.gpus()[gpu].find_start(profile).map(|s| (gpu, s)));
        let (gpu, start) = slot.unwrap_or((
            shadowed.gpu_count().max(spare_base),
            profile.preferred_starts()[0],
        ));
        shadowed
            .place_at(ps.segment, gpu, parva_mig::Placement::new(profile, start))
            .expect("spare GPU hosts any profile");
    }
    let shadow_gpus = shadowed.gpu_count() - before.gpu_count();
    DisplacementWindow {
        affected_services: affected,
        blackout,
        shadowed,
        shadow_gpus,
    }
}

/// Simulate a disruption window in which the segments on `displaced_gpus`
/// are offline, with and without shadow processes — the event-driven form
/// of [`simulate_window`] used when capacity is lost to node failures or
/// spot preemptions rather than to a planned reconfiguration. The GPU
/// indices refer to `before`'s (logical) fleet order.
#[must_use]
pub fn simulate_displacement_window(
    before: &MigDeployment,
    displaced_gpus: &[usize],
    specs: &[ServiceSpec],
    config: &ServingConfig,
) -> DisruptionReport {
    let window = displacement_window(before, displaced_gpus);

    let control = Simulation::new(&Deployment::Mig(before.clone()), specs)
        .config(config)
        .run()
        .overall_request_compliance_rate();
    let blackout_compliance = Simulation::new(&Deployment::Mig(window.blackout), specs)
        .config(config)
        .run()
        .overall_request_compliance_rate();
    let shadowed_compliance = Simulation::new(&Deployment::Mig(window.shadowed), specs)
        .config(config)
        .run()
        .overall_request_compliance_rate();

    DisruptionReport {
        affected_services: window.affected_services,
        control_compliance: control,
        blackout_compliance,
        shadowed_compliance,
        shadow_gpus: window.shadow_gpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_core::{reconfigure, ParvaGpu};
    use parva_profile::ProfileBook;
    use parva_scenarios::Scenario;

    fn quick() -> ServingConfig {
        ServingConfig {
            warmup_s: 1.0,
            duration_s: 4.0,
            drain_s: 2.0,
            seed: 17,
            ..Default::default()
        }
    }

    /// A reconfiguration that disturbs *existing* GPUs: a 3× rate spike on
    /// service 8 (ResNet-50) grows its segment set, and the relocation +
    /// optimization pass reshapes live GPUs, not just appended ones.
    fn churned() -> (MigDeployment, ReconfigOutcome, Vec<ServiceSpec>) {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let mut specs = Scenario::S2.services();
        let (services, before) = sched.plan(&specs).unwrap();
        let updated = ServiceSpec::new(
            8,
            specs[8].model,
            specs[8].request_rate_rps * 3.0,
            specs[8].slo.latency_ms,
        );
        let outcome = reconfigure::update_service(&sched, &before, &services, updated)
            .expect("spike reconfig feasible");
        let disturbs_live = outcome
            .reconfigured_gpus
            .iter()
            .any(|g| before.segments_on(*g).next().is_some());
        assert!(
            disturbs_live,
            "spike must disturb live GPUs for this fixture"
        );
        specs[8] = updated;
        (before, outcome, specs)
    }

    #[test]
    fn blackout_hurts_shadows_recover() {
        let (before, outcome, specs) = churned();
        assert!(!outcome.reconfigured_gpus.is_empty(), "churn expected");
        // Offered load during the window is the *old* spec set (the new
        // rate takes effect after the switch).
        let old_specs = Scenario::S2.services();
        let report = simulate_window(&before, &outcome, &old_specs, &quick());
        assert!(!report.affected_services.is_empty());
        assert!(report.control_compliance > 0.99);
        assert!(
            report.blackout_compliance < report.control_compliance - 1e-3,
            "blackout {:.4} should hurt vs control {:.4}",
            report.blackout_compliance,
            report.control_compliance
        );
        assert!(
            report.shadowed_compliance >= report.control_compliance - 0.01,
            "shadows {:.4} should restore control {:.4}",
            report.shadowed_compliance,
            report.control_compliance
        );
        assert!(report.recovered() > 0.0);
        assert!(report.shadow_gpus > 0);
        let _ = specs;
    }

    #[test]
    fn no_churn_means_no_disruption() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let specs = Scenario::S1.services();
        let (services, before) = sched.plan(&specs).unwrap();
        let outcome = reconfigure::update_service(&sched, &before, &services, specs[0]).unwrap();
        assert!(outcome.reconfigured_gpus.is_empty());
        let report = simulate_window(&before, &outcome, &specs, &quick());
        assert!(report.affected_services.is_empty());
        assert_eq!(report.shadow_gpus, 0);
        assert!((report.blackout_compliance - report.control_compliance).abs() < 1e-9);
    }

    #[test]
    fn shadow_fleet_size_matches_static_plan_bound() {
        let (before, outcome, _) = churned();
        let plan = outcome.shadow_plan(&before);
        let report = simulate_window(&before, &outcome, &Scenario::S2.services(), &quick());
        // The static plan's spare-GPU bound must cover the simulated fleet.
        assert!(
            report.shadow_gpus as u32 <= plan.spare_gpus + 1,
            "simulated {} spare GPUs vs planned bound {}",
            report.shadow_gpus,
            plan.spare_gpus
        );
    }
}
