//! Rate traces: per-epoch load multipliers.

use serde::{Deserialize, Serialize};

/// A sequence of per-epoch load multipliers applied to a base request rate.
///
/// Epoch boundaries are where the control loop reschedules; within an epoch
/// the rate is constant (the serving simulator draws Poisson arrivals at the
/// epoch's rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateTrace {
    multipliers: Vec<f64>,
}

impl RateTrace {
    /// Build from explicit multipliers (each must be > 0).
    ///
    /// # Panics
    /// Panics on an empty list or non-positive multipliers.
    #[must_use]
    pub fn new(multipliers: Vec<f64>) -> Self {
        assert!(!multipliers.is_empty(), "trace needs at least one epoch");
        assert!(
            multipliers.iter().all(|m| *m > 0.0 && m.is_finite()),
            "multipliers must be positive and finite"
        );
        Self { multipliers }
    }

    /// A flat trace (control experiments).
    #[must_use]
    pub fn flat(epochs: usize) -> Self {
        Self::new(vec![1.0; epochs.max(1)])
    }

    /// A discretized diurnal curve: load swings sinusoidally between
    /// `low` and `high` over `epochs` epochs (one full day).
    #[must_use]
    pub fn diurnal(epochs: usize, low: f64, high: f64) -> Self {
        assert!(low > 0.0 && high >= low, "need 0 < low <= high");
        let n = epochs.max(2);
        let mid = f64::midpoint(low, high);
        let amp = (high - low) / 2.0;
        Self::new(
            (0..n)
                .map(|i| {
                    let phase = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                    // Trough at epoch 0 (3 a.m.), peak mid-trace.
                    mid - amp * phase.cos()
                })
                .collect(),
        )
    }

    /// A flash-crowd spike: baseline 1.0 with a `factor`× surge in the
    /// middle `width` epochs.
    #[must_use]
    pub fn spike(epochs: usize, factor: f64, width: usize) -> Self {
        assert!(factor > 0.0);
        let n = epochs.max(1);
        let w = width.clamp(1, n);
        let start = (n - w) / 2;
        Self::new(
            (0..n)
                .map(|i| {
                    if i >= start && i < start + w {
                        factor
                    } else {
                        1.0
                    }
                })
                .collect(),
        )
    }

    /// A linear ramp from `from`× to `to`× across the epochs.
    #[must_use]
    pub fn ramp(epochs: usize, from: f64, to: f64) -> Self {
        assert!(from > 0.0 && to > 0.0);
        let n = epochs.max(2);
        Self::new(
            (0..n)
                .map(|i| from + (to - from) * i as f64 / (n - 1) as f64)
                .collect(),
        )
    }

    /// Number of epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.multipliers.len()
    }

    /// The multiplier of epoch `i`.
    #[must_use]
    pub fn multiplier(&self, epoch: usize) -> f64 {
        self.multipliers[epoch]
    }

    /// All multipliers.
    #[must_use]
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Peak multiplier.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.multipliers.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Superimpose another trace multiplicatively, epoch-wise (e.g. a
    /// diurnal base × a spike overlay). The shorter trace cycles.
    #[must_use]
    pub fn overlay(&self, other: &RateTrace) -> RateTrace {
        let n = self.epochs().max(other.epochs());
        RateTrace::new(
            (0..n)
                .map(|i| {
                    self.multipliers[i % self.epochs()] * other.multipliers[i % other.epochs()]
                })
                .collect(),
        )
    }

    /// Deterministic multiplicative jitter in `[1−amp, 1+amp]` — the
    /// request-level noise production traces carry on top of their shape.
    #[must_use]
    pub fn with_noise(&self, amp: f64, seed: u64) -> RateTrace {
        assert!((0.0..1.0).contains(&amp), "amplitude must be in [0, 1)");
        RateTrace::new(
            self.multipliers
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    // SplitMix64 over (seed, epoch) → unit interval.
                    let mut z = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64 + 1)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z ^= z >> 27;
                    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                    m * (1.0 + (2.0 * unit - 1.0) * amp)
                })
                .collect(),
        )
    }

    /// One multiplier per CSV line; round-trips with [`RateTrace::from_csv`]
    /// so traces can be exported, edited and replayed.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("multiplier\n");
        for m in &self.multipliers {
            out.push_str(&format!("{m}\n"));
        }
        out
    }

    /// Parse the [`RateTrace::to_csv`] format (header optional).
    ///
    /// # Errors
    /// Reports the offending line for malformed or non-positive values.
    pub fn from_csv(csv: &str) -> Result<RateTrace, String> {
        let mut multipliers = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.eq_ignore_ascii_case("multiplier")) {
                continue;
            }
            let m: f64 = line
                .parse()
                .map_err(|e| format!("line {}: '{line}': {e}", lineno + 1))?;
            if !(m > 0.0 && m.is_finite()) {
                return Err(format!("line {}: multiplier must be positive", lineno + 1));
            }
            multipliers.push(m);
        }
        if multipliers.is_empty() {
            return Err("trace is empty".into());
        }
        Ok(RateTrace::new(multipliers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_swings_between_bounds() {
        let t = RateTrace::diurnal(24, 0.3, 1.0);
        assert_eq!(t.epochs(), 24);
        for &m in t.multipliers() {
            assert!((0.29..=1.01).contains(&m), "{m}");
        }
        // Trough at 0, peak near the middle.
        assert!(t.multiplier(0) < t.multiplier(12));
        assert!((t.peak() - 1.0).abs() < 0.01);
    }

    #[test]
    fn spike_shape() {
        let t = RateTrace::spike(10, 3.0, 2);
        assert_eq!(t.epochs(), 10);
        assert_eq!(t.multipliers().iter().filter(|m| **m > 2.0).count(), 2);
        assert_eq!(t.multiplier(0), 1.0);
        assert_eq!(t.peak(), 3.0);
    }

    #[test]
    fn ramp_endpoints() {
        let t = RateTrace::ramp(5, 0.5, 2.5);
        assert!((t.multiplier(0) - 0.5).abs() < 1e-12);
        assert!((t.multiplier(4) - 2.5).abs() < 1e-12);
        // Monotone.
        for w in t.multipliers().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn flat_is_all_ones() {
        let t = RateTrace::flat(4);
        assert!(t.multipliers().iter().all(|m| (*m - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn empty_rejected() {
        let _ = RateTrace::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_multiplier_rejected() {
        let _ = RateTrace::new(vec![1.0, 0.0]);
    }

    #[test]
    fn overlay_is_pointwise_product_with_cycling() {
        let day = RateTrace::diurnal(24, 0.4, 1.0);
        let surge = RateTrace::spike(12, 2.0, 2);
        let combined = day.overlay(&surge);
        assert_eq!(combined.epochs(), 24);
        for i in 0..24 {
            let want = day.multiplier(i) * surge.multiplier(i % 12);
            assert!((combined.multiplier(i) - want).abs() < 1e-12, "epoch {i}");
        }
    }

    #[test]
    fn noise_stays_in_band_and_is_deterministic() {
        let base = RateTrace::flat(50);
        let noisy = base.with_noise(0.1, 7);
        for &m in noisy.multipliers() {
            assert!((0.9..=1.1).contains(&m), "{m}");
        }
        assert_eq!(noisy, base.with_noise(0.1, 7));
        assert_ne!(noisy, base.with_noise(0.1, 8));
    }

    #[test]
    fn csv_roundtrip() {
        let t = RateTrace::diurnal(24, 0.3, 1.2).with_noise(0.05, 3);
        let parsed = RateTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed.epochs(), t.epochs());
        for (a, b) in parsed.multipliers().iter().zip(t.multipliers()) {
            assert!((a - b).abs() < 1e-12);
        }
        // Headerless input also parses.
        assert!(RateTrace::from_csv("1.0\n2.0\n").is_ok());
    }

    #[test]
    fn csv_errors_are_located() {
        assert!(RateTrace::from_csv("").unwrap_err().contains("empty"));
        let err = RateTrace::from_csv("multiplier\n1.0\nbogus\n").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = RateTrace::from_csv("multiplier\n-1.0\n").unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }
}
