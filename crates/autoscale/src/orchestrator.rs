//! The epoch-based control loop: reschedule incrementally, serve, account.

use crate::estimator::DemandEstimator;
use crate::trace::RateTrace;
use parva_core::{configure, reconfigure, ParvaGpu, Service};
use parva_deploy::{Deployment, MigDeployment, ScheduleError, ServiceSpec};
use parva_profile::ProfileBook;
use parva_serve::{ServingConfig, ServingReport, Simulation};
use serde::{Deserialize, Serialize};

/// Outcome of one trace epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// The trace multiplier in effect.
    pub multiplier: f64,
    /// Fleet size after rescheduling.
    pub gpus: usize,
    /// GPUs whose MIG layout changed entering this epoch (reconfiguration
    /// churn — each needs a brief shadow-process bridge, paper §III-F).
    pub reconfigured_gpus: usize,
    /// Batch-weighted SLO compliance measured over the epoch.
    pub compliance: f64,
    /// Internal slack (Eq. 3) measured over the epoch.
    pub internal_slack: f64,
}

/// Full report of a traced run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReport {
    /// Per-epoch outcomes.
    pub epochs: Vec<EpochReport>,
}

impl TraceReport {
    /// Worst-epoch compliance.
    #[must_use]
    pub fn min_compliance(&self) -> f64 {
        self.epochs.iter().map(|e| e.compliance).fold(1.0, f64::min)
    }

    /// Peak fleet size across epochs.
    #[must_use]
    pub fn peak_gpus(&self) -> usize {
        self.epochs.iter().map(|e| e.gpus).max().unwrap_or(0)
    }

    /// Total reconfiguration churn (GPU reconfigurations summed over
    /// epochs).
    #[must_use]
    pub fn total_reconfigurations(&self) -> usize {
        self.epochs.iter().map(|e| e.reconfigured_gpus).sum()
    }
}

/// Present the oracle multiplier to the estimator as a perfect one-epoch
/// observation and read the demand specs back. All demand — oracle or
/// measured — flows through [`DemandEstimator`], so the legacy traced runs
/// and the `parvad` closed loop share one capacity-planning pathway.
fn oracle_specs(
    estimator: &mut DemandEstimator,
    base: &[ServiceSpec],
    multiplier: f64,
) -> Vec<ServiceSpec> {
    let observed: Vec<f64> = base
        .iter()
        .map(|s| s.request_rate_rps * multiplier)
        .collect();
    estimator.observe(&observed);
    estimator.demand_specs(base)
}

/// Run `base` services through `trace`, rescheduling at each epoch boundary
/// via the paper's incremental reconfiguration path (§III-F) and serving
/// each epoch in the simulator.
///
/// Epoch 0 performs a full plan; subsequent epochs apply per-service
/// [`reconfigure::update_service`] steps (every service's rate changes, but
/// each step keeps all other services' placements where possible, so churn
/// stays visible and bounded).
///
/// # Errors
/// Propagates scheduling failures (e.g. an infeasible peak multiplier).
#[deprecated(
    since = "0.1.0",
    note = "oracle-fed demand; drive the loop from observed arrivals via \
            `DemandEstimator` (the `parvad` daemon does) instead"
)]
pub fn run_traced(
    book: &ProfileBook,
    base: &[ServiceSpec],
    trace: &RateTrace,
    serving: &ServingConfig,
) -> Result<TraceReport, ScheduleError> {
    let scheduler = ParvaGpu::new(book);
    let mut epochs = Vec::with_capacity(trace.epochs());
    // Window 1 + unit headroom: the oracle multiplier passes through the
    // estimator unchanged.
    let mut estimator = DemandEstimator::new(base.len(), 1);

    // Epoch 0: full plan.
    let specs0 = oracle_specs(&mut estimator, base, trace.multiplier(0));
    let (mut services, mut deployment): (Vec<Service>, MigDeployment) = scheduler.plan(&specs0)?;
    let report0 = Simulation::new(&Deployment::Mig(deployment.clone()), &specs0)
        .config(serving)
        .run();
    epochs.push(epoch_report(
        0,
        trace.multiplier(0),
        &deployment,
        0,
        &report0,
    ));

    for epoch in 1..trace.epochs() {
        let specs = oracle_specs(&mut estimator, base, trace.multiplier(epoch));
        let mut churn = std::collections::BTreeSet::new();
        // Incremental per-service updates through the reconfiguration path.
        for spec in &specs {
            let outcome = reconfigure::update_service(&scheduler, &deployment, &services, *spec)?;
            churn.extend(outcome.reconfigured_gpus.iter().copied());
            deployment = outcome.deployment;
            let slot = services
                .iter()
                .position(|s| s.spec.id == spec.id)
                .expect("service set is stable across epochs");
            services[slot] = outcome.service;
        }
        let report = Simulation::new(&Deployment::Mig(deployment.clone()), &specs)
            .config(serving)
            .run();
        epochs.push(epoch_report(
            epoch,
            trace.multiplier(epoch),
            &deployment,
            churn.len(),
            &report,
        ));
    }
    Ok(TraceReport { epochs })
}

fn epoch_report(
    epoch: usize,
    multiplier: f64,
    deployment: &MigDeployment,
    reconfigured: usize,
    report: &ServingReport,
) -> EpochReport {
    EpochReport {
        epoch,
        multiplier,
        gpus: deployment.gpu_count(),
        reconfigured_gpus: reconfigured,
        compliance: report.overall_compliance_rate(),
        internal_slack: report.internal_slack(),
    }
}

/// Convenience: full (non-incremental) re-plan per epoch, for comparing
/// churn against the incremental path.
///
/// # Errors
/// Propagates scheduling failures.
#[deprecated(
    since = "0.1.0",
    note = "oracle-fed demand; drive the loop from observed arrivals via \
            `DemandEstimator` (the `parvad` daemon does) instead"
)]
pub fn run_traced_replan(
    book: &ProfileBook,
    base: &[ServiceSpec],
    trace: &RateTrace,
    serving: &ServingConfig,
) -> Result<TraceReport, ScheduleError> {
    let scheduler = ParvaGpu::new(book);
    let mut epochs = Vec::with_capacity(trace.epochs());
    let mut estimator = DemandEstimator::new(base.len(), 1);
    let mut prev: Option<MigDeployment> = None;
    for epoch in 0..trace.epochs() {
        let specs = oracle_specs(&mut estimator, base, trace.multiplier(epoch));
        let services = configure(&specs, scheduler.book(), scheduler.max_procs())?;
        let deployment = parva_core::allocator::allocate(&services, scheduler.allocator_config());
        let churn = prev.as_ref().map_or(0, |p| diff_count(p, &deployment));
        let report = Simulation::new(&Deployment::Mig(deployment.clone()), &specs)
            .config(serving)
            .run();
        epochs.push(epoch_report(
            epoch,
            trace.multiplier(epoch),
            &deployment,
            churn,
            &report,
        ));
        prev = Some(deployment);
    }
    Ok(TraceReport { epochs })
}

fn diff_count(a: &MigDeployment, b: &MigDeployment) -> usize {
    let n = a.gpu_count().max(b.gpu_count());
    (0..n)
        .filter(|&gpu| {
            let mut xs: Vec<_> = a
                .segments_on(gpu)
                .map(|ps| (ps.segment.service_id, ps.placement))
                .collect();
            let mut ys: Vec<_> = b
                .segments_on(gpu)
                .map(|ps| (ps.segment.service_id, ps.placement))
                .collect();
            xs.sort_unstable();
            ys.sort_unstable();
            xs != ys
        })
        .count()
}

#[cfg(test)]
#[allow(deprecated)] // the oracle-fed entry points stay covered until removal
mod tests {
    use super::*;
    use parva_perf::Model;

    fn base() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::new(0, Model::ResNet50, 600.0, 205.0),
            ServiceSpec::new(1, Model::MobileNetV2, 500.0, 167.0),
            ServiceSpec::new(2, Model::DenseNet121, 300.0, 183.0),
        ]
    }

    fn quick() -> ServingConfig {
        ServingConfig {
            warmup_s: 0.5,
            duration_s: 2.0,
            drain_s: 1.0,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn flat_trace_no_churn_after_epoch0() {
        let book = ProfileBook::builtin();
        let report = run_traced(&book, &base(), &RateTrace::flat(3), &quick()).unwrap();
        assert_eq!(report.epochs.len(), 3);
        // Identical rates → reconfiguration is a no-op.
        for e in &report.epochs[1..] {
            assert_eq!(e.reconfigured_gpus, 0, "epoch {} churned", e.epoch);
        }
    }

    #[test]
    fn diurnal_trace_meets_slo_every_epoch() {
        let book = ProfileBook::builtin();
        let report =
            run_traced(&book, &base(), &RateTrace::diurnal(6, 0.4, 1.6), &quick()).unwrap();
        assert!(
            report.min_compliance() > 0.999,
            "worst epoch compliance {:.4}",
            report.min_compliance()
        );
    }

    #[test]
    fn spike_grows_then_shrinks_fleet() {
        let book = ProfileBook::builtin();
        let report = run_traced(&book, &base(), &RateTrace::spike(5, 4.0, 1), &quick()).unwrap();
        let gpus: Vec<usize> = report.epochs.iter().map(|e| e.gpus).collect();
        let peak = report.peak_gpus();
        assert!(peak > gpus[0], "spike did not grow the fleet: {gpus:?}");
        assert!(
            *gpus.last().unwrap() <= gpus[0] + 1,
            "fleet did not shrink back: {gpus:?}"
        );
    }

    #[test]
    fn ramp_fleet_monotone() {
        let book = ProfileBook::builtin();
        let report = run_traced(&book, &base(), &RateTrace::ramp(4, 0.5, 2.0), &quick()).unwrap();
        let gpus: Vec<usize> = report.epochs.iter().map(|e| e.gpus).collect();
        for w in gpus.windows(2) {
            assert!(
                w[1] + 1 >= w[0],
                "fleet shrank under growing load: {gpus:?}"
            );
        }
    }

    #[test]
    fn replan_baseline_runs() {
        let book = ProfileBook::builtin();
        let inc = run_traced(&book, &base(), &RateTrace::diurnal(4, 0.5, 1.5), &quick()).unwrap();
        let rep =
            run_traced_replan(&book, &base(), &RateTrace::diurnal(4, 0.5, 1.5), &quick()).unwrap();
        assert_eq!(inc.epochs.len(), rep.epochs.len());
        // Both serve all epochs compliantly.
        assert!(inc.min_compliance() > 0.999);
        assert!(rep.min_compliance() > 0.999);
    }

    #[test]
    fn infeasible_peak_fails_loudly() {
        let book = ProfileBook::builtin();
        let tight = vec![ServiceSpec::new(0, Model::BertLarge, 100.0, 100.0)];
        // 100× the rate with a tight SLO eventually exceeds feasibility?
        // BERT at SLO 100ms is schedulable; push the multiplier absurdly
        // high and it still schedules (more GPUs) — so instead make the SLO
        // infeasible outright.
        let impossible = vec![ServiceSpec::new(0, Model::BertLarge, 100.0, 2.0)];
        assert!(run_traced(&book, &impossible, &RateTrace::flat(2), &quick()).is_err());
        assert!(run_traced(&book, &tight, &RateTrace::flat(1), &quick()).is_ok());
    }
}
