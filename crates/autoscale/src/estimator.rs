//! Observed-demand estimation: the closed-loop autoscaler's demand signal.
//!
//! The paper's §III-F reconfiguration path takes a *known* new request rate
//! — an oracle. A real control plane never has one: it only sees what
//! arrived. [`DemandEstimator`] is the bridge: feed it per-epoch observed
//! arrival rates (from [`parva_serve::StreamEngine::last_epoch`] gauges or
//! any other measured source), and it produces per-service demand
//! estimates — a trailing-window mean with a configurable headroom factor —
//! which [`DemandEstimator::demand_specs`] turns into the `ServiceSpec`
//! rates the incremental allocator plans against.
//!
//! Every oracle-fed entry point in this crate now routes through this API
//! (the oracle multiplier becomes a perfect single-epoch observation), so
//! there is exactly one demand pathway to audit, and the genuinely closed
//! loop in `parvad` differs from the legacy oracle loop only in *what* is
//! observed, never in how demand becomes capacity.
//!
//! The estimator state is `serde`-serializable so a suspended daemon
//! resumes its control decisions bit-identically.

use parva_deploy::ServiceSpec;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Trailing-window demand estimator over observed per-service arrival
/// rates.
///
/// With `window = 1` and `headroom = 1.0` the estimate is exactly the last
/// observation — the configuration the legacy oracle paths use, making
/// "oracle demand" a degenerate case of observed demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandEstimator {
    window: usize,
    headroom: f64,
    history: Vec<VecDeque<f64>>,
}

impl DemandEstimator {
    /// An estimator for `services` services averaging the last `window`
    /// observations (clamped to ≥ 1). Headroom starts at 1.0.
    #[must_use]
    pub fn new(services: usize, window: usize) -> Self {
        Self {
            window: window.max(1),
            headroom: 1.0,
            history: vec![VecDeque::new(); services],
        }
    }

    /// Builder: multiply every estimate by `headroom` (provisioning
    /// safety margin against demand growth within the actuation lag).
    ///
    /// # Panics
    /// Non-finite or non-positive headroom.
    #[must_use]
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom.is_finite() && headroom > 0.0,
            "headroom must be positive"
        );
        self.headroom = headroom;
        self
    }

    /// Number of services tracked.
    #[must_use]
    pub fn services(&self) -> usize {
        self.history.len()
    }

    /// Record one epoch's observed arrival rates (req/s, one per service).
    /// A longer slice than [`DemandEstimator::services`] grows the tracked
    /// set (newly admitted pods); a shorter one leaves the tail untouched.
    pub fn observe(&mut self, observed_rps: &[f64]) {
        if observed_rps.len() > self.history.len() {
            self.history.resize_with(observed_rps.len(), VecDeque::new);
        }
        for (h, &r) in self.history.iter_mut().zip(observed_rps) {
            h.push_back(if r.is_finite() && r > 0.0 { r } else { 0.0 });
            while h.len() > self.window {
                h.pop_front();
            }
        }
    }

    /// Record observed arrival *counts* over an epoch of `epoch_s` seconds
    /// — the shape the streaming engine's gauges come in.
    ///
    /// # Panics
    /// Non-positive `epoch_s`.
    pub fn observe_counts(&mut self, counts: &[u64], epoch_s: f64) {
        assert!(epoch_s > 0.0, "epoch duration must be positive");
        let rates: Vec<f64> = counts.iter().map(|&c| c as f64 / epoch_s).collect();
        self.observe(&rates);
    }

    /// Headroom-free demand estimate of service `i`: the trailing-window
    /// mean of its observed rates. `None` until the first observation.
    #[must_use]
    pub fn estimate(&self, i: usize) -> Option<f64> {
        let h = self.history.get(i)?;
        if h.is_empty() {
            return None;
        }
        Some(h.iter().sum::<f64>() / h.len() as f64)
    }

    /// Turn `base` specs into allocator input: each service's rate becomes
    /// `headroom × estimate` (falling back to the base rate until its
    /// first observation — the initial plan has nothing observed yet).
    /// SLO, model and tenant pass through unchanged.
    #[must_use]
    pub fn demand_specs(&self, base: &[ServiceSpec]) -> Vec<ServiceSpec> {
        base.iter()
            .enumerate()
            .map(|(i, s)| {
                let rate = match self.estimate(i) {
                    Some(e) => self.headroom * e,
                    None => s.request_rate_rps,
                };
                ServiceSpec {
                    // A zero-rate service is still deployed at a minimal
                    // footprint: the allocator needs a positive rate.
                    request_rate_rps: rate.max(s.request_rate_rps * 1e-3),
                    ..*s
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;

    #[test]
    fn trailing_window_mean() {
        let mut e = DemandEstimator::new(1, 3);
        assert_eq!(e.estimate(0), None);
        e.observe(&[100.0]);
        e.observe(&[200.0]);
        assert_eq!(e.estimate(0), Some(150.0));
        e.observe(&[300.0]);
        e.observe(&[400.0]); // evicts the 100.0 sample
        assert_eq!(e.estimate(0), Some(300.0));
    }

    #[test]
    fn window_one_tracks_last_observation_exactly() {
        let mut e = DemandEstimator::new(2, 1);
        e.observe(&[7.0, 9.0]);
        e.observe(&[70.0, 90.0]);
        assert_eq!(e.estimate(0), Some(70.0));
        assert_eq!(e.estimate(1), Some(90.0));
    }

    #[test]
    fn demand_specs_apply_headroom_and_fallback() {
        let base = vec![
            ServiceSpec::new(0, Model::ResNet50, 600.0, 205.0),
            ServiceSpec::new(1, Model::MobileNetV2, 500.0, 167.0),
        ];
        let mut e = DemandEstimator::new(2, 1).with_headroom(1.2);
        e.observe(&[400.0, 0.0]);
        let specs = e.demand_specs(&base);
        assert!((specs[0].request_rate_rps - 480.0).abs() < 1e-9);
        // Observed-zero service keeps a minimal positive footprint.
        assert!(specs[1].request_rate_rps > 0.0);
        assert!(specs[1].request_rate_rps < 1.0);
        // SLOs pass through.
        assert_eq!(specs[0].slo.latency_ms, 205.0);
    }

    #[test]
    fn unobserved_services_fall_back_to_base_rate() {
        let base = vec![ServiceSpec::new(0, Model::ResNet50, 600.0, 205.0)];
        let e = DemandEstimator::new(1, 4);
        assert_eq!(e.demand_specs(&base)[0].request_rate_rps, 600.0);
    }

    #[test]
    fn observe_counts_divides_by_epoch() {
        let mut e = DemandEstimator::new(1, 1);
        e.observe_counts(&[250], 0.5);
        assert_eq!(e.estimate(0), Some(500.0));
    }

    #[test]
    fn admitting_a_service_grows_the_tracked_set() {
        let mut e = DemandEstimator::new(1, 2);
        e.observe(&[10.0]);
        e.observe(&[10.0, 99.0]);
        assert_eq!(e.services(), 2);
        assert_eq!(e.estimate(1), Some(99.0));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut e = DemandEstimator::new(3, 5).with_headroom(1.15);
        e.observe(&[1.0, 2.0, 3.0]);
        e.observe(&[4.0, 5.0, 6.0]);
        let restored = DemandEstimator::from_value(&e.to_value()).unwrap();
        assert_eq!(e, restored);
    }
}
