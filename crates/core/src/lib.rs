//! # parva-core — the ParvaGPU scheduler
//!
//! The paper's primary contribution (SC 2024, §III): an SLO-aware spatial
//! GPU-sharing scheduler that combines MIG isolation between workloads with
//! MPS sharing *within* a workload, minimizing both
//!
//! * **GPU internal slack** — under-utilization inside an allocated
//!   partition — via the **GPU Segment Configurator** (Algorithm 1), and
//! * **GPU external fragmentation** — unallocated GPCs on in-use GPUs — via
//!   the **GPU Segment Allocator** (Algorithm 2).
//!
//! The NP-hard joint problem is split into two cheap stages (§III-G: the
//! Configurator is O(N) for the paper's profiling grid; the Allocator is
//! O(N·S) + O(N·M)):
//!
//! ```text
//! services ──▶ Configurator ──▶ per-service segment sets ──▶ Allocator ──▶ deployment map
//!              (triplets,          (k × optimal + last)        (relocation,
//!               demand match)                                   optimization)
//! ```
//!
//! Entry points: [`ParvaGpu`] (full system), [`ParvaGpuSingle`] (MPS
//! disabled — the paper's `ParvaGPU-single` ablation) and
//! [`ParvaGpuUnoptimized`] (Allocation Optimization disabled — the paper's
//! `ParvaGPU-unoptimized` ablation), all implementing
//! [`parva_deploy::Scheduler`]. Runtime SLO changes are handled by
//! [`reconfigure::update_service`] (paper §III-F) without touching
//! unaffected services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod configurator;
pub mod reconfigure;
pub mod scheduler;
pub mod service;

pub use allocator::{AllocatorConfig, SegmentQueues};
pub use configurator::{configure, configure_service, TARGET_UTILIZATION};
pub use reconfigure::{update_service, ReconfigOutcome};
pub use scheduler::{ParvaGpu, ParvaGpuSingle, ParvaGpuUnoptimized};
pub use service::Service;
