//! The runtime service object — paper Table II.

use parva_deploy::{Segment, ServiceSpec};
use serde::{Deserialize, Serialize};

/// A service together with the Segment Configurator's outputs.
///
/// Mirrors the member variables of the paper's Table II:
///
/// | paper field     | here                                   |
/// |-----------------|----------------------------------------|
/// | `id`            | `spec.id`                              |
/// | `lat`           | `spec.slo`                             |
/// | `req_rate`      | `spec.request_rate_rps`                |
/// | `opt_tri_array` | `opt_triplets` (≤ 5, one per size)     |
/// | `opt_seg`       | `opt_seg`                              |
/// | `num_opt_seg`   | `num_opt_seg`                          |
/// | `last_seg`      | `last_seg` (`None` when rate divides)  |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// The registered specification.
    pub spec: ServiceSpec,
    /// Optimal triplet per MIG instance size (ascending GPC order); sizes
    /// with no SLO-feasible point are absent.
    pub opt_triplets: Vec<Segment>,
    /// The optimal segment: maximal throughput-per-GPC triplet.
    pub opt_seg: Segment,
    /// How many copies of the optimal segment Demand Matching selected.
    pub num_opt_seg: u32,
    /// The trailing segment covering the remaining request rate.
    pub last_seg: Option<Segment>,
}

impl Service {
    /// Aggregate predicted capacity of the configured segment set, req/s.
    #[must_use]
    pub fn configured_capacity_rps(&self) -> f64 {
        f64::from(self.num_opt_seg) * self.opt_seg.throughput_rps
            + self.last_seg.map_or(0.0, |s| s.throughput_rps)
    }

    /// Total GPCs the configured segment set will occupy.
    #[must_use]
    pub fn configured_gpcs(&self) -> u32 {
        self.num_opt_seg * u32::from(self.opt_seg.gpcs())
            + self.last_seg.map_or(0, |s| u32::from(s.gpcs()))
    }

    /// The smallest-GPC feasible triplets (size 1 or 2) used by Allocation
    /// Optimization's `SMALL_SEGMENTS` step, best throughput-per-GPC first.
    #[must_use]
    pub fn small_triplets(&self) -> Vec<Segment> {
        let mut v: Vec<Segment> = self
            .opt_triplets
            .iter()
            .copied()
            .filter(|s| s.gpcs() <= 2)
            .collect();
        v.sort_by(|a, b| b.throughput_per_gpc().total_cmp(&a.throughput_per_gpc()));
        v
    }

    /// Number of segments in the configured set.
    #[must_use]
    pub fn segment_count(&self) -> u32 {
        self.num_opt_seg + u32::from(self.last_seg.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(g: InstanceProfile, tput: f64) -> Segment {
        Segment {
            service_id: 0,
            model: Model::ResNet50,
            triplet: Triplet::new(g, 8, 2),
            throughput_rps: tput,
            latency_ms: 12.0,
        }
    }

    fn svc() -> Service {
        Service {
            spec: ServiceSpec::new(0, Model::ResNet50, 950.0, 100.0),
            opt_triplets: vec![
                seg(InstanceProfile::G1, 120.0),
                seg(InstanceProfile::G2, 260.0),
                seg(InstanceProfile::G3, 400.0),
                seg(InstanceProfile::G4, 520.0),
                seg(InstanceProfile::G7, 900.0),
            ],
            opt_seg: seg(InstanceProfile::G3, 400.0),
            num_opt_seg: 2,
            last_seg: Some(seg(InstanceProfile::G2, 260.0)),
        }
    }

    #[test]
    fn capacity_and_gpcs() {
        let s = svc();
        assert_eq!(s.configured_capacity_rps(), 1060.0);
        assert_eq!(s.configured_gpcs(), 8);
        assert_eq!(s.segment_count(), 3);
    }

    #[test]
    fn small_triplets_sorted_by_efficiency() {
        let s = svc();
        let small = s.small_triplets();
        assert_eq!(small.len(), 2);
        // G2 at 130/gpc beats G1 at 120/gpc.
        assert_eq!(small[0].gpcs(), 2);
        assert_eq!(small[1].gpcs(), 1);
    }

    #[test]
    fn no_last_segment() {
        let mut s = svc();
        s.last_seg = None;
        assert_eq!(s.configured_capacity_rps(), 800.0);
        assert_eq!(s.segment_count(), 2);
    }
}
