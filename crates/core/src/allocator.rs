//! The GPU Segment Allocator — paper Algorithm 2.
//!
//! Stage 1, **Segment Relocation** (`SEGMENT_RELOCATION`): all services'
//! segments go into size-indexed queues and are placed largest-first by
//! first-fit over the GPU fleet, honoring the MIG slot-preference rules
//! (§III-E-1). This is the classic decreasing-size heuristic for
//! irregular-packing problems.
//!
//! Stage 2, **Allocation Optimization** (`ALLOCATION_OPTIMIZATION`): walking
//! the fleet from the last GPU backwards, GPUs with ≤ 4 allocated GPCs
//! (the paper's fragmentation threshold) are broken up: their segments are
//! freed and the freed throughput is re-covered with size-1/2 segments that
//! first-fit into holes on earlier GPUs. A `freed_rate` ledger carries
//! surplus coverage between GPUs so the minimum number of small segments is
//! issued. Every step is guarded: if breaking a GPU up does not reduce the
//! fleet (or worsens fragmentation), the step is rolled back.
//!
//! Stage 3, **fill pass**: the paper reports exactly 0% external
//! fragmentation for full ParvaGPU and notes that small-segment surplus "is
//! reflected … for the next GPU". We realize that end state explicitly:
//! remaining holes are padded with additional size-1/2 segments of the
//! least-provisioned services (pure headroom — never harms an SLO), and
//! memory-stranded GPUs (the `3g+3g` configuration, whose 7th slice cannot
//! host anything) are repaired by splitting one of the 3-GPC segments into
//! small segments. This stage is this implementation's only extrapolation
//! beyond the algorithm text; see DESIGN.md §1.

use crate::service::Service;
use parva_deploy::{MigDeployment, PlacedSegment, Segment};
use parva_mig::{InstanceProfile, Placement};
use std::collections::HashMap;

/// Coverage slop when comparing request rates (req/s).
const RATE_EPS: f64 = 1e-9;

/// Tuning knobs of the Segment Allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocatorConfig {
    /// GPUs with at most this many allocated GPCs are considered heavily
    /// fragmented and broken up by Allocation Optimization. The paper sets
    /// this "heuristically … to 4" (§III-E-2).
    pub frag_threshold_gpcs: u8,
    /// Run Allocation Optimization (false = the paper's
    /// `ParvaGPU-unoptimized` ablation).
    pub optimize: bool,
    /// Run the final fill pass (0% external fragmentation).
    pub fill: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self {
            frag_threshold_gpcs: 4,
            optimize: true,
            fill: true,
        }
    }
}

/// Size-indexed segment queues (paper Alg. 2's `ENQUEUE` targets), processed
/// largest size first.
#[derive(Debug, Default, Clone)]
pub struct SegmentQueues {
    queues: [std::collections::VecDeque<Segment>; 5],
}

impl SegmentQueues {
    /// Empty queues.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(profile: InstanceProfile) -> usize {
        // Descending order: G7, G4, G3, G2, G1.
        match profile {
            InstanceProfile::G7 => 0,
            InstanceProfile::G4 => 1,
            InstanceProfile::G3 => 2,
            InstanceProfile::G2 => 3,
            InstanceProfile::G1 => 4,
        }
    }

    /// Queue a segment by its instance size (paper `ENQUEUE`).
    pub fn enqueue(&mut self, segment: Segment) {
        self.queues[Self::slot(segment.triplet.instance)].push_back(segment);
    }

    /// Total queued segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues
            .iter()
            .map(std::collections::VecDeque::len)
            .sum()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(std::collections::VecDeque::is_empty)
    }

    /// Drain all queues, largest size first, FIFO within a size.
    pub fn drain_descending(&mut self) -> impl Iterator<Item = Segment> + '_ {
        self.queues.iter_mut().flat_map(|q| q.drain(..))
    }
}

/// The paper's `ALLOCATION` function: drain the queues largest-first and
/// place each segment on the first GPU that can host it (appending GPUs as
/// needed), honoring the slot preference rules baked into
/// [`parva_mig::InstanceProfile::preferred_starts`].
pub fn allocation(deployment: &mut MigDeployment, queues: &mut SegmentQueues) {
    let drained: Vec<Segment> = queues.drain_descending().collect();
    for seg in drained {
        deployment.place_first_fit(seg);
    }
}

/// Stage 1 — `SEGMENT_RELOCATION` (paper Alg. 2 lines 2–10): queue every
/// service's `num_opt_seg` optimal segments plus its last segment, then run
/// `ALLOCATION`.
#[must_use]
pub fn relocate(services: &[Service]) -> MigDeployment {
    let mut queues = SegmentQueues::new();
    for svc in services {
        for _ in 0..svc.num_opt_seg {
            queues.enqueue(svc.opt_seg);
        }
        if let Some(last) = svc.last_seg {
            queues.enqueue(last);
        }
    }
    let mut deployment = MigDeployment::new();
    allocation(&mut deployment, &mut queues);
    deployment
}

fn used_gpus(d: &MigDeployment) -> usize {
    d.gpus().iter().filter(|g| !g.is_empty()).count()
}

fn free_gpcs_on_used(d: &MigDeployment) -> u32 {
    d.gpus()
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| u32::from(g.gpcs_free()))
        .sum()
}

/// `(used GPUs, free GPCs)` — lexicographic "badness" for rollback guards.
fn badness(d: &MigDeployment) -> (usize, u32) {
    (used_gpus(d), free_gpcs_on_used(d))
}

/// Issue small (size-1/2) segments covering `need` req/s for `svc`,
/// drawing down the ledger. Returns the issued segments; empty when the
/// service has no feasible small triplet.
fn small_segments(svc: &Service, need: f64) -> Vec<Segment> {
    let smalls = svc.small_triplets();
    let Some(best) = smalls.first().copied() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut remaining = need;
    while remaining > RATE_EPS {
        out.push(best);
        remaining -= best.throughput_rps;
    }
    out
}

/// Stage 2 — `ALLOCATION_OPTIMIZATION` (paper Alg. 2 lines 12–31).
pub fn optimize(deployment: &mut MigDeployment, services: &[Service], config: &AllocatorConfig) {
    let by_id: HashMap<u32, &Service> = services.iter().map(|s| (s.spec.id, s)).collect();
    // The freed-throughput ledger lives across GPU iterations (paper line
    // 13: `freed_rate` is declared outside the loop), so surplus coverage
    // from one GPU offsets the next.
    let mut freed_rate: HashMap<u32, f64> = HashMap::new();

    // Walk from the last GPU to the first (paper line 14). GPUs are not
    // compacted inside the sweep so indices stay stable; `ALLOCATION`'s
    // first-fit naturally prefers earlier GPUs' holes.
    for gpu in (0..deployment.gpu_count()).rev() {
        if deployment.gpus()[gpu].is_empty()
            || deployment.gpus()[gpu].gpcs_used() > config.frag_threshold_gpcs
        {
            continue;
        }
        let snapshot = deployment.clone();
        let ledger_snapshot = freed_rate.clone();

        // Free this GPU's segments (only those whose service can actually be
        // re-covered by small segments).
        let on_gpu: Vec<PlacedSegment> = deployment.segments_on(gpu).copied().collect();
        let mut any_freed = false;
        for ps in &on_gpu {
            let svc = by_id[&ps.segment.service_id];
            if svc.small_triplets().is_empty() {
                continue;
            }
            any_freed = true;
            *freed_rate.entry(ps.segment.service_id).or_insert(0.0) += ps.segment.throughput_rps;
            deployment.remove(gpu, ps.placement);
        }
        if !any_freed {
            continue;
        }

        // SMALL_SEGMENTS + ENQUEUE (paper lines 22–26).
        let mut queues = SegmentQueues::new();
        for svc in services {
            let need = freed_rate.get(&svc.spec.id).copied().unwrap_or(0.0);
            if need <= RATE_EPS {
                continue;
            }
            for seg in small_segments(svc, need) {
                *freed_rate.get_mut(&svc.spec.id).expect("need>0") -= seg.throughput_rps;
                queues.enqueue(seg);
            }
        }

        // Re-allocate (paper line 29).
        allocation(deployment, &mut queues);

        // Rollback guard: never let an optimization step grow the fleet or
        // worsen fragmentation.
        if badness(deployment) > badness(&snapshot) {
            *deployment = snapshot;
            freed_rate = ledger_snapshot;
        }
    }
    deployment.compact();
}

/// A GPU is memory-stranded when compute slices are free but the memory
/// slices are exhausted (only the `3g+3g` configuration does this).
fn is_memory_stranded(d: &MigDeployment, gpu: usize) -> bool {
    let g = &d.gpus()[gpu];
    g.gpcs_free() > 0 && g.find_start(InstanceProfile::G1).is_none()
}

/// Pick the 3-GPC segment to split on a stranded GPU: smallest throughput
/// (cheapest to re-cover) among those whose service has small triplets.
fn stranding_victim(
    d: &MigDeployment,
    gpu: usize,
    by_id: &HashMap<u32, &Service>,
) -> Option<PlacedSegment> {
    d.segments_on(gpu)
        .filter(|ps| ps.placement.profile == InstanceProfile::G3)
        .filter(|ps| !by_id[&ps.segment.service_id].small_triplets().is_empty())
        .min_by(|a, b| {
            a.segment
                .throughput_rps
                .total_cmp(&b.segment.throughput_rps)
        })
        .copied()
}

/// The best fill candidate for `gpu`: services with a must-cover deficit
/// first, then the least-provisioned service; within a service, the most
/// GPC-efficient small triplet that fits.
fn choose_fill(
    d: &MigDeployment,
    gpu: usize,
    services: &[Service],
    deficit: &HashMap<u32, f64>,
) -> Option<(Segment, Placement)> {
    // Precompute each candidate's sort keys once (capacity_of is O(fleet)).
    let mut order: Vec<(f64, f64, &Service)> = services
        .iter()
        .filter(|s| !s.small_triplets().is_empty())
        .map(|s| {
            let def = deficit.get(&s.spec.id).copied().unwrap_or(0.0);
            let ratio = s.spec.request_rate_rps / d.capacity_of(s.spec.id).max(RATE_EPS);
            (def, ratio, s)
        })
        .collect();
    // Deficits first (descending), then provisioning ratio (descending
    // rate/capacity = least headroom first), then id for determinism.
    order.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| b.1.total_cmp(&a.1))
            .then_with(|| a.2.spec.id.cmp(&b.2.spec.id))
    });
    for (_, _, svc) in order {
        for seg in svc.small_triplets() {
            if let Some(start) = d.gpus()[gpu].find_start(seg.triplet.instance) {
                return Some((seg, Placement::new(seg.triplet.instance, start)));
            }
        }
    }
    None
}

/// Stage 3 — fill pass: pad every remaining hole with small headroom
/// segments and repair memory-stranded GPUs, producing 0% external
/// fragmentation. Rolled back wholesale if it would grow the fleet.
pub fn fill(deployment: &mut MigDeployment, services: &[Service]) {
    let by_id: HashMap<u32, &Service> = services.iter().map(|s| (s.spec.id, s)).collect();
    let snapshot = deployment.clone();
    // Throughput that *must* be re-covered because a segment was split.
    let mut deficit: HashMap<u32, f64> = HashMap::new();

    for gpu in 0..deployment.gpu_count() {
        loop {
            if deployment.gpus()[gpu].gpcs_free() == 0 {
                break;
            }
            if let Some((seg, placement)) = choose_fill(deployment, gpu, services, &deficit) {
                deployment
                    .place_at(seg, gpu, placement)
                    .expect("find_start pre-validated the placement");
                *deficit.entry(seg.service_id).or_insert(0.0) -= seg.throughput_rps;
            } else if is_memory_stranded(deployment, gpu) {
                let Some(victim) = stranding_victim(deployment, gpu, &by_id) else {
                    break;
                };
                deployment.remove(gpu, victim.placement);
                *deficit.entry(victim.segment.service_id).or_insert(0.0) +=
                    victim.segment.throughput_rps;
            } else {
                break;
            }
        }
    }

    // Cover any residual deficits (possible when a stranded GPU was broken
    // but its own holes could not absorb the coverage).
    let mut queues = SegmentQueues::new();
    for svc in services {
        let mut need = deficit.get(&svc.spec.id).copied().unwrap_or(0.0);
        if need <= RATE_EPS {
            continue;
        }
        for seg in small_segments(svc, need) {
            need -= seg.throughput_rps;
            queues.enqueue(seg);
        }
    }
    allocation(deployment, &mut queues);
    deployment.compact();

    // The fill pass must never cost GPUs; fragmentation padding is best
    // effort.
    if used_gpus(deployment) > used_gpus(&snapshot) {
        *deployment = snapshot;
    }
}

/// The complete Segment Allocator: relocation, then (optionally)
/// optimization and the fill pass.
#[must_use]
pub fn allocate(services: &[Service], config: &AllocatorConfig) -> MigDeployment {
    let mut deployment = relocate(services);
    if config.optimize {
        optimize(&mut deployment, services, config);
    }
    if config.fill {
        fill(&mut deployment, services);
    }
    deployment.compact();
    deployment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configurator::configure;
    use parva_deploy::ServiceSpec;
    use parva_perf::Model;
    use parva_profile::ProfileBook;

    fn book() -> ProfileBook {
        ProfileBook::builtin()
    }

    fn s2_specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    fn capacity_covers_rates(d: &MigDeployment, specs: &[ServiceSpec]) {
        for spec in specs {
            assert!(
                d.capacity_of(spec.id) + 1e-6 >= spec.request_rate_rps,
                "service {} capacity {:.1} < rate {:.1}",
                spec.id,
                d.capacity_of(spec.id),
                spec.request_rate_rps
            );
        }
    }

    #[test]
    fn queues_drain_largest_first() {
        let svcs = configure(&s2_specs(), &book(), 3).unwrap();
        let mut q = SegmentQueues::new();
        for s in &svcs {
            q.enqueue(s.opt_seg);
        }
        let sizes: Vec<u8> = q.drain_descending().map(|s| s.gpcs()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "{sizes:?}");
        }
    }

    #[test]
    fn relocation_places_every_segment() {
        let svcs = configure(&s2_specs(), &book(), 3).unwrap();
        let d = relocate(&svcs);
        let expected: u32 = svcs.iter().map(Service::segment_count).sum();
        assert_eq!(d.segments().len() as u32, expected);
        assert!(d.validate());
        capacity_covers_rates(&d, &s2_specs());
    }

    #[test]
    fn optimization_never_grows_the_fleet() {
        let svcs = configure(&s2_specs(), &book(), 3).unwrap();
        let before = relocate(&svcs);
        let mut after = before.clone();
        optimize(&mut after, &svcs, &AllocatorConfig::default());
        assert!(after.gpu_count() <= before.gpu_count());
        assert!(after.validate());
        capacity_covers_rates(&after, &s2_specs());
    }

    #[test]
    fn full_pipeline_zero_external_fragmentation() {
        let specs = s2_specs();
        let svcs = configure(&specs, &book(), 3).unwrap();
        let d = allocate(&svcs, &AllocatorConfig::default());
        assert!(d.validate());
        capacity_covers_rates(&d, &specs);
        // Paper Fig. 7: full ParvaGPU leaves no unallocated GPCs.
        assert_eq!(
            d.gpcs_allocated(),
            d.gpcs_capacity(),
            "fragmented deployment:\n{}",
            d.gpus()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn unoptimized_uses_at_least_as_many_gpus() {
        let svcs = configure(&s2_specs(), &book(), 3).unwrap();
        let unopt = allocate(
            &svcs,
            &AllocatorConfig {
                optimize: false,
                fill: false,
                ..AllocatorConfig::default()
            },
        );
        let full = allocate(&svcs, &AllocatorConfig::default());
        assert!(full.gpu_count() <= unopt.gpu_count());
    }

    #[test]
    fn single_service_tiny_rate_single_gpu() {
        let specs = vec![ServiceSpec::new(0, Model::MobileNetV2, 50.0, 200.0)];
        let svcs = configure(&specs, &book(), 3).unwrap();
        let d = allocate(&svcs, &AllocatorConfig::default());
        assert_eq!(d.gpu_count(), 1);
        capacity_covers_rates(&d, &specs);
    }

    #[test]
    fn fill_pads_the_single_gpu() {
        let specs = vec![ServiceSpec::new(0, Model::ResNet50, 100.0, 300.0)];
        let svcs = configure(&specs, &book(), 3).unwrap();
        let d = allocate(&svcs, &AllocatorConfig::default());
        assert_eq!(d.gpu_count(), 1);
        assert_eq!(d.gpcs_allocated(), 7, "hole left: {}", d.gpus()[0]);
    }

    #[test]
    fn stranded_3g3g_gets_repaired() {
        // Two services whose optimal segments are 3-GPC would strand slice 3;
        // after the fill pass no GPU may be memory-stranded with free GPCs.
        let specs = s2_specs();
        let svcs = configure(&specs, &book(), 3).unwrap();
        let d = allocate(&svcs, &AllocatorConfig::default());
        for (i, g) in d.gpus().iter().enumerate() {
            assert_eq!(g.gpcs_free(), 0, "GPU {i} has free GPCs: {g}");
        }
    }

    #[test]
    fn deterministic_output() {
        let svcs = configure(&s2_specs(), &book(), 3).unwrap();
        let d1 = allocate(&svcs, &AllocatorConfig::default());
        let d2 = allocate(&svcs, &AllocatorConfig::default());
        assert_eq!(d1, d2);
    }

    #[test]
    fn high_rate_scenario_scales_out() {
        // S6-like high-rate single service: many segments over several GPUs.
        let specs = vec![ServiceSpec::new(0, Model::DenseNet169, 5_260.0, 217.0)];
        let svcs = configure(&specs, &book(), 3).unwrap();
        let d = allocate(&svcs, &AllocatorConfig::default());
        assert!(d.gpu_count() >= 2, "only {} GPUs", d.gpu_count());
        capacity_covers_rates(&d, &specs);
    }

    #[test]
    fn small_segments_cover_requested_rate() {
        let specs = s2_specs();
        let svcs = configure(&specs, &book(), 3).unwrap();
        for svc in &svcs {
            if svc.small_triplets().is_empty() {
                continue;
            }
            let segs = small_segments(svc, 500.0);
            let total: f64 = segs.iter().map(|s| s.throughput_rps).sum();
            assert!(total >= 500.0);
            // Minimality: dropping the last one must under-cover.
            let without_last: f64 = segs[..segs.len() - 1]
                .iter()
                .map(|s| s.throughput_rps)
                .sum();
            assert!(without_last < 500.0);
        }
    }

    #[test]
    fn empty_service_list() {
        let d = allocate(&[], &AllocatorConfig::default());
        assert_eq!(d.gpu_count(), 0);
        assert!(d.validate());
    }
}
