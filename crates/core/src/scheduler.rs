//! The `Scheduler`-trait front-ends: ParvaGPU and its two ablation variants.

use crate::allocator::{allocate, AllocatorConfig};
use crate::configurator::configure;
use crate::service::Service;
use parva_deploy::{
    Capabilities, Deployment, MigDeployment, ScheduleError, Scheduler, ServiceSpec,
};
use parva_profile::ProfileBook;

/// The full ParvaGPU scheduler (paper §III): MIG isolation across services,
/// MPS sharing within a service, two-stage configuration + allocation.
#[derive(Debug, Clone)]
pub struct ParvaGpu {
    book: ProfileBook,
    max_procs: u32,
    allocator: AllocatorConfig,
}

impl ParvaGpu {
    /// Build from a profile book (the Profiler's output).
    #[must_use]
    pub fn new(book: &ProfileBook) -> Self {
        Self {
            book: book.clone(),
            max_procs: 3,
            allocator: AllocatorConfig::default(),
        }
    }

    /// Override the allocator configuration (threshold tuning, ablations).
    #[must_use]
    pub fn with_allocator(mut self, allocator: AllocatorConfig) -> Self {
        self.allocator = allocator;
        self
    }

    /// Override the maximum MPS process count explored per segment.
    #[must_use]
    pub fn with_max_procs(mut self, max_procs: u32) -> Self {
        self.max_procs = max_procs.max(1);
        self
    }

    /// The profile book this scheduler uses.
    #[must_use]
    pub fn book(&self) -> &ProfileBook {
        &self.book
    }

    /// Maximum MPS process count explored.
    #[must_use]
    pub fn max_procs(&self) -> u32 {
        self.max_procs
    }

    /// Allocator configuration.
    #[must_use]
    pub fn allocator_config(&self) -> &AllocatorConfig {
        &self.allocator
    }

    /// Full pipeline, returning both the configured services (with their
    /// optimal-triplet arrays, Table II) and the deployment map.
    ///
    /// # Errors
    /// Propagates Configurator failures ([`ScheduleError`]).
    pub fn plan(
        &self,
        specs: &[ServiceSpec],
    ) -> Result<(Vec<Service>, MigDeployment), ScheduleError> {
        let services = configure(specs, &self.book, self.max_procs)?;
        let deployment = allocate(&services, &self.allocator);
        Ok((services, deployment))
    }
}

impl Scheduler for ParvaGpu {
    fn name(&self) -> &'static str {
        "ParvaGPU"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        self.plan(services).map(|(_, d)| Deployment::Mig(d))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::parvagpu()
    }
}

/// `ParvaGPU-single` (paper §IV-A): MPS disabled — each segment runs exactly
/// one process. Used to quantify the benefit of intra-segment MPS.
#[derive(Debug, Clone)]
pub struct ParvaGpuSingle {
    inner: ParvaGpu,
}

impl ParvaGpuSingle {
    /// Build from a profile book.
    #[must_use]
    pub fn new(book: &ProfileBook) -> Self {
        Self {
            inner: ParvaGpu::new(book).with_max_procs(1),
        }
    }

    /// Full pipeline (see [`ParvaGpu::plan`]).
    ///
    /// # Errors
    /// Propagates Configurator failures.
    pub fn plan(
        &self,
        specs: &[ServiceSpec],
    ) -> Result<(Vec<Service>, MigDeployment), ScheduleError> {
        self.inner.plan(specs)
    }
}

impl Scheduler for ParvaGpuSingle {
    fn name(&self) -> &'static str {
        "ParvaGPU-single"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        self.inner.schedule(services)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mps_support: false,
            ..Capabilities::parvagpu()
        }
    }
}

/// `ParvaGPU-unoptimized` (paper §IV-A): MPS on, but the Allocation
/// Optimization stage (and fill pass) disabled. Used to quantify the
/// external-fragmentation reduction of the optimizer (Fig. 7).
#[derive(Debug, Clone)]
pub struct ParvaGpuUnoptimized {
    inner: ParvaGpu,
}

impl ParvaGpuUnoptimized {
    /// Build from a profile book.
    #[must_use]
    pub fn new(book: &ProfileBook) -> Self {
        Self {
            inner: ParvaGpu::new(book).with_allocator(AllocatorConfig {
                optimize: false,
                fill: false,
                ..AllocatorConfig::default()
            }),
        }
    }

    /// Full pipeline (see [`ParvaGpu::plan`]).
    ///
    /// # Errors
    /// Propagates Configurator failures.
    pub fn plan(
        &self,
        specs: &[ServiceSpec],
    ) -> Result<(Vec<Service>, MigDeployment), ScheduleError> {
        self.inner.plan(specs)
    }
}

impl Scheduler for ParvaGpuUnoptimized {
    fn name(&self) -> &'static str {
        "ParvaGPU-unoptimized"
    }

    fn schedule(&self, services: &[ServiceSpec]) -> Result<Deployment, ScheduleError> {
        self.inner.schedule(services)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            external_fragmentation_prevention: Some(false),
            ..Capabilities::parvagpu()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;

    fn specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    #[test]
    fn parvagpu_schedules_s2() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let d = sched.schedule(&specs()).unwrap();
        assert!(d.validate());
        assert!(d.gpu_count() >= 1);
        for s in specs() {
            assert!(d.capacity_of(s.id) >= s.request_rate_rps);
        }
    }

    #[test]
    fn single_uses_at_least_as_many_gpus() {
        let book = ProfileBook::builtin();
        let full = ParvaGpu::new(&book).schedule(&specs()).unwrap();
        let single = ParvaGpuSingle::new(&book).schedule(&specs()).unwrap();
        assert!(single.gpu_count() >= full.gpu_count());
    }

    #[test]
    fn variant_names_match_paper() {
        let book = ProfileBook::builtin();
        assert_eq!(ParvaGpu::new(&book).name(), "ParvaGPU");
        assert_eq!(ParvaGpuSingle::new(&book).name(), "ParvaGPU-single");
        assert_eq!(
            ParvaGpuUnoptimized::new(&book).name(),
            "ParvaGPU-unoptimized"
        );
    }

    #[test]
    fn capabilities_rows() {
        let book = ProfileBook::builtin();
        assert!(ParvaGpu::new(&book).capabilities().mig_support);
        assert!(!ParvaGpuSingle::new(&book).capabilities().mps_support);
        assert_eq!(
            ParvaGpuUnoptimized::new(&book)
                .capabilities()
                .external_fragmentation_prevention,
            Some(false)
        );
    }

    #[test]
    fn error_propagates() {
        let book = ProfileBook::builtin();
        let bad = vec![ServiceSpec::new(0, Model::BertLarge, 100.0, 1.0)];
        assert!(ParvaGpu::new(&book).schedule(&bad).is_err());
    }
}
