//! The GPU Segment Configurator — paper Algorithm 1.
//!
//! Two steps per service:
//!
//! 1. **Optimal Triplet Decision** (`TRIPLET_DECISION`): for each of the five
//!    MIG instance sizes, find the (batch, procs) point of maximum profiled
//!    throughput whose latency is below the service's *internal* SLO target
//!    (half the client SLO, §IV-A). Result: up to five optimal triplets.
//! 2. **Demand Matching** (`DEMAND_MATCHING`): pick the triplet maximizing
//!    throughput-per-GPC as the *optimal segment* (this minimizes total GPCs
//!    — Eqs. 1–2 in the paper), take `⌊rate / throughput⌋` copies of it, and
//!    cover the remaining rate with the *last segment*: the smallest
//!    instance size whose optimal triplet still covers the remainder.
//!    O(1) per service after step 1.

use crate::service::Service;
use parva_deploy::{ScheduleError, Segment, ServiceSpec};
use parva_profile::{ProfileBook, ProfileTable};

/// Fractional tolerance when deciding whether a remainder rate is zero.
const RATE_EPS: f64 = 1e-9;

/// Planned utilization of provisioned segments: Demand Matching counts a
/// segment as serving 95% of its profiled steady-state throughput, leaving
/// headroom for Poisson burstiness within the SLO/2 queuing budget. Real
/// serving systems never plan for ρ = 1 — without this margin a service
/// whose demand lands exactly on a segment boundary rides ρ ≈ 1 into
/// queueing-driven SLO violations.
pub const TARGET_UTILIZATION: f64 = 0.95;

/// Step 1 — Optimal Triplet Decision for one service: the best operating
/// point per instance size under the internal latency target. Sizes with no
/// feasible point (too slow or OOM) are absent; ascending GPC order.
#[must_use]
pub fn optimal_triplets(spec: &ServiceSpec, table: &ProfileTable, max_procs: u32) -> Vec<Segment> {
    let target = spec.slo.internal_target_ms();
    parva_mig::InstanceProfile::ALL
        .iter()
        .filter_map(|inst| {
            table
                .entries_for_instance(*inst)
                .filter(|e| e.triplet.procs <= max_procs && e.point.latency_ms < target)
                .max_by(|a, b| {
                    a.point
                        .throughput_rps
                        .total_cmp(&b.point.throughput_rps)
                        .then(b.point.memory_gib.total_cmp(&a.point.memory_gib))
                })
                .map(|e| Segment {
                    service_id: spec.id,
                    model: spec.model,
                    triplet: e.triplet,
                    throughput_rps: e.point.throughput_rps,
                    latency_ms: e.point.latency_ms,
                })
        })
        .collect()
}

/// Step 2 — Demand Matching for one service (paper Alg. 1 lines 15–21).
///
/// Returns `(opt_seg, num_opt_seg, last_seg)`.
#[must_use]
pub fn demand_match(
    spec: &ServiceSpec,
    opt_triplets: &[Segment],
) -> Option<(Segment, u32, Option<Segment>)> {
    // OPTSEG: maximize throughput / instance size (Eq. 2's argument).
    let opt = *opt_triplets
        .iter()
        .max_by(|a, b| a.throughput_per_gpc().total_cmp(&b.throughput_per_gpc()))?;

    // num = ⌊ rate / tput ⌋ (Alg. 1 line 18), with tput discounted to the
    // planned utilization.
    let planned = |s: &Segment| s.throughput_rps * TARGET_UTILIZATION;
    let num = (spec.request_rate_rps / planned(&opt)).floor() as u32;

    // GETLEFT_REQRATE (line 19).
    let left = spec.request_rate_rps - f64::from(num) * planned(&opt);

    // LAST_SEG: smallest instance size covering the remainder (line 20).
    let last = if left <= RATE_EPS {
        None
    } else {
        // `opt_triplets` is ascending by GPC, so the first match is smallest.
        // The optimal segment itself always qualifies (left < its planned
        // throughput by construction of the floor), so this cannot fail.
        Some(
            *opt_triplets
                .iter()
                .find(|s| planned(s) >= left)
                .expect("optimal segment covers any remainder below its own throughput"),
        )
    };
    Some((opt, num, last))
}

/// Run the full Configurator for one service.
///
/// `max_procs` caps the MPS process count explored (1 = the paper's
/// `ParvaGPU-single` ablation; 3 = full ParvaGPU).
///
/// # Errors
/// [`ScheduleError::NotProfiled`] when the model has no table,
/// [`ScheduleError::InfeasibleSlo`] when no profiled point meets the target,
/// [`ScheduleError::InvalidService`] on non-positive rate/SLO.
pub fn configure_service(
    spec: &ServiceSpec,
    book: &ProfileBook,
    max_procs: u32,
) -> Result<Service, ScheduleError> {
    if !spec.is_valid() {
        return Err(ScheduleError::InvalidService {
            service_id: spec.id,
        });
    }
    let table = book.table(spec.model).ok_or(ScheduleError::NotProfiled {
        service_id: spec.id,
    })?;
    let opt_triplets = optimal_triplets(spec, table, max_procs);
    let (opt_seg, num_opt_seg, last_seg) =
        demand_match(spec, &opt_triplets).ok_or(ScheduleError::InfeasibleSlo {
            service_id: spec.id,
            internal_target_ms: spec.slo.internal_target_ms(),
        })?;
    Ok(Service {
        spec: *spec,
        opt_triplets,
        opt_seg,
        num_opt_seg,
        last_seg,
    })
}

/// Run the Configurator for a whole service set (paper Alg. 1 top level).
///
/// # Errors
/// Fails fast on the first infeasible service — matching the paper's
/// semantics that a deployment must satisfy *every* SLO.
pub fn configure(
    specs: &[ServiceSpec],
    book: &ProfileBook,
    max_procs: u32,
) -> Result<Vec<Service>, ScheduleError> {
    specs
        .iter()
        .map(|s| configure_service(s, book, max_procs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;

    fn book() -> ProfileBook {
        ProfileBook::builtin()
    }

    #[test]
    fn optimal_triplets_ascending_and_feasible() {
        let spec = ServiceSpec::new(0, Model::InceptionV3, 460.0, 419.0);
        let tri = optimal_triplets(&spec, book().table(spec.model).unwrap(), 3);
        assert!(!tri.is_empty());
        for w in tri.windows(2) {
            assert!(w[0].gpcs() < w[1].gpcs());
        }
        for s in &tri {
            assert!(s.latency_ms < spec.slo.internal_target_ms());
        }
    }

    #[test]
    fn triplet_count_is_five_for_loose_slo() {
        let spec = ServiceSpec::new(0, Model::ResNet50, 800.0, 1_000.0);
        let tri = optimal_triplets(&spec, book().table(spec.model).unwrap(), 3);
        assert_eq!(tri.len(), 5, "all five sizes feasible under a loose SLO");
    }

    #[test]
    fn strict_slo_prunes_small_instances() {
        // BERT with a tight SLO (internal target 40 ms): the 1-GPC instance
        // needs ≥ 47.8 ms even at batch 1, so it must be pruned.
        let spec = ServiceSpec::new(0, Model::BertLarge, 100.0, 80.0);
        let tri = optimal_triplets(&spec, book().table(spec.model).unwrap(), 3);
        assert!(!tri.is_empty());
        assert!(tri.iter().all(|s| s.gpcs() > 1), "{tri:?}");
    }

    #[test]
    fn demand_matching_covers_rate() {
        let spec = ServiceSpec::new(0, Model::ResNet50, 2_196.0, 138.0);
        let svc = configure_service(&spec, &book(), 3).unwrap();
        assert!(
            svc.configured_capacity_rps() >= spec.request_rate_rps,
            "capacity {} < rate {}",
            svc.configured_capacity_rps(),
            spec.request_rate_rps
        );
    }

    #[test]
    fn demand_matching_minimizes_gpcs_locally() {
        // The configured GPC total must not exceed a naive all-optimal
        // cover: ceil(rate/(υ·opt_tput)) × opt_gpcs.
        let spec = ServiceSpec::new(0, Model::DenseNet169, 3_507.0, 84.0);
        let svc = configure_service(&spec, &book(), 3).unwrap();
        let naive = (spec.request_rate_rps / (svc.opt_seg.throughput_rps * TARGET_UTILIZATION))
            .ceil() as u32
            * u32::from(svc.opt_seg.gpcs());
        assert!(svc.configured_gpcs() <= naive);
    }

    #[test]
    fn small_rate_yields_zero_optimal_segments() {
        // Paper: "the floor function in line 18 returns the number of
        // optimal segments as zero" for rates a single segment can serve.
        let spec = ServiceSpec::new(0, Model::BertLarge, 19.0, 6_434.0);
        let svc = configure_service(&spec, &book(), 3).unwrap();
        assert_eq!(svc.num_opt_seg, 0);
        let last = svc.last_seg.expect("one last segment");
        assert!(last.throughput_rps * TARGET_UTILIZATION >= 19.0);
        // And it must be the smallest size that suffices.
        for t in &svc.opt_triplets {
            if t.gpcs() < last.gpcs() {
                assert!(t.throughput_rps * TARGET_UTILIZATION < 19.0);
            }
        }
    }

    #[test]
    fn last_segment_is_smallest_sufficient() {
        let spec = ServiceSpec::new(0, Model::MobileNetV2, 5_009.0, 59.0);
        let svc = configure_service(&spec, &book(), 3).unwrap();
        if let Some(last) = svc.last_seg {
            let left = spec.request_rate_rps
                - f64::from(svc.num_opt_seg) * svc.opt_seg.throughput_rps * TARGET_UTILIZATION;
            assert!(last.throughput_rps * TARGET_UTILIZATION >= left);
            for t in &svc.opt_triplets {
                if t.gpcs() < last.gpcs() {
                    assert!(
                        t.throughput_rps * TARGET_UTILIZATION < left,
                        "smaller size would have sufficed"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_slo_reported() {
        let spec = ServiceSpec::new(9, Model::BertLarge, 10.0, 2.0);
        match configure_service(&spec, &book(), 3) {
            Err(ScheduleError::InfeasibleSlo { service_id, .. }) => assert_eq!(service_id, 9),
            other => panic!("expected InfeasibleSlo, got {other:?}"),
        }
    }

    #[test]
    fn invalid_service_reported() {
        let spec = ServiceSpec::new(2, Model::ResNet50, -5.0, 100.0);
        assert_eq!(
            configure_service(&spec, &book(), 3),
            Err(ScheduleError::InvalidService { service_id: 2 })
        );
    }

    #[test]
    fn unprofiled_model_reported() {
        let book = ProfileBook::measure(
            &[Model::ResNet50],
            &parva_profile::SweepGrid::paper_default(),
        );
        let spec = ServiceSpec::new(4, Model::Vgg19, 100.0, 300.0);
        assert_eq!(
            configure_service(&spec, &book, 3),
            Err(ScheduleError::NotProfiled { service_id: 4 })
        );
    }

    #[test]
    fn single_process_cap_respected() {
        let spec = ServiceSpec::new(0, Model::ResNet50, 800.0, 400.0);
        let svc = configure_service(&spec, &book(), 1).unwrap();
        assert!(svc.opt_triplets.iter().all(|s| s.triplet.procs == 1));
        // MPS off can never beat MPS on in capacity per GPC.
        let svc_mps = configure_service(&spec, &book(), 3).unwrap();
        assert!(svc_mps.opt_seg.throughput_per_gpc() >= svc.opt_seg.throughput_per_gpc() - 1e-9);
    }

    #[test]
    fn exact_division_no_last_segment() {
        // Craft a rate exactly equal to 2 × the optimal segment's *planned*
        // (utilization-discounted) throughput.
        let probe = configure_service(
            &ServiceSpec::new(0, Model::ResNet50, 1_000.0, 200.0),
            &book(),
            3,
        )
        .unwrap();
        let rate = probe.opt_seg.throughput_rps * TARGET_UTILIZATION * 2.0;
        let svc = configure_service(
            &ServiceSpec::new(0, Model::ResNet50, rate, 200.0),
            &book(),
            3,
        )
        .unwrap();
        assert_eq!(svc.num_opt_seg, 2);
        assert!(svc.last_seg.is_none(), "exact cover needs no last segment");
    }

    #[test]
    fn whole_table_iv_scenario2_feasible() {
        // All 11 services of scenario S2 must configure.
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        let specs: Vec<ServiceSpec> = Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect();
        let services = configure(&specs, &book(), 3).unwrap();
        assert_eq!(services.len(), 11);
        for s in &services {
            assert!(s.configured_capacity_rps() >= s.spec.request_rate_rps);
        }
    }
}
