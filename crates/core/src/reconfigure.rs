//! Runtime reconfiguration — paper §III-F.
//!
//! When a service's SLO (or rate) changes, ParvaGPU does **not** reschedule
//! the world: re-profiling is unnecessary, the Configurator is re-run for
//! that one service, its old segments are removed from the deployment map,
//! and a segment relocation + optimization is carried out for the new
//! segments only. Services whose placements did not move require no physical
//! MIG/MPS reconfiguration.

use crate::allocator::{allocation, fill, optimize, AllocatorConfig, SegmentQueues};
use crate::configurator::configure_service;
use crate::scheduler::ParvaGpu;
use crate::service::Service;
use parva_deploy::{MigDeployment, PlacedSegment, ScheduleError, ServiceSpec};

/// The result of a reconfiguration step.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The new deployment map.
    pub deployment: MigDeployment,
    /// The re-configured service (new Table II fields).
    pub service: Service,
    /// GPUs whose MIG layout changed and therefore need physical
    /// reconfiguration (milliseconds-to-seconds of downtime each, bridged by
    /// shadow processes in the paper's deployment model).
    pub reconfigured_gpus: Vec<usize>,
}

/// Service-continuity plan for the reconfiguration window (paper §III-F:
/// "services undergoing reconfiguration can continue operating using shadow
/// processes on spare GPUs").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowPlan {
    /// Services with at least one segment on a reconfiguring GPU — these
    /// need shadow processes for the duration of the switch.
    pub services: Vec<u32>,
    /// GPCs of capacity being torn down simultaneously (worst case: all
    /// changed GPUs reconfigure at once).
    pub shadow_gpcs: u32,
    /// Spare GPUs needed to host that shadow capacity (7 GPCs per GPU).
    pub spare_gpus: u32,
}

impl ReconfigOutcome {
    /// Derive the shadow-process plan from the pre-reconfiguration map.
    #[must_use]
    pub fn shadow_plan(&self, before: &MigDeployment) -> ShadowPlan {
        let mut services: Vec<u32> = Vec::new();
        let mut shadow_gpcs: u32 = 0;
        for &gpu in &self.reconfigured_gpus {
            for ps in before.segments_on(gpu) {
                shadow_gpcs += u32::from(ps.segment.gpcs());
                if !services.contains(&ps.segment.service_id) {
                    services.push(ps.segment.service_id);
                }
            }
        }
        services.sort_unstable();
        ShadowPlan {
            services,
            shadow_gpcs,
            spare_gpus: shadow_gpcs.div_ceil(u32::from(parva_mig::COMPUTE_SLICES)),
        }
    }
}

/// Apply an updated spec for one service to an existing deployment.
///
/// `services` is the current full service set (the entry with the same id
/// as `updated` is replaced). The other services' segments are left in
/// place; only GPUs whose layout actually changed are reported for physical
/// reconfiguration.
///
/// # Errors
/// Propagates Configurator failures for the updated service.
pub fn update_service(
    scheduler: &ParvaGpu,
    deployment: &MigDeployment,
    services: &[Service],
    updated: ServiceSpec,
) -> Result<ReconfigOutcome, ScheduleError> {
    // 1. Re-run the Configurator for the changed service only (§III-F:
    //    "the Segment Configurator reconstructs only the optimal segments
    //    and the last segment for the service").
    let new_service = configure_service(&updated, scheduler.book(), scheduler.max_procs())?;

    // Short-circuit: if the configured segment set is unchanged, the old
    // placements (including any fill-pass padding) remain valid — no
    // physical reconfiguration at all (§III-F: "services whose placement
    // has not changed do not require reconfiguration").
    if let Some(old) = services.iter().find(|s| s.spec.id == updated.id) {
        let same_config = old.opt_seg.triplet == new_service.opt_seg.triplet
            && old.num_opt_seg == new_service.num_opt_seg
            && old.last_seg.map(|s| s.triplet) == new_service.last_seg.map(|s| s.triplet);
        if same_config {
            return Ok(ReconfigOutcome {
                deployment: deployment.clone(),
                service: new_service,
                reconfigured_gpus: Vec::new(),
            });
        }
    }

    // 2. Remove the service's old segments from the map.
    let mut new_deployment = deployment.clone();
    let old: Vec<PlacedSegment> = new_deployment.segments_of(updated.id).copied().collect();
    for ps in &old {
        new_deployment.remove(ps.gpu, ps.placement);
    }

    // 3. Relocate the new segments into the existing map.
    let mut queues = SegmentQueues::new();
    for _ in 0..new_service.num_opt_seg {
        queues.enqueue(new_service.opt_seg);
    }
    if let Some(last) = new_service.last_seg {
        queues.enqueue(last);
    }
    allocation(&mut new_deployment, &mut queues);

    // 4. Optimization + fill over the merged service set.
    let merged: Vec<Service> = services
        .iter()
        .filter(|s| s.spec.id != updated.id)
        .cloned()
        .chain(std::iter::once(new_service.clone()))
        .collect();
    let cfg: &AllocatorConfig = scheduler.allocator_config();
    if cfg.optimize {
        optimize(&mut new_deployment, &merged, cfg);
    }
    if cfg.fill {
        fill(&mut new_deployment, &merged);
    }
    new_deployment.compact();

    // 5. Diff the layouts to find GPUs that need physical reconfiguration.
    let reconfigured_gpus = diff_gpus(deployment, &new_deployment);

    Ok(ReconfigOutcome {
        deployment: new_deployment,
        service: new_service,
        reconfigured_gpus,
    })
}

/// GPUs whose (segment set, placement) differ between two deployments.
fn diff_gpus(before: &MigDeployment, after: &MigDeployment) -> Vec<usize> {
    let n = before.gpu_count().max(after.gpu_count());
    let mut changed = Vec::new();
    for gpu in 0..n {
        let mut b: Vec<(u32, parva_mig::Placement)> = before
            .segments_on(gpu)
            .map(|ps| (ps.segment.service_id, ps.placement))
            .collect();
        let mut a: Vec<(u32, parva_mig::Placement)> = after
            .segments_on(gpu)
            .map(|ps| (ps.segment.service_id, ps.placement))
            .collect();
        b.sort_unstable();
        a.sort_unstable();
        if a != b {
            changed.push(gpu);
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_perf::Model;
    use parva_profile::ProfileBook;

    fn specs() -> Vec<ServiceSpec> {
        let rates = [
            19.0, 353.0, 308.0, 276.0, 460.0, 677.0, 393.0, 281.0, 829.0, 410.0, 354.0,
        ];
        let lats = [
            6_434.0, 183.0, 217.0, 169.0, 419.0, 167.0, 212.0, 213.0, 205.0, 400.0, 397.0,
        ];
        Model::ALL
            .iter()
            .enumerate()
            .map(|(i, m)| ServiceSpec::new(i as u32, *m, rates[i], lats[i]))
            .collect()
    }

    #[test]
    fn slo_update_keeps_all_services_covered() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let (services, deployment) = sched.plan(&specs()).unwrap();

        // Tighten InceptionV3's SLO from 419 ms to 150 ms.
        let updated = ServiceSpec::new(4, Model::InceptionV3, 460.0, 150.0);
        let out = update_service(&sched, &deployment, &services, updated).unwrap();

        assert!(out.deployment.validate());
        for s in specs() {
            let rate = if s.id == 4 {
                updated.request_rate_rps
            } else {
                s.request_rate_rps
            };
            assert!(
                out.deployment.capacity_of(s.id) + 1e-6 >= rate,
                "service {} uncovered after reconfig",
                s.id
            );
        }
        // The new segments respect the new internal target.
        for ps in out.deployment.segments_of(4) {
            assert!(ps.segment.latency_ms < updated.slo.internal_target_ms());
        }
    }

    #[test]
    fn rate_increase_grows_capacity() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let (services, deployment) = sched.plan(&specs()).unwrap();
        let before_cap = deployment.capacity_of(8);

        let updated = ServiceSpec::new(8, Model::ResNet50, 2_000.0, 205.0);
        let out = update_service(&sched, &deployment, &services, updated).unwrap();
        assert!(out.deployment.capacity_of(8) >= 2_000.0);
        assert!(out.deployment.capacity_of(8) > before_cap);
    }

    #[test]
    fn infeasible_update_rejected_without_damage() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let (services, deployment) = sched.plan(&specs()).unwrap();
        let updated = ServiceSpec::new(4, Model::InceptionV3, 460.0, 1.0);
        assert!(update_service(&sched, &deployment, &services, updated).is_err());
        // Original deployment untouched (we only cloned).
        assert!(deployment.validate());
    }

    #[test]
    fn untouched_services_keep_placements_mostly() {
        // A small rate tweak on one service must not reshuffle everything:
        // the diff set should be well below the full fleet.
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let (services, deployment) = sched.plan(&specs()).unwrap();
        let updated = ServiceSpec::new(0, Model::BertLarge, 25.0, 6_434.0);
        let out = update_service(&sched, &deployment, &services, updated).unwrap();
        assert!(
            out.reconfigured_gpus.len() <= deployment.gpu_count(),
            "diff {:?}",
            out.reconfigured_gpus
        );
    }
}
