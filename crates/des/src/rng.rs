//! Seeded random streams for workload generation.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An independent pseudo-random stream, derived deterministically from a
/// master seed and a stream id (so every service's arrival process is
/// reproducible and independent of how many other services exist).
///
/// The generator is xoshiro256++ seeded through splitmix64 — self-contained
/// so the simulation core carries no external dependencies and stays
/// bit-reproducible across toolchains. The four-word state serializes, so a
/// suspended simulation resumes its sample path mid-stream bit-identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngStream {
    state: [u64; 4],
}

/// One splitmix64 step (seeding and stream separation).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStream {
    /// Create stream `stream_id` of master seed `seed`.
    #[must_use]
    pub fn new(seed: u64, stream_id: u64) -> Self {
        // SplitMix64-style mixing so nearby (seed, id) pairs diverge.
        let mut mix = seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        mix = (mix ^ (mix >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mix = (mix ^ (mix >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        mix ^= mix >> 31;
        let mut sm = mix;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential sample with the given rate (events per second), as a
    /// simulation-time delta. Used for Poisson request arrivals.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not strictly positive.
    #[inline]
    pub fn exp_interarrival(&mut self, rate_per_sec: f64) -> SimTime {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        // Inverse-CDF with u in (0,1] to avoid ln(0).
        let u = 1.0 - self.uniform();
        let secs = -u.ln() / rate_per_sec;
        SimTime::from_secs(secs)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Rejection-free multiply-shift; bias is negligible for simulation
        // fan-out sizes (n ≪ 2^32).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = RngStream::new(42, 7);
        let mut b = RngStream::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = RngStream::new(42, 0);
        let mut b = RngStream::new(42, 1);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5, "streams correlated: {same} identical draws");
    }

    #[test]
    fn exp_interarrival_mean_matches_rate() {
        let mut s = RngStream::new(1, 0);
        let rate = 250.0; // req/s
        let n = 50_000;
        let total: f64 = (0..n).map(|_| s.exp_interarrival(rate).as_secs()).sum();
        let mean = total / f64::from(n);
        let expect = 1.0 / rate;
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean interarrival {mean:.6}s vs expected {expect:.6}s"
        );
    }

    #[test]
    fn exp_interarrival_is_positive() {
        let mut s = RngStream::new(9, 9);
        for _ in 0..1000 {
            // SimTime is unsigned; just ensure no zero-flood (rounding can
            // produce an occasional 0µs at very high rates, which is fine,
            // but at 10 req/s all samples should be > 0).
            assert!(s.exp_interarrival(10.0).micros() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        RngStream::new(0, 0).exp_interarrival(0.0);
    }

    #[test]
    fn index_bounds() {
        let mut s = RngStream::new(3, 3);
        for _ in 0..1000 {
            assert!(s.index(7) < 7);
        }
    }
}
