//! Global DES throughput counters.
//!
//! The serving simulator records, once per completed run, how many events
//! its queue processed, the peak pending-event depth, and the time spent
//! inside the event loop — both wall-clock nanoseconds and *per-thread CPU*
//! nanoseconds. Benchmarks (`perf_sweep`) reset these, drive a scenario,
//! and read the aggregate back — the counters never influence simulation
//! behaviour, so instrumented and uninstrumented runs produce identical
//! reports.
//!
//! All counters are process-global atomics: scoped-thread fan-outs (fleet
//! probes, per-region serving) accumulate into the same totals. The wall
//! column over-counts under time-slicing (two loops sharing one core both
//! bill their full span); the CPU column is exact under fan-out because
//! each thread bills only the cycles it actually ran
//! (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`).

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);
static SIMS: AtomicU64 = AtomicU64::new(0);
static PEAK_QUEUE: AtomicU64 = AtomicU64::new(0);
static LOOP_NANOS: AtomicU64 = AtomicU64::new(0);
static LOOP_CPU_NANOS: AtomicU64 = AtomicU64::new(0);

/// Per-thread CPU clock. The only unsafe in the workspace: a direct
/// `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` FFI call (libc is always
/// linked by std on Linux, so no new dependency). Gated to 64-bit Linux —
/// the hand-rolled `Timespec { i64, i64 }` matches the C `timespec` ABI
/// only where `time_t` and `long` are 64-bit; other platforms report zero
/// CPU time and keep the wall column.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod cputime {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// `CLOCK_THREAD_CPUTIME_ID` on Linux.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    /// CPU nanoseconds consumed by the calling thread since it started.
    pub fn thread_cpu_nanos() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable Timespec matching the libc ABI;
        // clock_gettime only writes through the pointer.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        u64::try_from(ts.tv_sec).unwrap_or(0) * 1_000_000_000
            + u64::try_from(ts.tv_nsec).unwrap_or(0)
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
mod cputime {
    /// Unsupported platform: no per-thread CPU clock, callers fall back to
    /// the wall column (a zero delta keeps the CPU counter at zero rather
    /// than lying).
    pub fn thread_cpu_nanos() -> u64 {
        0
    }
}

/// CPU nanoseconds consumed by the calling thread so far (0 where the
/// platform has no per-thread CPU clock). Take a reading before and after
/// a loop and record the difference via [`record_sim`].
#[must_use]
pub fn thread_cpu_nanos() -> u64 {
    cputime::thread_cpu_nanos()
}

/// Record one finished simulation run. `loop_nanos` is the wall-clock span
/// of the event loop; `cpu_nanos` is the calling thread's CPU time over
/// the same span (0 where unsupported).
pub fn record_sim(events: u64, peak_queue: usize, loop_nanos: u64, cpu_nanos: u64) {
    EVENTS.fetch_add(events, Ordering::Relaxed);
    SIMS.fetch_add(1, Ordering::Relaxed);
    PEAK_QUEUE.fetch_max(peak_queue as u64, Ordering::Relaxed);
    LOOP_NANOS.fetch_add(loop_nanos, Ordering::Relaxed);
    LOOP_CPU_NANOS.fetch_add(cpu_nanos, Ordering::Relaxed);
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Total events processed across all recorded runs.
    pub events: u64,
    /// Number of recorded simulation runs.
    pub sims: u64,
    /// Largest pending-event queue depth seen in any run.
    pub peak_queue_depth: u64,
    /// Wall-clock nanoseconds spent inside event loops (summed across
    /// threads, so it can exceed elapsed wall time under parallelism and
    /// over-counts when threads time-slice one core).
    pub loop_nanos: u64,
    /// Per-thread CPU nanoseconds spent inside event loops — exact under
    /// fan-out: each thread bills only cycles it ran. 0 on platforms
    /// without `CLOCK_THREAD_CPUTIME_ID`.
    pub loop_cpu_nanos: u64,
}

impl Snapshot {
    /// Event throughput of the DES loop itself, events per wall second
    /// spent inside the loop (0 when nothing was recorded).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.loop_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.loop_nanos as f64 / 1e9)
        }
    }

    /// Event throughput per CPU second inside the loop — the engine metric
    /// that stays exact under thread fan-out (0 when no CPU time was
    /// recorded, e.g. on platforms without a per-thread CPU clock).
    #[must_use]
    pub fn events_per_cpu_sec(&self) -> f64 {
        if self.loop_cpu_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.loop_cpu_nanos as f64 / 1e9)
        }
    }

    /// The counter activity between `earlier` and `self`, scope-safe for
    /// nested measurements: take a snapshot before a region of work, one
    /// after, and the delta attributes exactly the events/sims/loop time
    /// recorded in between — including everything scoped-thread fan-outs
    /// accumulated — without anyone calling [`reset`] and clobbering an
    /// enclosing measurement.
    ///
    /// `peak_queue_depth` is a high-water mark, not a sum: a maximum cannot
    /// be decomposed into per-interval contributions, so the delta carries
    /// the *later* snapshot's peak (the peak observed up to the end of the
    /// span). Sums saturate at zero if `earlier` is actually newer.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            events: self.events.saturating_sub(earlier.events),
            sims: self.sims.saturating_sub(earlier.sims),
            peak_queue_depth: self.peak_queue_depth,
            loop_nanos: self.loop_nanos.saturating_sub(earlier.loop_nanos),
            loop_cpu_nanos: self.loop_cpu_nanos.saturating_sub(earlier.loop_cpu_nanos),
        }
    }
}

/// Read the current counter values.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        events: EVENTS.load(Ordering::Relaxed),
        sims: SIMS.load(Ordering::Relaxed),
        peak_queue_depth: PEAK_QUEUE.load(Ordering::Relaxed),
        loop_nanos: LOOP_NANOS.load(Ordering::Relaxed),
        loop_cpu_nanos: LOOP_CPU_NANOS.load(Ordering::Relaxed),
    }
}

/// Reset all counters to zero (benchmark harness use).
pub fn reset() {
    EVENTS.store(0, Ordering::Relaxed);
    SIMS.store(0, Ordering::Relaxed);
    PEAK_QUEUE.store(0, Ordering::Relaxed);
    LOOP_NANOS.store(0, Ordering::Relaxed);
    LOOP_CPU_NANOS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counters are process-global; tests that reset them must not
    /// interleave with each other under the parallel test runner.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_and_snapshot_roundtrip() {
        let _guard = LOCK.lock().unwrap();
        reset();
        record_sim(100, 7, 1_000_000, 900_000);
        record_sim(50, 12, 500_000, 400_000);
        let s = snapshot();
        assert_eq!(s.events, 150);
        assert_eq!(s.sims, 2);
        assert_eq!(s.peak_queue_depth, 12);
        assert_eq!(s.loop_nanos, 1_500_000);
        assert_eq!(s.loop_cpu_nanos, 1_300_000);
        assert!((s.events_per_sec() - 1e5).abs() < 1e-6);
        assert!((s.events_per_cpu_sec() - 150.0 / 1.3e-3).abs() < 1e-6);
        reset();
        assert_eq!(snapshot(), Snapshot::default());
        assert_eq!(snapshot().events_per_sec(), 0.0);
        assert_eq!(snapshot().events_per_cpu_sec(), 0.0);
    }

    #[test]
    fn delta_attributes_only_the_enclosed_work() {
        let _guard = LOCK.lock().unwrap();
        reset();
        record_sim(100, 7, 1_000, 900);
        let before = snapshot();
        record_sim(50, 12, 500, 400);
        record_sim(25, 3, 250, 200);
        let d = snapshot().delta(&before);
        assert_eq!(d.events, 75);
        assert_eq!(d.sims, 2);
        assert_eq!(d.loop_nanos, 750);
        assert_eq!(d.loop_cpu_nanos, 600);
        // High-water mark: the delta reports the peak observed so far, not
        // a (meaningless) subtraction of maxima.
        assert_eq!(d.peak_queue_depth, 12);
        // Reversed arguments saturate instead of wrapping.
        let r = before.delta(&snapshot());
        assert_eq!(r.events, 0);
        assert_eq!(r.sims, 0);
        reset();
    }

    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    #[test]
    fn thread_cpu_clock_is_monotone_and_advances_under_work() {
        let before = thread_cpu_nanos();
        // Burn a visible amount of CPU; volatile-ish accumulation keeps
        // the loop from being optimized out.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        assert!(acc != 42, "keep the work observable");
        let after = thread_cpu_nanos();
        assert!(after >= before, "thread CPU clock went backwards");
        assert!(after > 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
        assert!(
            after > before,
            "2M multiply-adds consumed no measurable CPU time"
        );
    }

    #[test]
    fn cpu_time_never_wildly_exceeds_wall_on_one_thread() {
        // A single thread's CPU time over a span cannot exceed the wall
        // span (modulo clock granularity); sanity-check the pairing used
        // by the serving loop.
        let wall = std::time::Instant::now();
        let cpu0 = thread_cpu_nanos();
        let mut acc = 1u64;
        for i in 1..500_000u64 {
            acc = acc.wrapping_mul(i | 1);
        }
        assert!(acc != 0);
        let cpu = thread_cpu_nanos().saturating_sub(cpu0);
        let wall = wall.elapsed().as_nanos() as u64;
        // 5 ms of slack absorbs timer granularity on coarse kernels.
        assert!(
            cpu <= wall + 5_000_000,
            "cpu {cpu} ns exceeds wall {wall} ns"
        );
    }
}
