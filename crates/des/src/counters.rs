//! Global DES throughput counters.
//!
//! The serving simulator records, once per completed run, how many events
//! its queue processed, the peak pending-event depth, and the wall-clock
//! nanoseconds spent inside the event loop. Benchmarks (`perf_sweep`)
//! reset these, drive a scenario, and read the aggregate back — the
//! counters never influence simulation behaviour, so instrumented and
//! uninstrumented runs produce identical reports.
//!
//! All counters are process-global atomics: scoped-thread fan-outs (fleet
//! probes, per-region serving) accumulate into the same totals.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);
static SIMS: AtomicU64 = AtomicU64::new(0);
static PEAK_QUEUE: AtomicU64 = AtomicU64::new(0);
static LOOP_NANOS: AtomicU64 = AtomicU64::new(0);

/// Record one finished simulation run.
pub fn record_sim(events: u64, peak_queue: usize, loop_nanos: u64) {
    EVENTS.fetch_add(events, Ordering::Relaxed);
    SIMS.fetch_add(1, Ordering::Relaxed);
    PEAK_QUEUE.fetch_max(peak_queue as u64, Ordering::Relaxed);
    LOOP_NANOS.fetch_add(loop_nanos, Ordering::Relaxed);
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Total events processed across all recorded runs.
    pub events: u64,
    /// Number of recorded simulation runs.
    pub sims: u64,
    /// Largest pending-event queue depth seen in any run.
    pub peak_queue_depth: u64,
    /// Wall-clock nanoseconds spent inside event loops (summed across
    /// threads, so it can exceed elapsed wall time under parallelism).
    pub loop_nanos: u64,
}

impl Snapshot {
    /// Event throughput of the DES loop itself, events per wall second
    /// spent inside the loop (0 when nothing was recorded).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.loop_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.loop_nanos as f64 / 1e9)
        }
    }
}

/// Read the current counter values.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        events: EVENTS.load(Ordering::Relaxed),
        sims: SIMS.load(Ordering::Relaxed),
        peak_queue_depth: PEAK_QUEUE.load(Ordering::Relaxed),
        loop_nanos: LOOP_NANOS.load(Ordering::Relaxed),
    }
}

/// Reset all counters to zero (benchmark harness use).
pub fn reset() {
    EVENTS.store(0, Ordering::Relaxed);
    SIMS.store(0, Ordering::Relaxed);
    PEAK_QUEUE.store(0, Ordering::Relaxed);
    LOOP_NANOS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_roundtrip() {
        reset();
        record_sim(100, 7, 1_000_000);
        record_sim(50, 12, 500_000);
        let s = snapshot();
        assert_eq!(s.events, 150);
        assert_eq!(s.sims, 2);
        assert_eq!(s.peak_queue_depth, 12);
        assert_eq!(s.loop_nanos, 1_500_000);
        assert!((s.events_per_sec() - 1e5).abs() < 1e-6);
        reset();
        assert_eq!(snapshot(), Snapshot::default());
        assert_eq!(snapshot().events_per_sec(), 0.0);
    }
}
