//! # parva-des — deterministic discrete-event simulation engine
//!
//! The execution substrate that replaces the paper's physical testbed
//! (multiple 8×A100 `p4de.24xlarge` instances). It is a small, generic,
//! fully deterministic discrete-event core:
//!
//! * [`SimTime`] — integer microsecond clock (no floating-point time, so
//!   event ordering is exact and runs are bit-reproducible),
//! * [`EventQueue`] — a binary-heap event queue with a monotone sequence
//!   number as tie-breaker (FIFO among simultaneous events),
//! * [`RngStream`] — independent seeded random streams (Poisson arrivals),
//! * [`SerialResource`] — FIFO resource tokens for jobs contending for
//!   shared hardware (NVML re-flash locks, per-node PCIe links),
//! * [`stats`] — online statistics (Welford mean/variance, log-bucketed
//!   latency histogram with percentile queries).
//!
//! The serving model itself (requests, batching, SLO accounting) lives in
//! `parva-serve`; this crate knows nothing about GPUs.

// `deny`, not `forbid`: the per-thread CPU clock in `counters::cputime` is
// the one sanctioned FFI call (clock_gettime) and carries its own narrowly
// scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod counters;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use queue::EventQueue;
pub use resource::SerialResource;
pub use rng::RngStream;
pub use stats::{LatencyHistogram, Welford};
pub use time::SimTime;
