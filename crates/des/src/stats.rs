//! Online statistics: Welford mean/variance and a log-bucketed latency
//! histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Sample count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Latency histogram with logarithmic buckets from 1 µs to ~71 minutes.
///
/// Memory-bounded (256 buckets, 8 per octave) and O(1) per sample;
/// percentile queries are accurate to the bucket width (~9% relative).
/// Exact min/max are tracked on the side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    min_us: u64,
    max_us: u64,
    sum_us: f64,
}

const BUCKETS: usize = 256;
/// Each bucket is ×2^(1/8) wider than the last (8 buckets per octave).
const BUCKETS_PER_OCTAVE: f64 = 8.0;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            min_us: u64::MAX,
            max_us: 0,
            sum_us: 0.0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        let idx = ((us as f64).log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Record a latency in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.sum_us += us as f64;
    }

    /// Record a latency in milliseconds.
    pub fn record_ms(&mut self, ms: f64) {
        self.record_us((ms * 1000.0).round().max(0.0) as u64);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ms.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64 / 1000.0
        }
    }

    /// Exact maximum in ms.
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_us as f64 / 1000.0
        }
    }

    /// Approximate `q`-quantile (0 < q ≤ 1) in ms, upper bucket edge.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // Upper edge of bucket i.
                let upper_us = 2f64.powf((i as f64 + 1.0) / BUCKETS_PER_OCTAVE);
                return upper_us.min(self.max_us as f64) / 1000.0;
            }
        }
        self.max_ms()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.sum_us += other.sum_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_percentiles_roughly_correct() {
        let mut h = LatencyHistogram::new();
        // 1000 samples uniformly 1..=100 ms.
        for i in 1..=1000u64 {
            h.record_ms((i % 100 + 1) as f64);
        }
        let p50 = h.quantile_ms(0.5);
        assert!((40.0..=70.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!((90.0..=115.0).contains(&p99), "p99 = {p99}");
        assert!(h.max_ms() <= 100.5);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record_ms(10.0);
        h.record_ms(20.0);
        h.record_ms(30.0);
        assert!((h.mean_ms() - 20.0).abs() < 1e-9);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ms(5.0);
        b.record_ms(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ms() - 27.5).abs() < 1e-9);
        assert!(a.max_ms() >= 50.0);
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn bucket_monotonicity() {
        let mut last = 0;
        for us in [1u64, 2, 5, 10, 100, 1_000, 10_000, 1_000_000] {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= last, "{us}µs bucket {b} < {last}");
            last = b;
        }
    }
}
