//! Online statistics: Welford mean/variance and a log-bucketed latency
//! histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Sample count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Latency histogram with logarithmic buckets from 1 µs to ~71 minutes.
///
/// Memory-bounded (256 buckets, 8 per octave) and O(1) per sample;
/// percentile queries are accurate to the bucket width (~9% relative).
/// Exact min/max are tracked on the side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    min_us: u64,
    max_us: u64,
    sum_us: f64,
}

const BUCKETS: usize = 256;
/// Each bucket is ×2^(1/8) wider than the last (8 buckets per octave).
const BUCKETS_PER_OCTAVE: f64 = 8.0;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            min_us: u64::MAX,
            max_us: 0,
            sum_us: 0.0,
        }
    }

    // The raw `floor(log2(us) * 8)` index starts at 8 for the first
    // representable value above 1 µs (integer µs skip the 1–2 µs octave's
    // interior), which would leave buckets 1–7 permanently unreachable and
    // collapse every sub-2 µs sample into bucket 0. Shifting the index down
    // by 7 keeps the array contiguous: bucket 0 is `us <= 1`, bucket 1
    // starts at 2 µs, and the top bucket still covers ~71 minutes.
    const INDEX_SHIFT: usize = 7;

    /// The reference index computation, kept as the oracle the threshold
    /// table is built from (and tested against): `floor(log2(us) * 8)`,
    /// evaluated in f64 exactly as the original hot path did.
    fn raw_bucket_f64(us: u64) -> usize {
        debug_assert!(us >= 2);
        ((us as f64).log2() * BUCKETS_PER_OCTAVE).floor() as usize
    }

    /// Per-octave sub-bucket thresholds: `thresholds[e][k]` is the
    /// smallest `us` with exponent `e` (i.e. `us.ilog2() == e`) whose raw
    /// index is `8e + k + 1`. Built once by binary-searching the f64
    /// oracle inside each octave, so table lookups reproduce the f64
    /// arithmetic bit-exactly — including its rounding behaviour at
    /// bucket edges — while costing integer compares instead of a `log2`
    /// call per recorded sample.
    fn thresholds() -> &'static [[u64; 7]; 64] {
        static TABLE: std::sync::OnceLock<[[u64; 7]; 64]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut table = [[u64::MAX; 7]; 64];
            // Octave 0 only contains us == 1, which bucket_of short-
            // circuits before consulting the table.
            for (e, row) in table.iter_mut().enumerate().skip(1) {
                let lo = 1u64 << e;
                let hi = if e == 63 {
                    u64::MAX
                } else {
                    (1u64 << (e + 1)) - 1
                };
                for (k, slot) in row.iter_mut().enumerate() {
                    // Smallest us in [lo, hi] with raw index >= 8e + k + 1
                    // (log2 is monotone, so its f64 image is monotone and
                    // the predicate is binary-searchable).
                    let want = 8 * e + k + 1;
                    let (mut a, mut b) = (lo.max(2), hi);
                    if Self::raw_bucket_f64(b) < want {
                        continue; // unreachable sub-bucket (top octave)
                    }
                    while a < b {
                        let mid = a + (b - a) / 2;
                        if Self::raw_bucket_f64(mid) >= want {
                            b = mid;
                        } else {
                            a = mid + 1;
                        }
                    }
                    *slot = a;
                }
            }
            table
        })
    }

    #[inline]
    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        let e = us.ilog2() as usize;
        let row = &Self::thresholds()[e];
        let mut k = 0usize;
        for &t in row {
            k += usize::from(us >= t);
        }
        let raw = 8 * e + k;
        (raw - Self::INDEX_SHIFT).min(BUCKETS - 1)
    }

    /// Upper edge of bucket `i`, microseconds.
    fn bucket_upper_us(i: usize) -> f64 {
        if i == 0 {
            1.0
        } else {
            2f64.powf((i + Self::INDEX_SHIFT + 1) as f64 / BUCKETS_PER_OCTAVE)
        }
    }

    /// Record a latency in microseconds.
    #[inline]
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.sum_us += us as f64;
    }

    /// Record a latency in milliseconds.
    #[inline]
    pub fn record_ms(&mut self, ms: f64) {
        self.record_us((ms * 1000.0).round().max(0.0) as u64);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ms.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64 / 1000.0
        }
    }

    /// Exact maximum in ms.
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_us as f64 / 1000.0
        }
    }

    /// Exact minimum in ms (0 when empty).
    #[must_use]
    pub fn min_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us as f64 / 1000.0
        }
    }

    /// Approximate `q`-quantile (0 < q ≤ 1) in ms: the upper edge of the
    /// target bucket, clamped into the exact observed `[min, max]` range so
    /// a quantile can never fall below the smallest recorded sample.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_upper_us(i)
                    .min(self.max_us as f64)
                    .max(self.min_us as f64)
                    / 1000.0;
            }
        }
        self.max_ms()
    }

    /// Width of one merge chunk: 8 × u64 = one 512-bit register row (or
    /// two 256-bit AVX2 rows). 256 buckets divide evenly into 32 chunks.
    const MERGE_LANES: usize = 8;

    /// Merge another histogram into this one.
    ///
    /// The bucket add is a chunked fixed-width loop: both arrays are cut
    /// into 8-lane rows with `chunks_exact`, and each row is added with a
    /// constant-trip inner loop over fixed-size slices. The shape gives
    /// LLVM provably equal, remainder-free lengths and in-bounds lane
    /// indices, so the row add compiles to wide vector adds instead of 256
    /// scalar load/add/store triples. Wrapping/order semantics are those of
    /// the naive element loop (u64 adds commute), verified by the
    /// `chunked_merge_matches_naive` test below.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.buckets.len() % Self::MERGE_LANES, 0);
        for (row, add) in self
            .buckets
            .chunks_exact_mut(Self::MERGE_LANES)
            .zip(other.buckets.chunks_exact(Self::MERGE_LANES))
        {
            // Fixed-size views: the trip count is a compile-time constant.
            let row: &mut [u64; Self::MERGE_LANES] = row.try_into().expect("exact chunk");
            let add: &[u64; Self::MERGE_LANES] = add.try_into().expect("exact chunk");
            for lane in 0..Self::MERGE_LANES {
                row[lane] += add[lane];
            }
        }
        self.count += other.count;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.sum_us += other.sum_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn histogram_percentiles_roughly_correct() {
        let mut h = LatencyHistogram::new();
        // 1000 samples uniformly 1..=100 ms.
        for i in 1..=1000u64 {
            h.record_ms((i % 100 + 1) as f64);
        }
        let p50 = h.quantile_ms(0.5);
        assert!((40.0..=70.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!((90.0..=115.0).contains(&p99), "p99 = {p99}");
        assert!(h.max_ms() <= 100.5);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record_ms(10.0);
        h.record_ms(20.0);
        h.record_ms(30.0);
        assert!((h.mean_ms() - 20.0).abs() < 1e-9);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ms(5.0);
        b.record_ms(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ms() - 27.5).abs() < 1e-9);
        assert!(a.max_ms() >= 50.0);
    }

    #[test]
    fn chunked_merge_matches_naive() {
        // The chunked fixed-width merge against the naive element loop it
        // replaced, over many seeded histogram pairs spanning every octave
        // (including empty sides and saturated tails).
        let mut rng = crate::RngStream::new(0xC0FFEE, 1);
        for case in 0..200u64 {
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            let n_a = (case % 17) * 23;
            let n_b = (case % 13) * 31;
            let span = 1usize << (case % 33);
            for _ in 0..n_a {
                a.record_us((rng.index(span) as u64).max(1));
            }
            for _ in 0..n_b {
                b.record_us((rng.index(span) as u64).max(1));
            }
            // Naive oracle.
            let mut naive_buckets = a.buckets.clone();
            for (x, y) in naive_buckets.iter_mut().zip(&b.buckets) {
                *x += y;
            }
            let naive_count = a.count + b.count;
            let naive_min = a.min_us.min(b.min_us);
            let naive_max = a.max_us.max(b.max_us);
            let naive_sum = a.sum_us + b.sum_us;
            a.merge(&b);
            assert_eq!(a.buckets, naive_buckets, "case {case}");
            assert_eq!(a.count, naive_count, "case {case}");
            assert_eq!(a.min_us, naive_min, "case {case}");
            assert_eq!(a.max_us, naive_max, "case {case}");
            assert!((a.sum_us - naive_sum).abs() < 1e-9, "case {case}");
        }
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn bucket_monotonicity() {
        let mut last = 0;
        for us in [1u64, 2, 5, 10, 100, 1_000, 10_000, 1_000_000] {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= last, "{us}µs bucket {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn buckets_are_contiguous_from_zero() {
        // 2 µs must land in bucket 1 (adjacent to the ≤1 µs bucket), not
        // jump to bucket 8 leaving 1–7 permanently empty.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        // The old mapping jumped straight from bucket 0 to bucket 8;
        // adjacent integer microsecond values now advance by at most the
        // sub-octave resolution (no 7-bucket dead zone).
        for us in 1..1_000u64 {
            let step =
                LatencyHistogram::bucket_of(us + 1).saturating_sub(LatencyHistogram::bucket_of(us));
            assert!(step <= 4, "{us}→{} jumps {step} buckets", us + 1);
        }
        // And each bucket's samples sit below its upper edge.
        for us in 1..10_000u64 {
            let b = LatencyHistogram::bucket_of(us);
            assert!(
                (us as f64) <= LatencyHistogram::bucket_upper_us(b),
                "{us}µs above bucket {b}'s upper edge"
            );
        }
    }

    #[test]
    fn quantile_never_below_recorded_minimum() {
        let mut h = LatencyHistogram::new();
        h.record_ms(9.7);
        h.record_ms(9.9);
        h.record_ms(10.2);
        assert!((h.min_ms() - 9.7).abs() < 1e-9);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!(
                v >= h.min_ms() && v <= h.max_ms(),
                "q{q}: {v} outside [{}, {}]",
                h.min_ms(),
                h.max_ms()
            );
        }
    }

    #[test]
    fn sub_two_microsecond_samples_are_distinguished() {
        let mut h = LatencyHistogram::new();
        h.record_us(1);
        h.record_us(2);
        h.record_us(3);
        // 1 µs and 2 µs land in different buckets now.
        assert_ne!(
            LatencyHistogram::bucket_of(1),
            LatencyHistogram::bucket_of(2)
        );
        assert_eq!(h.count(), 3);
        assert!((h.min_ms() - 0.001).abs() < 1e-12);
        // The p100 is clamped to the exact max.
        assert!((h.quantile_ms(1.0) - 0.003).abs() < 1e-9);
    }

    #[test]
    fn empty_min_is_zero() {
        assert_eq!(LatencyHistogram::new().min_ms(), 0.0);
    }

    #[test]
    fn threshold_table_matches_f64_oracle_exhaustively() {
        // The integer fast path must reproduce the f64 `floor(log2 * 8)`
        // arithmetic bit-exactly. Exhaust the latency range that serving
        // sims actually record (0 .. 2^24 µs ≈ 16.8 s) ...
        for us in 0..(1u64 << 24) {
            let want = if us <= 1 {
                0
            } else {
                (LatencyHistogram::raw_bucket_f64(us) - LatencyHistogram::INDEX_SHIFT)
                    .min(BUCKETS - 1)
            };
            assert_eq!(LatencyHistogram::bucket_of(us), want, "us = {us}");
        }
        // ... and probe every table threshold's edge pair across the full
        // 64-octave range (including the saturating top buckets).
        for e in 1..64usize {
            for &t in &LatencyHistogram::thresholds()[e] {
                if t == u64::MAX {
                    continue;
                }
                for us in [t - 1, t, t + 1] {
                    let want = (LatencyHistogram::raw_bucket_f64(us)
                        - LatencyHistogram::INDEX_SHIFT)
                        .min(BUCKETS - 1);
                    assert_eq!(LatencyHistogram::bucket_of(us), want, "us = {us}");
                }
            }
        }
    }
}
