//! The event queue: a time-ordered heap with deterministic tie-breaking.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event wrapper ordered by (time, insertion sequence).
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A discrete-event queue. Events scheduled for the same instant pop in
/// insertion order, making simulations deterministic.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue that can hold `n` pending events without
    /// reallocating — size it to the expected steady-state event
    /// population (e.g. one in-flight arrival per source plus in-service
    /// batches) so the heap never grows mid-run.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            peak: 0,
        }
    }

    /// Reserve room for `additional` more pending events — call before a
    /// schedule burst (e.g. booking a whole recovery timeline) to pay for
    /// growth once instead of amortizing it inside the loop.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Largest number of events that were pending at once.
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak
    }

    /// Current simulation time (time of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, scheduling into the past panics — it would violate
    /// causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Schedule `event` after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event time without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

// ---- checkpointing ----
//
// The vendored serde derive rejects generic types, so the queue snapshots
// itself by hand. A `BinaryHeap`'s internal layout depends on insertion
// history, which a snapshot must not capture: pending entries are emitted
// sorted by the queue's own (time, sequence) order — the canonical form —
// and rebuilding by pushing them in that order restores identical pop
// behavior regardless of how the original heap was arranged.

impl<E: serde::Serialize> serde::Serialize for EventQueue<E> {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<&Entry<E>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        serde::Value::Map(vec![
            ("now".into(), serde::Value::UInt(self.now.micros())),
            ("seq".into(), serde::Value::UInt(self.seq)),
            ("processed".into(), serde::Value::UInt(self.processed)),
            ("peak".into(), serde::Value::UInt(self.peak as u64)),
            (
                "entries".into(),
                serde::Value::Seq(
                    entries
                        .iter()
                        .map(|e| {
                            serde::Value::Seq(vec![
                                serde::Value::UInt(e.at.micros()),
                                serde::Value::UInt(e.seq),
                                e.event.to_value(),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl<E: serde::Deserialize> serde::Deserialize for EventQueue<E> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("EventQueue: expected map"))?;
        let field = |name: &str| {
            serde::find_field(map, name)
                .ok_or_else(|| serde::Error::custom(format!("EventQueue: missing field {name}")))
        };
        let mut q = EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime(u64::from_value(field("now")?)?),
            seq: u64::from_value(field("seq")?)?,
            processed: u64::from_value(field("processed")?)?,
            peak: usize::from_value(field("peak")?)?,
        };
        let entries = field("entries")?
            .as_seq()
            .ok_or_else(|| serde::Error::custom("EventQueue: entries must be a sequence"))?;
        q.heap.reserve(entries.len());
        for e in entries {
            let parts = e.as_seq().filter(|s| s.len() == 3).ok_or_else(|| {
                serde::Error::custom("EventQueue: entry must be [at, seq, event]")
            })?;
            q.heap.push(Reverse(Entry {
                at: SimTime(u64::from_value(&parts[0])?),
                seq: u64::from_value(&parts[1])?,
                event: E::from_value(&parts[2])?,
            }));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5.0), "c");
        q.schedule(SimTime::from_ms(1.0), "a");
        q.schedule(SimTime::from_ms(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(1.0), ());
        q.schedule(SimTime::from_ms(2.0), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_ms(2.0));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), 1);
        q.pop();
        q.schedule_in(SimTime::from_ms(5.0), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(15.0)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), ());
        q.pop();
        q.schedule(SimTime::from_ms(1.0), ());
    }

    #[test]
    fn fifo_tie_breaking_survives_preallocation() {
        // The capacity path must not disturb (time, insertion) ordering:
        // schedule bursts of simultaneous events across a reserve() call
        // and require exact FIFO pop order among equal timestamps.
        let mut q = EventQueue::with_capacity(8);
        let t1 = SimTime::from_ms(4.0);
        let t0 = SimTime::from_ms(2.0);
        for i in 0..40 {
            q.schedule(t1, ("late", i));
        }
        q.reserve(100);
        for i in 0..60 {
            q.schedule(t1, ("late", 40 + i));
        }
        q.schedule(t0, ("early", 0));
        assert_eq!(q.pop(), Some((t0, ("early", 0))));
        for want in 0..100 {
            let (at, (tag, i)) = q.pop().expect("event");
            assert_eq!((at, tag, i), (t1, "late", want));
        }
        assert!(q.pop().is_none());
        assert_eq!(q.peak_pending(), 101);
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        use serde::{Deserialize as _, Serialize as _};
        let mut q: EventQueue<u64> = EventQueue::new();
        q.schedule(SimTime::from_ms(3.0), 30);
        q.schedule(SimTime::from_ms(1.0), 10);
        q.schedule(SimTime::from_ms(1.0), 11);
        q.pop(); // advance the clock so `now` is non-zero in the snapshot
        q.schedule(SimTime::from_ms(2.0), 20);
        let mut restored = EventQueue::<u64>::from_value(&q.to_value()).unwrap();
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.processed(), q.processed());
        assert_eq!(restored.peak_pending(), q.peak_pending());
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
        // Post-restore scheduling continues the same sequence numbering:
        // snapshots taken after the drain must also agree.
        q.schedule_in(SimTime::from_ms(1.0), 99);
        restored.schedule_in(SimTime::from_ms(1.0), 99);
        assert_eq!(q.to_value(), restored.to_value());
    }

    #[test]
    fn snapshot_rejects_malformed_trees() {
        use serde::Deserialize as _;
        let bad = serde::Value::Seq(vec![]);
        assert!(EventQueue::<u64>::from_value(&bad).is_err());
        let missing = serde::Value::Map(vec![("now".into(), serde::Value::UInt(0))]);
        assert!(EventQueue::<u64>::from_value(&missing).is_err());
    }

    #[test]
    fn interleaved_scheduling() {
        // Events scheduled while draining still order correctly.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(1.0), 1u32);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e < 4 {
                q.schedule(t + SimTime::from_ms(1.0), e + 1);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
