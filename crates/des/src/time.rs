//! Integer simulation time.

use serde::{Deserialize, Serialize};

/// Simulation time in whole microseconds since simulation start.
///
/// Integer time makes event ordering exact and simulations bit-reproducible
/// across platforms (no floating-point accumulation drift).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds (rounded to the nearest microsecond).
    #[must_use]
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0 && ms.is_finite(), "invalid duration: {ms}");
        SimTime((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from seconds.
    #[must_use]
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_ms(s * 1_000.0)
    }

    /// Microsecond count.
    #[must_use]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    #[must_use]
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    #[must_use]
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    #[must_use]
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_ms(12.345);
        assert_eq!(t.micros(), 12_345);
        assert!((t.as_ms() - 12.345).abs() < 1e-9);
        assert_eq!(SimTime::from_secs(1.5).micros(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(3.0);
        assert_eq!((a + b).micros(), 13_000);
        assert_eq!(a.since(b).micros(), 7_000);
        assert_eq!(b.since(a).micros(), 0, "saturating");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(1.001));
        assert_eq!(SimTime::ZERO, SimTime::from_ms(0.0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(2.5).to_string(), "2.500ms");
    }
}
