//! Resource tokens for simulator jobs that contend for shared hardware.
//!
//! The serving DES needs a way to model recovery work — MIG re-flashes and
//! weight-copy transfers — competing for physical resources that grant one
//! job at a time: the NVML driver serializes re-flashes on a node, and a
//! node's PCIe link carries one host-to-device copy stream at full
//! bandwidth. [`SerialResource`] is that token: jobs acquire it in request
//! order (FIFO), each holding it for its service duration, and the acquire
//! call returns the completion time. Because grants are computed from
//! integer [`SimTime`] arithmetic only, schedules are bit-reproducible.

use crate::time::SimTime;

/// A serially shared resource: one job at a time, FIFO among requesters.
///
/// `acquire(now, duration)` books the next free span of the resource at or
/// after `now` and returns `(start, completion)`. Requests made earlier
/// (in call order) are served earlier, matching an event-driven FIFO queue
/// without materializing one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialResource {
    free_at: SimTime,
    jobs: u64,
}

impl SerialResource {
    /// A resource that is free from time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Book the resource for `duration` starting no earlier than `now`.
    /// Returns `(start, completion)` of the granted span.
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let done = start + duration;
        self.free_at = done;
        self.jobs += 1;
        (start, done)
    }

    /// Time at which the resource next becomes free.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of jobs granted so far.
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Is the resource idle at `now` (no booked span extends past it)?
    #[must_use]
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_fifo_and_back_to_back() {
        let mut r = SerialResource::new();
        let (s1, d1) = r.acquire(SimTime::from_ms(0.0), SimTime::from_ms(10.0));
        let (s2, d2) = r.acquire(SimTime::from_ms(0.0), SimTime::from_ms(5.0));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(d1, SimTime::from_ms(10.0));
        assert_eq!(s2, d1, "second job queues behind the first");
        assert_eq!(d2, SimTime::from_ms(15.0));
        assert_eq!(r.jobs(), 2);
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = SerialResource::new();
        r.acquire(SimTime::ZERO, SimTime::from_ms(1.0));
        let (start, done) = r.acquire(SimTime::from_ms(50.0), SimTime::from_ms(2.0));
        assert_eq!(start, SimTime::from_ms(50.0));
        assert_eq!(done, SimTime::from_ms(52.0));
        assert!(r.idle_at(SimTime::from_ms(52.0)));
        assert!(!r.idle_at(SimTime::from_ms(51.0)));
    }

    #[test]
    fn total_makespan_is_sum_of_contended_jobs() {
        let mut r = SerialResource::new();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let (_, done) = r.acquire(SimTime::ZERO, SimTime::from_ms(3.0));
            last = done;
        }
        assert_eq!(last, SimTime::from_ms(30.0));
    }
}
