//! A calendar (timing-wheel) event queue for allocation-free hot loops.
//!
//! [`CalendarQueue`] is the specialized sibling of the generic
//! [`crate::EventQueue`]: events are packed into single `u128` keys —
//! `time (48 bits) | insertion seq (32 bits) | payload (48 bits)` — and
//! bucketed by time into a rolling wheel of slots, giving O(1) schedule
//! and near-O(1) pop with entries that are one register wide. Ordering is
//! the full `u128` comparison, whose `(time, seq)` prefix is the exact
//! `(time, insertion order)` total order of [`crate::EventQueue`] (the
//! payload bits can never influence ordering because `seq` is unique), so
//! the two queues pop any identical schedule in the identical sequence —
//! property-tested in this module.
//!
//! Slots are `Vec<u128>` buckets reused across wheel wraps: after warm-up
//! the queue performs no allocation in steady state. Events beyond the
//! wheel horizon wait in a small overflow heap and are folded into slots
//! as the horizon rolls forward.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of wheel slots (must be a power of two).
const SLOTS: usize = 1024;
/// log2 of the slot width: each slot spans 1024 us (~1 ms).
const SLOT_SHIFT: u32 = 10;

const TIME_BITS: u32 = 48;
const SEQ_BITS: u32 = 32;
const PAYLOAD_BITS: u32 = 48;
const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;

/// A time-ordered queue of `u128`-packed events with FIFO tie-breaking.
///
/// Payloads are caller-defined 48-bit values (an event tag plus small
/// indices); times are capped at 2⁴⁸ µs (~8.9 simulated years) and one
/// queue instance supports 2³² scheduled events — both far beyond any
/// serving window, and debug-asserted.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Rolling buckets; slot `s` holds events whose `at >> SLOT_SHIFT`
    /// is congruent to `s` and within the current horizon.
    slots: Vec<Vec<u128>>,
    /// Events of the current slot, sorted descending (pop takes the back).
    active: Vec<u128>,
    /// Events beyond the wheel horizon, min-first.
    overflow: BinaryHeap<Reverse<u128>>,
    /// Slot index (absolute, not wrapped) the active bucket belongs to.
    cur_slot: u64,
    /// Events currently stored in `slots` (not `active`, not `overflow`).
    in_slots: usize,
    now: SimTime,
    seq: u64,
    processed: u64,
    peak: usize,
    pending: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: vec![Vec::new(); SLOTS],
            active: Vec::new(),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            in_slots: 0,
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            peak: 0,
            pending: 0,
        }
    }

    /// An empty queue whose active bucket can hold `n` events without
    /// reallocating.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut q = Self::new();
        q.active.reserve(n);
        q
    }

    /// Current simulation time (time of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Largest number of events that were pending at once.
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak
    }

    #[inline]
    fn pack(at: SimTime, seq: u64, payload: u64) -> u128 {
        (u128::from(at.micros()) << (SEQ_BITS + PAYLOAD_BITS))
            | (u128::from(seq) << PAYLOAD_BITS)
            | u128::from(payload)
    }

    #[inline]
    fn unpack(key: u128) -> (SimTime, u64) {
        (
            SimTime((key >> (SEQ_BITS + PAYLOAD_BITS)) as u64),
            key as u64 & PAYLOAD_MASK,
        )
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds: scheduling into the past, a payload above 48 bits,
    /// a time above 2⁴⁸ µs, or more than 2³² schedules on one queue.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: u64) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        debug_assert!(payload <= PAYLOAD_MASK, "payload exceeds 48 bits");
        debug_assert!(at.micros() < 1 << TIME_BITS, "time exceeds 48 bits");
        debug_assert!(self.seq < u64::from(u32::MAX), "seq exceeds 32 bits");
        let key = Self::pack(at, self.seq, payload);
        self.seq += 1;
        self.pending += 1;
        self.peak = self.peak.max(self.pending);
        let slot = at.micros() >> SLOT_SHIFT;
        if slot == self.cur_slot {
            // Into the live bucket: sorted (descending) insert.
            let pos = self.active.partition_point(|&k| k > key);
            self.active.insert(pos, key);
        } else if slot < self.cur_slot + SLOTS as u64 {
            self.slots[(slot as usize) & (SLOTS - 1)].push(key);
            self.in_slots += 1;
        } else {
            self.overflow.push(Reverse(key));
        }
    }

    /// Schedule `payload` after `delay` from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, payload: u64) {
        self.schedule(self.now + delay, payload);
    }

    /// Advance the wheel until `active` holds the next bucket's events.
    #[cold]
    fn advance(&mut self) {
        debug_assert!(self.active.is_empty());
        loop {
            if self.in_slots == 0 {
                // Nothing on the wheel: jump the horizon to the first
                // overflow event (or give up — pop() handles empty).
                let Some(&Reverse(min)) = self.overflow.peek() else {
                    return;
                };
                let (at, _) = Self::unpack(min);
                let target = at.micros() >> SLOT_SHIFT;
                self.cur_slot = self.cur_slot.max((target + 1).saturating_sub(SLOTS as u64));
            }
            self.cur_slot += 1;
            // Overflow events entering the horizon land on the wheel.
            while let Some(&Reverse(key)) = self.overflow.peek() {
                let (at, _) = Self::unpack(key);
                let slot = at.micros() >> SLOT_SHIFT;
                if slot >= self.cur_slot + SLOTS as u64 {
                    break;
                }
                self.overflow.pop();
                self.slots[(slot as usize) & (SLOTS - 1)].push(key);
                self.in_slots += 1;
            }
            let idx = (self.cur_slot as usize) & (SLOTS - 1);
            if !self.slots[idx].is_empty() {
                // `active` is empty but keeps its capacity; the swap hands
                // that storage to the vacated slot for reuse next wrap.
                std::mem::swap(&mut self.active, &mut self.slots[idx]);
                self.in_slots -= self.active.len();
                self.active.sort_unstable_by(|a, b| b.cmp(a));
                return;
            }
        }
    }

    /// Pop the next event, advancing the clock to its timestamp. Returns
    /// `(time, payload)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64)> {
        if self.active.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.advance();
        }
        let key = self.active.pop()?;
        let (at, payload) = Self::unpack(key);
        self.now = at;
        self.processed += 1;
        self.pending -= 1;
        Some((at, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_ms(5.0), 2);
        q.schedule(SimTime::from_ms(1.0), 0);
        q.schedule(SimTime::from_ms(1.0), 1);
        q.schedule(SimTime::from_ms(3.0), 9);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![0, 1, 9, 2]);
        assert_eq!(q.processed(), 4);
        assert!(q.is_empty());
    }

    #[test]
    fn same_slot_insertion_keeps_order() {
        // Events scheduled into the live bucket while draining it.
        let mut q = CalendarQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(500), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // Both targets are inside the current (first) slot.
        q.schedule(SimTime(100), 3);
        q.schedule(SimTime(100), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = CalendarQueue::new();
        // Way beyond the wheel horizon (1024 slots x ~1 ms ~= 1 s).
        q.schedule(SimTime::from_secs(30.0), 7);
        q.schedule(SimTime::from_ms(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        let (at, p) = q.pop().unwrap();
        assert_eq!((at, p), (SimTime::from_secs(30.0), 7));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_secs(30.0));
    }

    #[test]
    fn pending_and_peak_track() {
        let mut q = CalendarQueue::with_capacity(64);
        for i in 0..50 {
            q.schedule(SimTime(i * 2000), i);
        }
        assert_eq!(q.pending(), 50);
        assert_eq!(q.peak_pending(), 50);
        while q.pop().is_some() {}
        assert_eq!(q.pending(), 0);
        assert_eq!(q.peak_pending(), 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The load-bearing property: for ANY schedule, the calendar queue
        /// pops the exact sequence the reference heap queue pops — time
        /// order with FIFO tie-breaking, interleaved scheduling included.
        /// Deltas span sub-slot, multi-slot and beyond-horizon distances.
        #[test]
        fn matches_reference_queue_on_random_schedules(
            ops in prop::collection::vec((0u64..3_000_000, 0u64..1000), 1..400),
            drains in prop::collection::vec(1usize..20, 0..50),
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap: EventQueue<u64> = EventQueue::new();
            let mut ops = ops.into_iter();
            // Interleave bursts of schedules with bursts of pops.
            for drain in drains.iter().chain(std::iter::repeat(&usize::MAX)) {
                let mut scheduled = false;
                for (dt, payload) in ops.by_ref().take(8) {
                    let at = cal.now() + SimTime(dt);
                    cal.schedule(at, payload);
                    heap.schedule(at, payload);
                    scheduled = true;
                }
                let mut drained = 0usize;
                loop {
                    if drained >= *drain {
                        break;
                    }
                    drained += 1;
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(cal.now(), heap.now());
                    if a.is_none() {
                        break;
                    }
                }
                if !scheduled && cal.is_empty() {
                    prop_assert!(heap.is_empty());
                    break;
                }
            }
            prop_assert_eq!(cal.processed(), heap.processed());
        }
    }
}
