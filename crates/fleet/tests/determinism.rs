//! Regression: `run_chaos` is a pure function of `(book, specs, spec,
//! config)` — the same seed must yield a byte-identical serialized
//! [`FleetReport`] across repeated runs, across fleet-spec round-trips,
//! and (via the CI release-mode invocation of this same test) across
//! `--release` and debug builds: the arithmetic must not depend on
//! optimization level.

use parva_fleet::{demo_services, run_chaos, FleetConfig, FleetSpec};
use parva_profile::ProfileBook;
use parva_serve::ServingConfig;

fn config(seed: u64) -> FleetConfig {
    FleetConfig {
        seed,
        intervals: 5,
        serving: ServingConfig {
            warmup_s: 0.3,
            duration_s: 1.5,
            drain_s: 0.7,
            ..ServingConfig::default()
        },
        max_replacements_per_event: 4,
        des_recovery: true,
        ..FleetConfig::default()
    }
}

#[test]
fn same_seed_serializes_byte_identically() {
    let book = ProfileBook::builtin();
    let spec = FleetSpec::mixed_demo(2);
    let services = demo_services();
    let a = run_chaos(&book, &services, &spec, &config(1717)).unwrap();
    let b = run_chaos(&book, &services, &spec, &config(1717)).unwrap();
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(ja, jb, "two runs of the same seed diverged");
    // Structural equality too (catches non-serialized fields drifting).
    assert_eq!(a, b);
    // And a different seed must not collide (sanity that the comparison
    // is not vacuous).
    let c = run_chaos(&book, &services, &spec, &config(1718)).unwrap();
    assert_ne!(ja, serde_json::to_string(&c).unwrap());
}

#[test]
fn spec_roundtrip_preserves_the_trace() {
    // Serializing the FleetSpec through JSON and provisioning from the
    // round-tripped copy must reproduce the identical chaos trace — the
    // spec carries everything the run depends on.
    let book = ProfileBook::builtin();
    let spec = FleetSpec::mixed_demo(2);
    let spec2: FleetSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    let services = demo_services();
    let a = run_chaos(&book, &services, &spec, &config(4242)).unwrap();
    let b = run_chaos(&book, &services, &spec2, &config(4242)).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn report_floats_are_finite_and_canonical() {
    // A report must never carry NaN/∞ (which would serialize
    // non-deterministically or break JSON round-trips), and the JSON must
    // round-trip to an equal report.
    let book = ProfileBook::builtin();
    let report = run_chaos(
        &book,
        &demo_services(),
        &FleetSpec::mixed_demo(2),
        &config(7),
    )
    .unwrap();
    for e in &report.events {
        assert!(e.compliance_before.is_finite());
        assert!(e.compliance_during.is_finite());
        assert!(e.compliance_measured.is_finite());
        assert!(e.compliance_after.is_finite());
        assert!(e.compliance_after_batch.is_finite());
        assert!(e.usd_per_hour.is_finite());
        assert!(e.migration.recovery_latency_ms.is_finite());
        assert!(e.migration.weight_copy_gib.is_finite());
        assert!(e.simulated_recovery_ms.is_finite());
        assert!(e.precopied_gib.is_finite());
    }
    let parsed: parva_fleet::FleetReport =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(parsed, report);
}
