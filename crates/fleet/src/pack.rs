//! Node-level repacking and mixed-pricing cost of the recovered fleet.
//!
//! After every recovery the orchestrator re-derives the node-granularity
//! view the paper's cost argument lives at (§I, §IV-B1): which nodes are in
//! service, their GPU/vCPU occupancy (via `parva_cluster`'s `PackedNode`
//! building blocks and per-process vCPU accounting), what the surviving
//! mixed-pricing fleet costs per hour, and what an idealized homogeneous
//! re-pack ([`parva_cluster::pack`]) of the same logical deployment would
//! rent — the consolidation headroom left on the table.

use crate::node::Fleet;
use crate::placer::FleetPlacement;
use parva_cluster::{pack, NodeType, PackedNode, VCPUS_PER_PROCESS};
use parva_deploy::{Deployment, MigDeployment};
use serde::{Deserialize, Serialize};

/// One in-service node's occupancy after a recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUsage {
    /// The node id.
    pub node: usize,
    /// Occupancy in `parva_cluster` terms (logical GPU indices + vCPUs).
    pub packed: PackedNode,
    /// Hourly price under the node's own pricing plan, USD.
    pub usd_per_hour: f64,
}

/// The node-granularity view of a placed deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPacking {
    /// In-service nodes, id order.
    pub nodes: Vec<NodeUsage>,
    /// GPUs rented on in-service nodes but hosting nothing.
    pub idle_gpus: usize,
    /// Total hourly cost of the in-service nodes, USD (mixed pricing).
    pub usd_per_hour: f64,
    /// Node count an idealized homogeneous re-pack of the same logical
    /// deployment onto p4de nodes would need (consolidation reference).
    pub homogeneous_repack_nodes: usize,
}

impl FleetPacking {
    /// Derive the node view of `(deployment, placement)` on `fleet`, at
    /// the reference region's prices.
    #[must_use]
    pub fn derive(deployment: &MigDeployment, placement: &FleetPlacement, fleet: &Fleet) -> Self {
        Self::derive_in_region(deployment, placement, fleet, 1.0)
    }

    /// Like [`FleetPacking::derive`], with every node hour priced through
    /// the hosting region's price index (see
    /// [`parva_cluster::PricingPlan::node_usd_per_hour_in_region`]).
    #[must_use]
    pub fn derive_in_region(
        deployment: &MigDeployment,
        placement: &FleetPlacement,
        fleet: &Fleet,
        region_multiplier: f64,
    ) -> Self {
        Self::derive_priced(deployment, placement, fleet, region_multiplier, None)
    }

    /// Like [`FleetPacking::derive_in_region`], with an optional spot-market
    /// discount override: when `Some`, spot-priced node hours rent at
    /// `on-demand × discount` instead of the built-in spot multiplier (see
    /// [`parva_cluster::PricingPlan::node_usd_per_hour_in_region_with`]).
    /// `None` reproduces the legacy prices bit-exactly.
    #[must_use]
    pub fn derive_priced(
        deployment: &MigDeployment,
        placement: &FleetPlacement,
        fleet: &Fleet,
        region_multiplier: f64,
        spot_discount: Option<f64>,
    ) -> Self {
        let mut nodes: Vec<NodeUsage> = Vec::new();
        for id in placement.nodes_in_service() {
            let gpu_indices: Vec<usize> = placement
                .slots
                .iter()
                .filter(|(_, s)| s.node == id)
                .map(|(logical, _)| *logical)
                .collect();
            let vcpus_used: u32 = gpu_indices
                .iter()
                .flat_map(|&logical| deployment.segments_on(logical))
                .map(|ps| ps.segment.triplet.procs)
                .sum::<u32>()
                * VCPUS_PER_PROCESS;
            let node = fleet.node(id);
            nodes.push(NodeUsage {
                node: id,
                packed: PackedNode {
                    gpu_indices,
                    vcpus_used,
                },
                usd_per_hour: node.pricing.node_usd_per_hour_in_region_with(
                    node.node,
                    region_multiplier,
                    spot_discount,
                ),
            });
        }
        let rented: usize = nodes
            .iter()
            .map(|n| usize::from(fleet.node(n.node).node.gpus))
            .sum();
        let used: usize = nodes.iter().map(|n| n.packed.gpu_indices.len()).sum();
        let usd_per_hour = nodes.iter().map(|n| n.usd_per_hour).sum();
        let homogeneous_repack_nodes = pack(
            &Deployment::Mig(deployment.clone()),
            NodeType::P4DE_24XLARGE,
        )
        .node_count();
        Self {
            nodes,
            idle_gpus: rented - used,
            usd_per_hour,
            homogeneous_repack_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FleetSpec;
    use crate::placer::place_on_fleet;
    use parva_deploy::Segment;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    #[test]
    fn packing_accounts_vcpus_and_dollars() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let mut d = MigDeployment::new();
        for i in 0..3 {
            d.place_first_fit(Segment {
                service_id: i,
                model: Model::ResNet50,
                triplet: Triplet::new(InstanceProfile::G7, 8, 3),
                throughput_rps: 1000.0,
                latency_ms: 10.0,
            });
        }
        let p = place_on_fleet(&d, &fleet).unwrap();
        let packing = FleetPacking::derive(&d, &p, &fleet);
        let total_gpus: usize = packing
            .nodes
            .iter()
            .map(|n| n.packed.gpu_indices.len())
            .sum();
        assert_eq!(total_gpus, 3);
        let total_vcpus: u32 = packing.nodes.iter().map(|n| n.packed.vcpus_used).sum();
        assert_eq!(total_vcpus, 3 * 3 * VCPUS_PER_PROCESS);
        assert!(packing.usd_per_hour > 0.0);
        assert_eq!(packing.homogeneous_repack_nodes, 1);
        // Mixed pricing: the reserved p4de hour is cheaper than on-demand.
        for n in &packing.nodes {
            let node = fleet.node(n.node);
            assert!(n.usd_per_hour <= node.node.on_demand_usd_per_hour + 1e-9);
        }
    }

    #[test]
    fn spot_discount_reprices_only_spot_nodes() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let mut d = MigDeployment::new();
        for i in 0..8 {
            d.place_first_fit(Segment {
                service_id: i,
                model: Model::ResNet50,
                triplet: Triplet::new(InstanceProfile::G7, 8, 3),
                throughput_rps: 1000.0,
                latency_ms: 10.0,
            });
        }
        let p = place_on_fleet(&d, &fleet).unwrap();
        let base = FleetPacking::derive(&d, &p, &fleet);
        let none = FleetPacking::derive_priced(&d, &p, &fleet, 1.0, None);
        assert_eq!(base, none, "None discount must reproduce legacy prices");
        let deep = FleetPacking::derive_priced(&d, &p, &fleet, 1.0, Some(0.1));
        for (a, b) in base.nodes.iter().zip(&deep.nodes) {
            let node = fleet.node(a.node);
            if matches!(node.pricing, parva_cluster::PricingPlan::Spot) {
                assert!(b.usd_per_hour < a.usd_per_hour);
            } else {
                assert_eq!(a.usd_per_hour, b.usd_per_hour);
            }
        }
    }
}
