//! The living node inventory: heterogeneous pools, spot/on-demand pricing,
//! node lifecycle (alive / failed / preempted / granted).

use parva_cluster::{NodeType, PricingPlan};
use parva_mig::GpuModel;
use serde::{Deserialize, Serialize};

/// A homogeneous slice of the fleet: one cloud instance type bought under
/// one pricing plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodePool {
    /// Pool label, e.g. `"p4de-ondemand"`.
    pub name: String,
    /// The instance type (GPU model, GPU count, vCPUs, on-demand price).
    pub node: NodeType,
    /// How the pool's nodes are paid for.
    pub pricing: PricingPlan,
    /// Spot pools can be preempted by the provider.
    pub preemptible: bool,
    /// Nodes initially provisioned.
    pub count: usize,
    /// Cloud region hosting the pool (`None` for single-region fleets).
    /// Multi-region federations tag every pool so placements, reports and
    /// pricing can be attributed to a region.
    #[serde(default)]
    pub region: Option<String>,
}

/// The fleet composition: a list of pools.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Pools in provisioning order.
    pub pools: Vec<NodePool>,
}

/// An H100 80 GB node modelled after p5.48xlarge (8 GPUs, 192 vCPUs).
#[must_use]
pub fn h100_node() -> NodeType {
    NodeType {
        name: "p5.48xlarge",
        gpus: 8,
        gpu_model: GpuModel::H100_80GB,
        vcpus: 192,
        host_memory_gib: 2_048,
        on_demand_usd_per_hour: 98.32,
    }
}

/// An H200 141 GB node modelled after p5e.48xlarge.
#[must_use]
pub fn h200_node() -> NodeType {
    NodeType {
        name: "p5e.48xlarge",
        gpus: 8,
        gpu_model: GpuModel::H200_141GB,
        vcpus: 192,
        host_memory_gib: 2_048,
        on_demand_usd_per_hour: 118.40,
    }
}

/// A B200 192 GB node modelled after p6-b200.48xlarge.
#[must_use]
pub fn b200_node() -> NodeType {
    NodeType {
        name: "p6-b200.48xlarge",
        gpus: 8,
        gpu_model: GpuModel::B200_192GB,
        vcpus: 192,
        host_memory_gib: 2_048,
        on_demand_usd_per_hour: 142.26,
    }
}

impl FleetSpec {
    /// The demo composition used by the chaos harness: reserved A100-80GB
    /// base capacity, an on-demand A100-40GB tier, and a preemptible H100
    /// spot tier — ≥ 2 GPU models, mixed pricing, spot exposure.
    #[must_use]
    pub fn mixed_demo(base_nodes: usize) -> Self {
        Self {
            pools: vec![
                NodePool {
                    name: "p4de-reserved".into(),
                    node: NodeType::P4DE_24XLARGE,
                    pricing: PricingPlan::Reserved1Yr,
                    preemptible: false,
                    count: base_nodes.max(1),
                    region: None,
                },
                NodePool {
                    name: "p4d-ondemand".into(),
                    node: NodeType::P4D_24XLARGE,
                    pricing: PricingPlan::OnDemand,
                    preemptible: false,
                    count: 1,
                    region: None,
                },
                NodePool {
                    name: "h100-spot".into(),
                    node: h100_node(),
                    pricing: PricingPlan::Spot,
                    preemptible: true,
                    count: 1,
                    region: None,
                },
            ],
        }
    }

    /// Total GPUs across all pools.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.pools
            .iter()
            .map(|p| p.count * usize::from(p.node.gpus))
            .sum()
    }

    /// A copy of the spec with every pool tagged as belonging to `region`
    /// (how a federation stamps its per-region fleets).
    #[must_use]
    pub fn in_region(&self, region: &str) -> Self {
        Self {
            pools: self
                .pools
                .iter()
                .map(|p| NodePool {
                    region: Some(region.to_string()),
                    ..p.clone()
                })
                .collect(),
        }
    }
}

/// One provisioned node and its lifecycle state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetNode {
    /// Stable node id (never reused).
    pub id: usize,
    /// Index of the pool this node came from.
    pub pool: usize,
    /// The instance type.
    pub node: NodeType,
    /// Pricing plan it is billed under.
    pub pricing: PricingPlan,
    /// Whether the provider may preempt it.
    pub preemptible: bool,
    /// Whether the node is currently serving.
    pub alive: bool,
}

/// One physical GPU slot on an alive node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuSlot {
    /// Hosting node id.
    pub node: usize,
    /// GPU index within the node.
    pub slot: u8,
}

/// The live node inventory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    nodes: Vec<FleetNode>,
    pools: Vec<NodePool>,
}

impl Fleet {
    /// Provision a fleet from a spec.
    #[must_use]
    pub fn provision(spec: &FleetSpec) -> Self {
        let mut nodes = Vec::new();
        for (pi, pool) in spec.pools.iter().enumerate() {
            for _ in 0..pool.count {
                nodes.push(FleetNode {
                    id: nodes.len(),
                    pool: pi,
                    node: pool.node,
                    pricing: pool.pricing,
                    preemptible: pool.preemptible,
                    alive: true,
                });
            }
        }
        Self {
            nodes,
            pools: spec.pools.clone(),
        }
    }

    /// All nodes, dead and alive, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// The pool definitions.
    #[must_use]
    pub fn pools(&self) -> &[NodePool] {
        &self.pools
    }

    /// One node by id.
    #[must_use]
    pub fn node(&self, id: usize) -> &FleetNode {
        &self.nodes[id]
    }

    /// Ids of currently alive nodes.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of alive preemptible (spot) nodes.
    #[must_use]
    pub fn alive_spot_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.alive && n.preemptible)
            .map(|n| n.id)
            .collect()
    }

    /// Every GPU slot on alive nodes, node-major.
    #[must_use]
    pub fn alive_slots(&self) -> Vec<GpuSlot> {
        let mut out = Vec::new();
        for n in &self.nodes {
            if n.alive {
                for slot in 0..n.node.gpus {
                    out.push(GpuSlot { node: n.id, slot });
                }
            }
        }
        out
    }

    /// GPU model installed in a slot's node.
    #[must_use]
    pub fn slot_model(&self, slot: GpuSlot) -> GpuModel {
        self.nodes[slot.node].node.gpu_model
    }

    /// Kill a node (failure or preemption). Returns `false` if it was
    /// already dead.
    pub fn kill(&mut self, id: usize) -> bool {
        let node = &mut self.nodes[id];
        let was_alive = node.alive;
        node.alive = false;
        was_alive
    }

    /// Grant `count` fresh nodes from pool `pool` (a scale-up). Returns the
    /// new node ids.
    pub fn grant(&mut self, pool: usize, count: usize) -> Vec<usize> {
        let template = self.pools[pool].clone();
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = self.nodes.len();
            self.nodes.push(FleetNode {
                id,
                pool,
                node: template.node,
                pricing: template.pricing,
                preemptible: template.preemptible,
                alive: true,
            });
            ids.push(id);
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_counts_and_heterogeneity() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        assert_eq!(fleet.nodes().len(), 4);
        assert_eq!(fleet.alive_slots().len(), 32);
        let models: std::collections::BTreeSet<&str> = fleet
            .nodes()
            .iter()
            .map(|n| n.node.gpu_model.name)
            .collect();
        assert!(
            models.len() >= 2,
            "demo fleet must be heterogeneous: {models:?}"
        );
        assert_eq!(fleet.alive_spot_nodes().len(), 1);
    }

    #[test]
    fn kill_and_grant_lifecycle() {
        let mut fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let spot = fleet.alive_spot_nodes()[0];
        assert!(fleet.kill(spot));
        assert!(!fleet.kill(spot));
        assert!(!fleet.node(spot).alive);
        let before_slots = fleet.alive_slots().len();
        let granted = fleet.grant(0, 2);
        assert_eq!(granted.len(), 2);
        assert_eq!(fleet.alive_slots().len(), before_slots + 16);
        // Ids are stable and never reused.
        assert_eq!(granted[0], 3);
    }

    #[test]
    fn slot_model_follows_node() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let slots = fleet.alive_slots();
        let models: Vec<&str> = slots.iter().map(|s| fleet.slot_model(*s).name).collect();
        assert!(models.contains(&"A100-80GB"));
        assert!(models.contains(&"A100-40GB"));
        assert!(models.contains(&"H100-80GB"));
    }
}
