//! Deterministic content-hashed memoization of serving simulations.
//!
//! The chaos loop's compliance probes repeatedly simulate *identical*
//! steady states: the "after" probe of interval `n` and the "before" probe
//! of interval `n+1` run the same `(deployment, specs, serving config)`
//! triple, and a displacement window's control run duplicates the before
//! probe. Since [`parva_serve::simulate`] is a pure deterministic function
//! of its inputs, each unique state needs simulating exactly once per
//! report.
//!
//! Keys are 128-bit FNV-1a hashes streamed over the `Debug` rendering of
//! the inputs (derived `Debug` covers every field, and the rendering is
//! deterministic), so the cache itself cannot perturb results: a hit
//! returns a clone of a report the engine really produced for those
//! inputs, and a collision across distinct states is vanishingly unlikely
//! (~n²/2¹²⁸).

use parva_serve::ServingReport;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide cache telemetry: `(hits, misses)` across every
/// [`SimCache`] instance since the last [`reset_global_stats`]. Benchmark
/// harness use; the values never influence behaviour.
#[must_use]
pub fn global_stats() -> (u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
    )
}

/// Zero the process-wide cache telemetry.
pub fn reset_global_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
}

/// 128-bit FNV-1a over streamed `fmt` output — hashing without
/// materializing the (potentially large) debug string.
struct FnvWriter(u128);

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl FnvWriter {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// Hash the `Debug` rendering of a simulation input tuple into a cache
/// key. `tag` namespaces probe kinds (plain serving vs. recovery-carrying
/// sims) so equal-looking payloads of different kinds cannot alias.
#[must_use]
pub fn content_key(tag: &str, parts: &[&dyn std::fmt::Debug]) -> u128 {
    let mut w = FnvWriter::new();
    let _ = w.write_str(tag);
    for p in parts {
        let _ = write!(w, "\u{1f}{p:?}");
    }
    w.0
}

/// Entries retained before the oldest insertion is evicted. The probe
/// pattern only ever re-reads the *previous* interval's reports (the
/// "after" state of interval `n` is the "before" state of `n + 1`), so a
/// small FIFO window captures every available hit while keeping a
/// long chaos trace's memory flat.
const MAX_ENTRIES: usize = 64;

/// A memo table from content keys to finished serving reports, bounded
/// by FIFO eviction at [`MAX_ENTRIES`].
///
/// Interior-mutable (`Mutex`) so shared-reference probe fan-outs can
/// consult it; lock hold times are just a map lookup or insert. Eviction
/// follows deterministic insertion order, so cache contents — and
/// therefore hit patterns — are identical across runs.
#[derive(Debug, Default)]
pub struct SimCache {
    map: Mutex<(HashMap<u128, ServingReport>, VecDeque<u128>)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`, counting the outcome.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<ServingReport> {
        let found = self
            .map
            .lock()
            .expect("sim cache poisoned")
            .0
            .get(&key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store the report computed for `key`, evicting the oldest entry
    /// once the FIFO window is full.
    pub fn insert(&self, key: u128, report: ServingReport) {
        let (map, order) = &mut *self.map.lock().expect("sim cache poisoned");
        if map.insert(key, report).is_none() {
            order.push_back(key);
            if order.len() > MAX_ENTRIES {
                if let Some(oldest) = order.pop_front() {
                    map.remove(&oldest);
                }
            }
        }
    }

    /// Memoized simulation: return the cached report for `key` or run
    /// `sim` once and remember its result.
    pub fn get_or_simulate(&self, key: u128, sim: impl FnOnce() -> ServingReport) -> ServingReport {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let report = sim();
        self.insert(key, report.clone());
        report
    }

    /// `(hits, misses)` of this cache instance.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ServingReport {
        ServingReport {
            duration_s: 1.0,
            services: vec![],
            servers: vec![],
            classes: vec![],
            recovery: None,
            tenants: vec![],
        }
    }

    #[test]
    fn keys_separate_by_tag_and_content() {
        let a = content_key("plain", &[&1u32, &"x"]);
        let b = content_key("plain", &[&1u32, &"y"]);
        let c = content_key("recovery", &[&1u32, &"x"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Field-boundary separator: ("ab", "c") must differ from ("a", "bc").
        let d = content_key("t", &[&"ab", &"c"]);
        let e = content_key("t", &[&"a", &"bc"]);
        assert_ne!(d, e);
        // And the key is a pure function of its inputs.
        assert_eq!(a, content_key("plain", &[&1u32, &"x"]));
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = SimCache::new();
        for i in 0..(MAX_ENTRIES as u64 + 8) {
            cache.insert(content_key("k", &[&i]), empty_report());
        }
        // The 8 oldest entries were evicted, the newest survive.
        for i in 0..8u64 {
            assert!(cache.get(content_key("k", &[&i])).is_none(), "{i}");
        }
        for i in 8..(MAX_ENTRIES as u64 + 8) {
            assert!(cache.get(content_key("k", &[&i])).is_some(), "{i}");
        }
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = SimCache::new();
        let key = content_key("plain", &[&42u64]);
        let mut runs = 0;
        for _ in 0..3 {
            let r = cache.get_or_simulate(key, || {
                runs += 1;
                empty_report()
            });
            assert_eq!(r.duration_s, 1.0);
        }
        assert_eq!(runs, 1, "simulation must run exactly once");
        assert_eq!(cache.stats(), (2, 1));
    }
}
