//! The event-driven fleet control loop: inject, recover, serve, account.
//!
//! Where `parva-autoscale` reschedules on a fixed epoch clock, this loop
//! reacts to *events*: node failures, spot preemptions, scale-up grants and
//! load shifts. Each event triggers a recovery built from the paper's own
//! machinery:
//!
//! 1. **Displacement** — segments on lost hardware are identified and the
//!    disruption window is quantified with
//!    [`parva_autoscale::simulate_displacement_window`] (control, blackout
//!    and §III-F shadow-bridged compliance).
//! 2. **Incremental rescheduling** — displaced segments re-enter the
//!    Segment Allocator's queues ([`parva_core::allocator`]) and the
//!    relocation / optimization / fill passes run over the surviving map —
//!    the §III-F path, not a world reschedule; load shifts instead go
//!    through [`parva_core::reconfigure::update_service`] per service.
//! 3. **Live migration** — the logical map is re-anchored to physical
//!    slots sticky-first ([`crate::placer::place_sticky`]), and the
//!    physical diff is priced as a [`MigrationPlan`].
//! 4. **Re-pack + serve** — the surviving nodes are re-packed
//!    ([`crate::pack::FleetPacking`]) and the recovered deployment serves
//!    the next interval in the DES simulator to prove compliance returned.

use crate::event::{next_event_with, ChaosProfile, FleetEvent};
use crate::migration::MigrationPlan;
use crate::node::{Fleet, FleetSpec};
use crate::pack::FleetPacking;
use crate::placer::{place_sticky, translate_placement, FleetPlacement, PlacementError};
use crate::report::{EventOutcome, FleetReport};
use crate::simcache::{content_key, SimCache};
use parva_autoscale::displacement_window;
use parva_cluster::{BillingReport, BillingRow};
use parva_core::allocator::{allocation, fill, optimize, SegmentQueues};
use parva_core::{reconfigure, ParvaGpu, Service};
use parva_deploy::{tenant_of, Deployment, MigDeployment, ScheduleError, ServiceSpec, Tenant};
use parva_des::RngStream;
use parva_obs::{Recorder, Row, SelfProfiler, TraceEvent, TraceSink, PID_FLEET};
use parva_profile::ProfileBook;
use parva_serve::{RecoverySpec, ResilienceSpec, ServingConfig, ServingReport, Simulation};
use std::collections::BTreeMap;

/// Default per-recovery replacement-node budget (see
/// [`FleetConfig::max_replacements_per_event`]).
pub const DEFAULT_MAX_REPLACEMENTS: usize = 4;

/// Chaos-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed: drives the event stream and every serving window.
    pub seed: u64,
    /// Number of disturbed intervals (events injected), after the baseline.
    pub intervals: usize,
    /// Serving-window shape for each interval.
    pub serving: ServingConfig,
    /// When the surviving fleet cannot host the deployment, provision up to
    /// this many replacement nodes per recovery (what a cloud control plane
    /// does when a node dies) before giving up. `0` disables replacement.
    pub max_replacements_per_event: usize,
    /// Run each recovery through the serving DES (weight copies on
    /// contended PCIe links, per-node serialized MIG re-flashes, control
    /// plane) so the disruption dip and recovery latency are *measured*
    /// against live traffic. `false` falls back to the analytic blackout
    /// numbers only.
    pub des_recovery: bool,
    /// The run's tenants: service specs bind to these by id
    /// ([`ServiceSpec::tenant`]). Empty (the default) disables all tenant
    /// machinery and is bit-identical to the pre-tenant orchestrator.
    pub tenants: Vec<Tenant>,
    /// The chaos event mix. [`ChaosProfile::default`] replays the
    /// historical stream bit-exactly.
    pub chaos: ChaosProfile,
    /// Spot-market discount override: when `Some`, spot node hours rent at
    /// `on-demand × discount` instead of the built-in multiplier. `None`
    /// keeps legacy prices bit-exactly.
    pub spot_discount: Option<f64>,
    /// Frontend resilience policy threaded into every serving probe
    /// (timeouts, budgeted retries, hedging, shedding, health-checked
    /// routing). `None` (the default) is bit-identical to the
    /// pre-resilience orchestrator.
    pub resilience: Option<ResilienceSpec>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            intervals: 8,
            serving: ServingConfig {
                warmup_s: 0.5,
                duration_s: 3.0,
                drain_s: 1.0,
                ..ServingConfig::default()
            },
            max_replacements_per_event: DEFAULT_MAX_REPLACEMENTS,
            des_recovery: true,
            tenants: Vec::new(),
            chaos: ChaosProfile::default(),
            spot_discount: None,
            resilience: None,
        }
    }
}

/// Accounting of one recovery step driven through the exported hooks
/// ([`FleetOrchestrator::retarget`],
/// [`FleetOrchestrator::apply_capacity_event`]) — what a higher-level
/// control plane (e.g. a multi-region federation) needs to price the
/// disruption without running serving windows of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Segments whose capacity was lost at the instant of the event.
    pub displaced_segments: usize,
    /// Logical GPUs whose layout changed through the §III-F path.
    pub reconfigured_gpus: usize,
    /// Replacement nodes provisioned to host the recovered plan.
    pub replacement_nodes: usize,
    /// The physical migration the recovery required.
    pub migration: MigrationPlan,
}

/// Why a chaos run aborted.
#[derive(Debug)]
pub enum FleetError {
    /// The initial plan failed (infeasible service set).
    Schedule(ScheduleError),
    /// Recovery could not host the deployment on the surviving fleet.
    Placement {
        /// Interval at which capacity ran out.
        interval: usize,
        /// The underlying assignment failure.
        source: PlacementError,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Schedule(e) => write!(f, "initial schedule failed: {e}"),
            Self::Placement { interval, source } => {
                write!(f, "fleet exhausted at interval {interval}: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ScheduleError> for FleetError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

/// One compliance probe of an event window: a pure serving simulation
/// whose result is memoized by content key (see [`crate::simcache`]).
enum ProbeJob<'a> {
    /// Plain serving run of a deployment against a spec set, under the
    /// run's tenants (empty = tenant machinery inert) and resilience
    /// policy (`None` = inert).
    Plain(
        &'a MigDeployment,
        &'a [ServiceSpec],
        &'a [Tenant],
        Option<&'a ResilienceSpec>,
    ),
    /// Serving run with the recovery spec riding the event queue.
    Recovery(
        &'a MigDeployment,
        &'a [ServiceSpec],
        &'a RecoverySpec,
        &'a [Tenant],
        Option<&'a ResilienceSpec>,
    ),
}

impl ProbeJob<'_> {
    /// Content key: the simulation output is a pure function of the
    /// debug-rendered tuple hashed here.
    fn key(&self, serving: &ServingConfig) -> u128 {
        match self {
            Self::Plain(d, specs, tenants, res) => {
                content_key("plain", &[d, specs, tenants, res, &serving])
            }
            Self::Recovery(d, specs, spec, tenants, res) => {
                content_key("recovery", &[d, specs, spec, tenants, res, &serving])
            }
        }
    }

    /// Run the simulation this probe describes.
    fn run(&self, serving: &ServingConfig) -> ServingReport {
        match self {
            Self::Plain(d, specs, tenants, res) => {
                Simulation::new(&Deployment::Mig((*d).clone()), specs)
                    .tenants(tenants)
                    .resilience_opt(*res)
                    .config(serving)
                    .run()
            }
            Self::Recovery(d, specs, spec, tenants, res) => {
                Simulation::new(&Deployment::Mig((*d).clone()), specs)
                    .tenants(tenants)
                    .resilience_opt(*res)
                    .recovery(spec)
                    .config(serving)
                    .run()
            }
        }
    }
}

/// The living cluster: scheduler state + logical map + physical anchor.
pub struct FleetOrchestrator {
    scheduler: ParvaGpu,
    base_specs: Vec<ServiceSpec>,
    specs: Vec<ServiceSpec>,
    services: Vec<Service>,
    deployment: MigDeployment,
    fleet: Fleet,
    placement: FleetPlacement,
    max_replacements_per_event: usize,
    des_recovery: bool,
    tenants: Vec<Tenant>,
    spot_discount: Option<f64>,
    resilience: Option<ResilienceSpec>,
    /// Memoized serving probes: the "after" state of one interval is the
    /// "before" state of the next, and a displacement window's control run
    /// duplicates the before probe — each unique steady state is simulated
    /// once per report.
    sim_cache: SimCache,
    /// Self-profiling spans around the control-loop phases (schedule,
    /// plan, probe fan-out, merge). Disabled by default; readings come
    /// from host clocks, so the profile is excluded from the
    /// determinism guarantees the trace/metrics artifacts carry.
    profiler: SelfProfiler,
}

// Hand-written because the sim cache holds a `Mutex`: the scratch copy
// exists so planners can price counterfactual retargets without
// disturbing the serving state, and it starts with an empty memo (and a
// disabled profiler) — both are accelerators/diagnostics, not state the
// control loop depends on.
impl Clone for FleetOrchestrator {
    fn clone(&self) -> Self {
        Self {
            scheduler: self.scheduler.clone(),
            base_specs: self.base_specs.clone(),
            specs: self.specs.clone(),
            services: self.services.clone(),
            deployment: self.deployment.clone(),
            fleet: self.fleet.clone(),
            placement: self.placement.clone(),
            max_replacements_per_event: self.max_replacements_per_event,
            des_recovery: self.des_recovery,
            tenants: self.tenants.clone(),
            spot_discount: self.spot_discount,
            resilience: self.resilience,
            sim_cache: SimCache::new(),
            profiler: SelfProfiler::disabled(),
        }
    }
}

impl FleetOrchestrator {
    /// Plan the service set and anchor it on a freshly provisioned fleet.
    ///
    /// # Errors
    /// [`FleetError::Schedule`] for infeasible specs,
    /// [`FleetError::Placement`] when the fleet cannot host the plan.
    pub fn bootstrap(
        book: &ProfileBook,
        specs: &[ServiceSpec],
        fleet_spec: &FleetSpec,
    ) -> Result<Self, FleetError> {
        let scheduler = ParvaGpu::new(book);
        let (services, deployment) = scheduler.plan(specs)?;
        let fleet = Fleet::provision(fleet_spec);
        let placement =
            place_sticky(&deployment, &fleet, &FleetPlacement::default()).map_err(|source| {
                FleetError::Placement {
                    interval: 0,
                    source,
                }
            })?;
        Ok(Self {
            scheduler,
            base_specs: specs.to_vec(),
            specs: specs.to_vec(),
            services,
            deployment,
            fleet,
            placement,
            max_replacements_per_event: DEFAULT_MAX_REPLACEMENTS,
            des_recovery: true,
            tenants: Vec::new(),
            spot_discount: None,
            resilience: None,
            sim_cache: SimCache::new(),
            profiler: SelfProfiler::disabled(),
        })
    }

    /// `(hits, misses)` of the orchestrator's simulation cache.
    #[must_use]
    pub fn sim_cache_stats(&self) -> (u64, u64) {
        self.sim_cache.stats()
    }

    /// Record self-profiling spans (wall/CPU clocks plus scope-safe DES
    /// counter deltas) around each [`FleetOrchestrator::handle_event`]
    /// phase. Off by default: profiling reads host clocks.
    pub fn enable_profiling(&mut self) {
        self.profiler = SelfProfiler::enabled();
    }

    /// The phase profile collected so far (empty unless
    /// [`FleetOrchestrator::enable_profiling`] was called).
    #[must_use]
    pub fn profiler(&self) -> &SelfProfiler {
        &self.profiler
    }

    /// Resolve a set of keyed probes: cache hits are returned directly,
    /// misses are simulated — concurrently on scoped threads when more
    /// than one probe needs running — and memoized. The returned map is
    /// deterministic: each report is the pure simulation output for its
    /// key, regardless of hit/miss or execution order.
    fn resolve_probes(
        &self,
        jobs: &[(u128, ProbeJob<'_>)],
        serving: &ServingConfig,
    ) -> BTreeMap<u128, ServingReport> {
        let mut resolved: BTreeMap<u128, ServingReport> = BTreeMap::new();
        let mut misses: Vec<(u128, &ProbeJob<'_>)> = Vec::new();
        for (key, job) in jobs {
            if resolved.contains_key(key) {
                continue;
            }
            if let Some(hit) = self.sim_cache.get(*key) {
                resolved.insert(*key, hit);
            } else if !misses.iter().any(|(k, _)| k == key) {
                misses.push((*key, job));
            }
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let reports: Vec<ServingReport> = if misses.len() <= 1 || cores == 1 {
            // Serial fallback: identical results, and on a single-CPU host
            // the fan-out would only add scheduling noise.
            misses.iter().map(|(_, job)| job.run(serving)).collect()
        } else {
            // Independent pure sims: fan out, join in deterministic order.
            std::thread::scope(|scope| {
                let handles: Vec<_> = misses
                    .iter()
                    .map(|(_, job)| scope.spawn(move || job.run(serving)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probe simulation panicked"))
                    .collect()
            })
        };
        for ((key, _), report) in misses.into_iter().zip(reports) {
            self.sim_cache.insert(key, report.clone());
            resolved.insert(key, report);
        }
        resolved
    }

    /// Override the per-event replacement-node budget (see
    /// [`FleetConfig::max_replacements_per_event`]).
    #[must_use]
    pub fn with_max_replacements(mut self, max: usize) -> Self {
        self.max_replacements_per_event = max;
        self
    }

    /// Enable/disable the DES-simulated recovery path (see
    /// [`FleetConfig::des_recovery`]; enabled by default).
    #[must_use]
    pub fn with_des_recovery(mut self, on: bool) -> Self {
        self.des_recovery = on;
        self
    }

    /// Configure the run's tenants (see [`FleetConfig::tenants`]): every
    /// compliance probe serves under them, so per-tenant rollups and the
    /// admission quota gate ride each window. Empty = inert.
    #[must_use]
    pub fn with_tenants(mut self, tenants: Vec<Tenant>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Set the spot-market discount override (see
    /// [`FleetConfig::spot_discount`]).
    #[must_use]
    pub fn with_spot_discount(mut self, discount: Option<f64>) -> Self {
        self.spot_discount = discount;
        self
    }

    /// Thread a frontend resilience policy into every serving probe (see
    /// [`FleetConfig::resilience`]). `None` = inert, bit-identical to the
    /// pre-resilience orchestrator.
    #[must_use]
    pub fn with_resilience(mut self, resilience: Option<ResilienceSpec>) -> Self {
        self.resilience = resilience;
        self
    }

    /// The run's tenants (empty when multi-tenancy is not configured).
    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The current logical deployment.
    #[must_use]
    pub fn deployment(&self) -> &MigDeployment {
        &self.deployment
    }

    /// The current fleet inventory.
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The current physical placement.
    #[must_use]
    pub fn placement(&self) -> &FleetPlacement {
        &self.placement
    }

    /// Spill-admission headroom of this fleet, in GPU slots: alive slots
    /// not already pinned by the placement, plus the per-event replacement
    /// budget converted to slots at the fleet's mean pool node size. This
    /// is the capacity a cross-region spill burst could actually claim —
    /// unlike the raw alive-GPU count, which includes slots the resident
    /// services already occupy.
    #[must_use]
    pub fn spill_headroom(&self) -> f64 {
        let alive = self.fleet.alive_slots().len();
        let used = self.placement.slots.len();
        let free = alive.saturating_sub(used) as f64;
        let pools = self.fleet.pools();
        let mean_gpus = if pools.is_empty() {
            0.0
        } else {
            pools.iter().map(|p| f64::from(p.node.gpus)).sum::<f64>() / pools.len() as f64
        };
        free + self.max_replacements_per_event as f64 * mean_gpus
    }

    /// The service specs currently being served (base specs scaled by the
    /// last load shift, or the last [`FleetOrchestrator::retarget`]).
    #[must_use]
    pub fn specs(&self) -> &[ServiceSpec] {
        &self.specs
    }

    /// Serve one interval with the current deployment; batch-level
    /// compliance. Memoized: an unchanged steady state reuses the cached
    /// serving report.
    #[must_use]
    pub fn serve_interval(&self, serving: &ServingConfig) -> f64 {
        let job = ProbeJob::Plain(
            &self.deployment,
            &self.specs,
            &self.tenants,
            self.resilience.as_ref(),
        );
        let key = job.key(serving);
        self.sim_cache
            .get_or_simulate(key, || job.run(serving))
            .overall_compliance_rate()
    }

    /// One [`BillingRow`] per tenant for `interval`: revenue at the
    /// tenant's contracted rate for the steady-state window's in-SLO
    /// completions, minus the tenant's offered-share slice of the
    /// in-service fleet's node bill scaled to the measured window. Empty
    /// when the run has no tenants. Memoized through the probe cache (the
    /// steady-state report is the interval's "after" probe).
    #[must_use]
    pub fn billing_rows(&self, interval: usize, serving: &ServingConfig) -> Vec<BillingRow> {
        if self.tenants.is_empty() {
            return Vec::new();
        }
        let job = ProbeJob::Plain(
            &self.deployment,
            &self.specs,
            &self.tenants,
            self.resilience.as_ref(),
        );
        let key = job.key(serving);
        let report = self.sim_cache.get_or_simulate(key, || job.run(serving));
        let packing = FleetPacking::derive_priced(
            &self.deployment,
            &self.placement,
            &self.fleet,
            1.0,
            self.spot_discount,
        );
        let window_usd = packing.usd_per_hour * (serving.duration_s / 3600.0);
        let total_offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        report
            .tenants
            .iter()
            .map(|t| {
                let rate =
                    tenant_of(&self.tenants, t.tenant).map_or(0.0, |ten| ten.usd_per_1k_requests);
                let share = if total_offered == 0 {
                    0.0
                } else {
                    t.offered as f64 / total_offered as f64
                };
                BillingRow {
                    interval,
                    tenant: t.tenant,
                    tenant_name: t.name.clone(),
                    offered: t.offered,
                    rejected: t.rejected,
                    completed_within_slo: t.completed_within_slo,
                    revenue_usd: t.completed_within_slo as f64 * rate / 1_000.0,
                    cost_usd: window_usd * share,
                }
            })
            .collect()
    }

    /// Re-anchor the logical map on the surviving fleet, sticky-first.
    /// When the fleet cannot host the map, provision replacement nodes —
    /// preferring non-preemptible pools whose GPU model satisfies the
    /// failing layout — up to the per-event budget, the way a cloud
    /// control plane backfills dead capacity. Returns the number of
    /// replacement nodes provisioned.
    fn reanchor(&mut self, interval: usize) -> Result<usize, FleetError> {
        let mut replacements = 0usize;
        loop {
            match place_sticky(&self.deployment, &self.fleet, &self.placement) {
                Ok(placement) => {
                    self.placement = placement;
                    return Ok(replacements);
                }
                Err(source) => {
                    if replacements >= self.max_replacements_per_event {
                        return Err(FleetError::Placement { interval, source });
                    }
                    let PlacementError::NoFeasibleSlot {
                        needed_gib_per_slice,
                        ..
                    } = source;
                    // Pick the replacement pool: feasible GPU model first,
                    // non-preemptible before spot, then provisioning order.
                    let pool = self
                        .fleet
                        .pools()
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.node.gpu_model.mem_per_slice_gib >= needed_gib_per_slice)
                        .min_by_key(|(i, p)| (p.preemptible, *i))
                        .map(|(i, _)| i);
                    let Some(pool) = pool else {
                        return Err(FleetError::Placement { interval, source });
                    };
                    self.fleet.grant(pool, 1);
                    replacements += 1;
                }
            }
        }
    }

    /// Remove every segment on the given *logical* GPUs and re-allocate
    /// them through the Segment Allocator queues + optimization + fill —
    /// the §III-F incremental path applied to a capacity loss.
    fn reschedule_displaced(&mut self, displaced_logical: &[usize]) -> usize {
        let doomed: Vec<_> = self
            .deployment
            .segments()
            .iter()
            .filter(|ps| displaced_logical.contains(&ps.gpu))
            .copied()
            .collect();
        let mut queues = SegmentQueues::new();
        for ps in &doomed {
            self.deployment.remove(ps.gpu, ps.placement);
            queues.enqueue(ps.segment);
        }
        let n = doomed.len();
        if n == 0 {
            return 0;
        }
        allocation(&mut self.deployment, &mut queues);
        let cfg = *self.scheduler.allocator_config();
        if cfg.optimize {
            optimize(&mut self.deployment, &self.services, &cfg);
        }
        if cfg.fill {
            fill(&mut self.deployment, &self.services);
        }
        n
    }

    /// Apply a load shift through the per-service reconfiguration path.
    /// Returns the logical GPUs whose layout changed.
    fn apply_load_shift(&mut self, multiplier: f64) -> Result<Vec<usize>, ScheduleError> {
        let targets: Vec<ServiceSpec> = self
            .base_specs
            .iter()
            .map(|s| {
                ServiceSpec::new(
                    s.id,
                    s.model,
                    s.request_rate_rps * multiplier,
                    s.slo.latency_ms,
                )
                .with_tenant(s.tenant)
            })
            .collect();
        self.update_services(&targets)
    }

    /// Drive every service to its target spec through
    /// [`reconfigure::update_service`] (the §III-F per-service path).
    /// Returns the logical GPUs whose layout changed. On error the state is
    /// left partially updated; callers wanting transactional semantics
    /// snapshot first (see [`FleetOrchestrator::retarget`]).
    fn update_services(&mut self, targets: &[ServiceSpec]) -> Result<Vec<usize>, ScheduleError> {
        self.specs = targets.to_vec();
        let mut churn = std::collections::BTreeSet::new();
        for spec in self.specs.clone() {
            let outcome = reconfigure::update_service(
                &self.scheduler,
                &self.deployment,
                &self.services,
                spec,
            )?;
            churn.extend(outcome.reconfigured_gpus.iter().copied());
            self.deployment = outcome.deployment;
            if let Some(slot) = self.services.iter().position(|s| s.spec.id == spec.id) {
                self.services[slot] = outcome.service;
            }
        }
        Ok(churn.into_iter().collect())
    }

    /// Retarget the fleet to a new demand vector through the §III-F
    /// per-service reconfiguration path, then re-anchor and (if needed)
    /// provision replacement nodes. This is the exported planner hook a
    /// multi-region federation drives every interval: `targets` must cover
    /// the same service ids/models as the base set, with new rates.
    ///
    /// Transactional: on error the orchestrator is restored to its
    /// pre-call state (so the caller can keep serving the old plan and
    /// spill the excess demand elsewhere).
    ///
    /// # Errors
    /// [`FleetError::Schedule`] when a target is infeasible,
    /// [`FleetError::Placement`] when the fleet (plus the replacement
    /// budget) cannot host the retargeted plan.
    pub fn retarget(
        &mut self,
        interval: usize,
        targets: &[ServiceSpec],
    ) -> Result<RecoveryOutcome, FleetError> {
        let snap_deployment = self.deployment.clone();
        let snap_placement = self.placement.clone();
        let snap_services = self.services.clone();
        let snap_specs = self.specs.clone();
        let snap_fleet = self.fleet.clone();
        let attempt = (|| -> Result<(usize, usize), FleetError> {
            let churn = self.update_services(targets)?;
            self.placement =
                translate_placement((&snap_deployment, &snap_placement), &self.deployment);
            let replacements = self.reanchor(interval)?;
            Ok((churn.len(), replacements))
        })();
        match attempt {
            Ok((reconfigured_gpus, replacement_nodes)) => {
                let migration = MigrationPlan::between(
                    (&snap_deployment, &snap_placement),
                    (&self.deployment, &self.placement),
                    &self.fleet,
                );
                Ok(RecoveryOutcome {
                    displaced_segments: 0,
                    reconfigured_gpus,
                    replacement_nodes,
                    migration,
                })
            }
            Err(e) => {
                self.deployment = snap_deployment;
                self.placement = snap_placement;
                self.services = snap_services;
                self.specs = snap_specs;
                self.fleet = snap_fleet;
                Err(e)
            }
        }
    }

    /// Apply a capacity event (failure / preemption / grant) through the
    /// incremental recovery path *without* running serving windows — the
    /// exported hook for callers that serve routed load themselves.
    /// [`FleetEvent::LoadShift`] is demand, not capacity: drive it through
    /// [`FleetOrchestrator::retarget`] instead (here it is a no-op).
    ///
    /// Not transactional: a placement error leaves the fleet with the node
    /// already dead, which callers should treat as a region that can no
    /// longer host its plan (cross-region failover).
    ///
    /// # Errors
    /// [`FleetError::Placement`] when the surviving fleet cannot host the
    /// recovered deployment.
    pub fn apply_capacity_event(
        &mut self,
        interval: usize,
        event: &FleetEvent,
    ) -> Result<RecoveryOutcome, FleetError> {
        let before_deployment = self.deployment.clone();
        let before_placement = self.placement.clone();
        let (displaced_segments, replacement_nodes) = match event {
            FleetEvent::NodeFailure { node }
            | FleetEvent::SpotPreemption { node }
            | FleetEvent::PreemptionWarning { node } => {
                self.fleet.kill(*node);
                let displaced_logical: Vec<usize> = self
                    .placement
                    .slots
                    .iter()
                    .filter(|(_, s)| s.node == *node)
                    .map(|(l, _)| *l)
                    .collect();
                let displaced = self.reschedule_displaced(&displaced_logical);
                let replacements = self.reanchor(interval)?;
                (displaced, replacements)
            }
            FleetEvent::ScaleUpGrant { pool, nodes } => {
                self.fleet.grant(*pool, *nodes);
                (0, 0)
            }
            FleetEvent::LoadShift { .. } | FleetEvent::Quiet => (0, 0),
        };
        let migration = MigrationPlan::between(
            (&before_deployment, &before_placement),
            (&self.deployment, &self.placement),
            &self.fleet,
        );
        Ok(RecoveryOutcome {
            displaced_segments,
            reconfigured_gpus: 0,
            replacement_nodes,
            migration,
        })
    }

    /// Region-evacuation drain: retire every node and withdraw the
    /// deployment. Returns the number of segments drained — capacity the
    /// caller must re-place in surviving regions through their incremental
    /// paths.
    pub fn evacuate(&mut self) -> usize {
        let drained = self.deployment.segments().len();
        for id in self.fleet.alive_nodes() {
            self.fleet.kill(id);
        }
        self.deployment = MigDeployment::new();
        self.placement = FleetPlacement::default();
        drained
    }

    /// Handle one event end-to-end; returns the outcome row.
    ///
    /// State mutation (kill / reschedule / re-anchor) runs first; the
    /// compliance probes around the event — before, blackout, shadowed,
    /// DES-measured recovery, after — are pure simulations of snapshots,
    /// so they resolve afterwards through the content-hashed cache, with
    /// cache misses evaluated concurrently on scoped threads. Values are
    /// identical to running each probe inline at its original point.
    ///
    /// # Errors
    /// [`FleetError::Placement`] when the surviving fleet cannot host the
    /// recovered deployment, [`FleetError::Schedule`] if a load shift is
    /// infeasible.
    #[allow(clippy::too_many_lines)]
    pub fn handle_event(
        &mut self,
        interval: usize,
        event: FleetEvent,
        serving: &ServingConfig,
    ) -> Result<EventOutcome, FleetError> {
        let before_deployment = self.deployment.clone();
        let before_placement = self.placement.clone();
        let specs_before = self.specs.clone();

        // -- 1. Apply the event through the recovery machinery (no sims).
        let tok = self.profiler.begin("schedule", "fleet");
        let mut displaced_segments = 0usize;
        let mut lost_gpus = 0usize;
        let mut replacement_nodes = 0usize;
        let mut window = None;
        match &event {
            FleetEvent::NodeFailure { node }
            | FleetEvent::SpotPreemption { node }
            | FleetEvent::PreemptionWarning { node } => {
                lost_gpus = usize::from(self.fleet.node(*node).node.gpus);
                self.fleet.kill(*node);
                // Logical GPUs anchored to the dead node are displaced.
                let displaced_logical: Vec<usize> = self
                    .placement
                    .slots
                    .iter()
                    .filter(|(_, s)| s.node == *node)
                    .map(|(l, _)| *l)
                    .collect();
                // The disruption window's variants (§III-F shadows vs.
                // dark), built now, simulated with the probe batch below.
                window = Some(displacement_window(&before_deployment, &displaced_logical));
                displaced_segments = self.reschedule_displaced(&displaced_logical);
                replacement_nodes = self.reanchor(interval)?;
            }
            FleetEvent::ScaleUpGrant { pool, nodes } => {
                // No capacity lost; fresh headroom for future recoveries.
                self.fleet.grant(*pool, *nodes);
            }
            FleetEvent::LoadShift { multiplier } => {
                self.apply_load_shift(*multiplier)?;
                // The reconfiguration path ends in `compact()`, which
                // renumbers logical GPUs; re-key the previous placement by
                // layout signature so unchanged GPUs stay put and the
                // migration count reflects real movement only.
                self.placement =
                    translate_placement((&before_deployment, &before_placement), &self.deployment);
                replacement_nodes = self.reanchor(interval)?;
            }
            FleetEvent::Quiet => {}
        }
        self.profiler.end(tok);
        let tok = self.profiler.begin("plan", "fleet");

        let migration = MigrationPlan::between(
            (&before_deployment, &before_placement),
            (&self.deployment, &self.placement),
            &self.fleet,
        );

        // The DES-measured disruption window: the recovered deployment
        // serves live traffic while its migration rides the same event
        // queue — affected servers dark from window start until their
        // re-flash (serialized per node) and weight copy (queued on the
        // node's PCIe link) complete. *Planned* work is bridged before it
        // starts — an honored two-minute warning pre-copies and
        // pre-flashes (provided the copy volume fits the warning's
        // bandwidth budget), and a load-shift reconfiguration runs behind
        // §III-F shadow processes — leaving only the control-plane delay;
        // unannounced losses pay the full window.
        let rec_spec = (self.des_recovery && !migration.ops.is_empty()).then(|| {
            let start_ms = serving.warmup_s * 1_000.0;
            if matches!(event, FleetEvent::LoadShift { .. }) {
                // Shadow-process reconfiguration: all work pre-staged.
                migration.to_recovery_spec(start_ms, true)
            } else if matches!(event, FleetEvent::PreemptionWarning { .. }) {
                // A warning buys whatever pre-copy fits its bandwidth
                // budget, largest copies first; the remainder is paid
                // live — a partial recovery window, not all-or-nothing.
                migration.to_partial_recovery_spec(
                    start_ms,
                    parva_scenarios::warning_precopy_budget_gib(
                        crate::migration::WEIGHT_COPY_GIB_PER_S,
                    ),
                )
            } else {
                migration.to_recovery_spec(start_ms, false)
            }
        });
        self.profiler.end(tok);
        let tok = self.profiler.begin("probe-fanout", "fleet");

        // -- 2. Resolve every probe through the cache (misses fan out).
        // The "after" probe of interval n is the "before" probe of
        // interval n+1, and the window's control run IS the before probe,
        // so steady states are simulated once per chaos trace.
        fn push<'a>(
            jobs: &mut Vec<(u128, ProbeJob<'a>)>,
            job: ProbeJob<'a>,
            serving: &ServingConfig,
        ) -> u128 {
            let key = job.key(serving);
            if !jobs.iter().any(|(k, _)| *k == key) {
                jobs.push((key, job));
            }
            key
        }
        let mut jobs: Vec<(u128, ProbeJob<'_>)> = Vec::with_capacity(5);
        let res = self.resilience.as_ref();
        let key_before = push(
            &mut jobs,
            ProbeJob::Plain(&before_deployment, &specs_before, &self.tenants, res),
            serving,
        );
        let keys_window = window.as_ref().map(|w| {
            (
                push(
                    &mut jobs,
                    ProbeJob::Plain(&w.blackout, &specs_before, &self.tenants, res),
                    serving,
                ),
                push(
                    &mut jobs,
                    ProbeJob::Plain(&w.shadowed, &specs_before, &self.tenants, res),
                    serving,
                ),
            )
        });
        // A load shift's window runs the *old* map against the *new* load.
        let key_shift = matches!(event, FleetEvent::LoadShift { .. }).then(|| {
            push(
                &mut jobs,
                ProbeJob::Plain(&before_deployment, &self.specs, &self.tenants, res),
                serving,
            )
        });
        let key_measured = rec_spec.as_ref().map(|spec| {
            push(
                &mut jobs,
                ProbeJob::Recovery(&self.deployment, &self.specs, spec, &self.tenants, res),
                serving,
            )
        });
        let key_after = push(
            &mut jobs,
            ProbeJob::Plain(&self.deployment, &self.specs, &self.tenants, res),
            serving,
        );
        let resolved = self.resolve_probes(&jobs, serving);
        self.profiler.end(tok);
        let tok = self.profiler.begin("merge", "fleet");
        let compliance_of = |key: u128| resolved[&key].overall_request_compliance_rate();

        let compliance_before = compliance_of(key_before);
        let (compliance_during, compliance_shadowed) = match (keys_window, key_shift) {
            (Some((blackout, shadowed)), _) => (compliance_of(blackout), compliance_of(shadowed)),
            (None, Some(shift)) => {
                let during = compliance_of(shift);
                (during, during)
            }
            (None, None) => (compliance_before, compliance_before),
        };
        let (compliance_measured, simulated_recovery_ms, precopied_gib) = match key_measured {
            Some(key) => {
                let report = &resolved[&key];
                let rec = report.recovery.as_ref().expect("recovery was simulated");
                (
                    report.overall_request_compliance_rate(),
                    rec.latency_ms,
                    rec.precopied_gib,
                )
            }
            None => (compliance_during, 0.0, 0.0),
        };

        let packing = FleetPacking::derive_priced(
            &self.deployment,
            &self.placement,
            &self.fleet,
            1.0,
            self.spot_discount,
        );
        let after = &resolved[&key_after];
        // The interval's resilience counters: the DES-measured window when
        // one ran (that is where timeouts/retries/sheds compete with the
        // recovery), else the recovered steady state. `None` whenever
        // nothing fired — resilience-free reports stay byte-identical.
        let resilience = match key_measured {
            Some(key) => resolved[&key].resilience_totals(),
            None => after.resilience_totals(),
        };
        self.profiler.end(tok);

        Ok(EventOutcome {
            interval,
            event,
            displaced_segments,
            replacement_nodes,
            migration,
            compliance_before,
            compliance_during,
            compliance_shadowed,
            compliance_measured,
            compliance_after: after.overall_request_compliance_rate(),
            compliance_after_batch: after.overall_compliance_rate(),
            simulated_recovery_ms,
            precopied_gib,
            nodes_in_service: packing.nodes.len(),
            usd_per_hour: packing.usd_per_hour,
            lost_gpus,
            resilience,
        })
    }
}

/// Run a full chaos trace: bootstrap, then `config.intervals` seeded events
/// with recovery after each.
///
/// Deterministic: the same `(book, specs, fleet_spec, config)` always
/// produces the identical [`FleetReport`].
///
/// # Errors
/// Propagates bootstrap and recovery failures ([`FleetError`]).
pub fn run_chaos(
    book: &ProfileBook,
    specs: &[ServiceSpec],
    fleet_spec: &FleetSpec,
    config: &FleetConfig,
) -> Result<FleetReport, FleetError> {
    run_chaos_with(
        book,
        specs,
        fleet_spec,
        config,
        &mut parva_obs::NullSink,
        false,
    )
    .map(|(report, _)| report)
}

/// [`run_chaos`] under an observer: the identical chaos trace (the
/// report is property-tested equal to the unobserved run), plus, per
/// interval, orchestrator *decision* trace events — the injected event,
/// a `probe` instant carrying the simulation-cache hit/miss delta of
/// the interval's compliance-probe fan-out, and a `migrate` span
/// covering the recovery latency — and one gauge row with the interval's
/// compliance trajectory, migration volume and fleet cost. Interval `n`
/// is mapped onto the trace timeline at `n × serving-window` so stacked
/// intervals render side by side in Perfetto. The recorder also absorbs
/// the orchestrator's phase self-profile (schedule / plan /
/// probe-fanout / merge).
///
/// The serving probes themselves stay unobserved: they are memoized
/// content-addressed snapshots (interior spans would be misattributed
/// across cache hits). Use [`parva_serve::Simulation::run_with`] for
/// request-level spans of a single window.
///
/// # Errors
/// Propagates bootstrap and recovery failures ([`FleetError`]).
pub fn run_chaos_observed(
    book: &ProfileBook,
    specs: &[ServiceSpec],
    fleet_spec: &FleetSpec,
    config: &FleetConfig,
    rec: &mut Recorder,
) -> Result<FleetReport, FleetError> {
    let (report, profile) = run_chaos_with(book, specs, fleet_spec, config, rec, true)?;
    rec.profile.absorb(&profile);
    Ok(report)
}

/// Static label for an event kind, as stamped into trace events and the
/// `kind: "fleet"` gauge rows (trace names must be `'static`). Public so
/// trace auditors can recompute the expected label from a report's
/// [`FleetEvent`].
#[must_use]
pub fn event_label(event: &FleetEvent) -> &'static str {
    match event {
        FleetEvent::NodeFailure { .. } => "node-failure",
        FleetEvent::SpotPreemption { .. } => "spot-preemption",
        FleetEvent::PreemptionWarning { .. } => "preemption-warning",
        FleetEvent::ScaleUpGrant { .. } => "scale-up-grant",
        FleetEvent::LoadShift { .. } => "load-shift",
        FleetEvent::Quiet => "quiet",
    }
}

/// One serving interval's span on the pseudo-timeline, microseconds.
fn interval_us(serving: &ServingConfig) -> u64 {
    ((serving.warmup_s + serving.duration_s + serving.drain_s) * 1e6) as u64
}

/// [`run_chaos`] under an arbitrary [`TraceSink`] — the generic engine
/// behind both the plain and recorded runs. Streaming callers (the
/// scenario layer's `--stream` path) hand a sink that retires events to
/// disk as they land; `profile` enables the orchestrator phase
/// self-profile, returned alongside the report.
///
/// # Errors
/// Propagates bootstrap and recovery failures ([`FleetError`]).
pub fn run_chaos_sink<S: TraceSink>(
    book: &ProfileBook,
    specs: &[ServiceSpec],
    fleet_spec: &FleetSpec,
    config: &FleetConfig,
    sink: &mut S,
    profile: bool,
) -> Result<(FleetReport, SelfProfiler), FleetError> {
    run_chaos_with(book, specs, fleet_spec, config, sink, profile)
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn run_chaos_with<S: TraceSink>(
    book: &ProfileBook,
    specs: &[ServiceSpec],
    fleet_spec: &FleetSpec,
    config: &FleetConfig,
    sink: &mut S,
    profile: bool,
) -> Result<(FleetReport, SelfProfiler), FleetError> {
    let mut orchestrator = FleetOrchestrator::bootstrap(book, specs, fleet_spec)?
        .with_max_replacements(config.max_replacements_per_event)
        .with_des_recovery(config.des_recovery)
        .with_tenants(config.tenants.clone())
        .with_spot_discount(config.spot_discount)
        .with_resilience(config.resilience);
    if profile {
        orchestrator.enable_profiling();
    }
    let mut event_rng = RngStream::new(config.seed, 0xF1EE7);
    let serving = ServingConfig {
        seed: config.seed,
        ..config.serving
    };
    let window = interval_us(&serving);

    let baseline_compliance = orchestrator.serve_interval(&serving);
    let baseline_packing = FleetPacking::derive_priced(
        &orchestrator.deployment,
        &orchestrator.placement,
        &orchestrator.fleet,
        1.0,
        config.spot_discount,
    );
    if S::ENABLED {
        sink.sample(
            Row::new()
                .str("kind", "fleet")
                .u64("interval", 0)
                .str("event", "baseline")
                .f64("compliance_before", baseline_compliance)
                .f64("compliance_after", baseline_compliance)
                .u64("nodes_in_service", baseline_packing.nodes.len() as u64)
                .f64("usd_per_hour", baseline_packing.usd_per_hour),
        );
    }

    let mut billing_rows: Vec<BillingRow> = orchestrator.billing_rows(0, &serving);
    if S::ENABLED {
        emit_billing_gauges(sink, &billing_rows, 0);
    }

    let mut events = Vec::with_capacity(config.intervals);
    for interval in 1..=config.intervals {
        let event = next_event_with(&mut event_rng, &orchestrator.fleet, &config.chaos);
        let (hits0, misses0) = orchestrator.sim_cache_stats();
        let outcome = orchestrator.handle_event(interval, event, &serving)?;
        if S::ENABLED {
            let ts0 = interval as u64 * window;
            let (hits1, misses1) = orchestrator.sim_cache_stats();
            sink.emit(
                TraceEvent::instant(event_label(&outcome.event), "fleet-event", ts0)
                    .pid(PID_FLEET)
                    .tid(interval as u32)
                    .arg_str("event", outcome.event.to_string())
                    .arg_u64("displaced_segments", outcome.displaced_segments as u64)
                    .arg_u64("lost_gpus", outcome.lost_gpus as u64),
            );
            sink.emit(
                TraceEvent::instant("probe", "decision", ts0)
                    .pid(PID_FLEET)
                    .tid(interval as u32)
                    .arg_u64("cache_hits", hits1.saturating_sub(hits0))
                    .arg_u64("cache_misses", misses1.saturating_sub(misses0)),
            );
            if outcome.migration.migrated_segments > 0 {
                let rec_ms = if outcome.simulated_recovery_ms > 0.0 {
                    outcome.simulated_recovery_ms
                } else {
                    outcome.migration.recovery_latency_ms
                };
                sink.emit(
                    TraceEvent::span("migrate", "decision", ts0, (rec_ms * 1_000.0) as u64)
                        .pid(PID_FLEET)
                        .tid(interval as u32)
                        .arg_u64("segments", outcome.migration.migrated_segments as u64)
                        .arg_u64("reflashed_gpus", outcome.migration.reflashed_gpus as u64)
                        .arg_f64("weight_copy_gib", outcome.migration.weight_copy_gib)
                        .arg_u64("replacement_nodes", outcome.replacement_nodes as u64),
                );
            }
            let probes = hits1 + misses1;
            let mut row = Row::new()
                .str("kind", "fleet")
                .u64("interval", interval as u64)
                .str("event", event_label(&outcome.event))
                .f64("compliance_before", outcome.compliance_before)
                .f64("compliance_during", outcome.compliance_during)
                .f64("compliance_shadowed", outcome.compliance_shadowed)
                .f64("compliance_measured", outcome.compliance_measured)
                .f64("compliance_after", outcome.compliance_after)
                .u64(
                    "migrated_segments",
                    outcome.migration.migrated_segments as u64,
                )
                .f64("recovery_ms", outcome.simulated_recovery_ms)
                .f64("precopied_gib", outcome.precopied_gib)
                .f64(
                    "sim_cache_hit_rate",
                    if probes == 0 {
                        0.0
                    } else {
                        hits1 as f64 / probes as f64
                    },
                )
                .u64("nodes_in_service", outcome.nodes_in_service as u64)
                .f64("usd_per_hour", outcome.usd_per_hour);
            // Resilience columns ride the fleet row only when a policy
            // actually fired, keeping resilience-free artifacts
            // byte-identical.
            if let Some(res) = &outcome.resilience {
                row = row
                    .u64("timeouts", res.timeouts)
                    .u64("retries", res.retries)
                    .u64("shed", res.shed)
                    .u64("hedges", res.hedges)
                    .u64("hedge_wins", res.hedge_wins);
            }
            sink.sample(row);
        }
        let interval_billing = orchestrator.billing_rows(interval, &serving);
        if S::ENABLED {
            emit_billing_gauges(sink, &interval_billing, interval);
        }
        billing_rows.extend(interval_billing);
        events.push(outcome);
    }

    let profile = std::mem::take(&mut orchestrator.profiler);
    Ok((
        FleetReport {
            seed: config.seed,
            baseline_compliance,
            baseline_usd_per_hour: baseline_packing.usd_per_hour,
            events,
            billing: (!billing_rows.is_empty()).then_some(BillingReport {
                rows: billing_rows,
                follow_the_sun: Vec::new(),
            }),
        },
        profile,
    ))
}

/// One `kind: "billing"` gauge row per tenant for an interval's P&L —
/// emitted only when tenants are configured, so tenant-free artifacts stay
/// byte-identical to the pre-tenant era.
fn emit_billing_gauges<S: TraceSink>(sink: &mut S, rows: &[BillingRow], interval: usize) {
    for row in rows {
        sink.sample(
            Row::new()
                .str("kind", "billing")
                .u64("interval", interval as u64)
                .u64("tenant", u64::from(row.tenant))
                .u64("offered", row.offered)
                .u64("rejected", row.rejected)
                .u64("completed_within_slo", row.completed_within_slo)
                .f64("revenue_usd", row.revenue_usd)
                .f64("cost_usd", row.cost_usd)
                .f64("margin_usd", row.margin_usd()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_specs() -> Vec<ServiceSpec> {
        crate::demo_services()
    }

    fn quick_config(seed: u64, intervals: usize) -> FleetConfig {
        FleetConfig {
            seed,
            intervals,
            serving: ServingConfig {
                warmup_s: 0.3,
                duration_s: 1.5,
                drain_s: 0.7,
                ..ServingConfig::default()
            },
            max_replacements_per_event: 4,
            des_recovery: true,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn tenant_chaos_bills_every_interval_and_stays_neutral() {
        let book = ProfileBook::builtin();
        let spec = FleetSpec::mixed_demo(2);
        let cfg = quick_config(1234, 4);
        let plain = run_chaos(&book, &base_specs(), &spec, &cfg).unwrap();
        assert!(plain.billing.is_none(), "tenant-free run must not bill");

        // Bind all services to one pass-through tenant with a billing rate:
        // the chaos trace (events, compliance, migrations) must be
        // unchanged — only the billing ledger is added.
        let tenant = Tenant::new(1, "acme").with_rate_usd_per_1k(2.0);
        let specs: Vec<ServiceSpec> = base_specs().iter().map(|s| s.with_tenant(1)).collect();
        let mut tcfg = cfg.clone();
        tcfg.tenants = vec![tenant];
        let billed = run_chaos(&book, &specs, &spec, &tcfg).unwrap();
        assert_eq!(plain.events, billed.events, "billing must not steer chaos");
        let billing = billed.billing.clone().expect("tenant run must bill");
        // One row per interval (baseline + each event) for the one tenant.
        assert_eq!(billing.rows.len(), cfg.intervals + 1);
        assert!(billing.revenue_usd() > 0.0);
        assert!(billing.cost_usd() > 0.0);
        for row in &billing.rows {
            assert_eq!(row.tenant, 1);
            assert_eq!(row.tenant_name, "acme");
            assert!(row.offered > 0);
            assert!(
                (row.revenue_usd - row.completed_within_slo as f64 * 2.0 / 1_000.0).abs() < 1e-9
            );
        }
        assert!(billed.render().contains("acme"));
    }

    #[test]
    fn resilience_policy_threads_through_chaos_probes() {
        let book = ProfileBook::builtin();
        let spec = FleetSpec::mixed_demo(2);
        let cfg = quick_config(77, 2);
        let plain = run_chaos(&book, &base_specs(), &spec, &cfg).unwrap();
        assert!(
            plain.events.iter().all(|e| e.resilience.is_none()),
            "resilience-free chaos must not report counters"
        );
        let plain_json = serde_json::to_string(&plain).unwrap();
        assert!(
            !plain_json.contains("resilience"),
            "resilience-free fleet report must not mention resilience"
        );

        // An aggressive shed policy fires on every interval of the busy demo
        // fleet, so the counters must surface on every event outcome.
        let mut rcfg = cfg.clone();
        rcfg.resilience = Some(parva_serve::ResilienceSpec {
            shed_queue_depth: 1,
            health_checked: false,
            ..parva_serve::ResilienceSpec::default()
        });
        let shed = run_chaos(&book, &base_specs(), &spec, &rcfg).unwrap();
        assert!(
            shed.events
                .iter()
                .any(|e| e.resilience.as_ref().is_some_and(|r| r.shed > 0)),
            "shed_queue_depth=1 must shed during chaos intervals"
        );
        assert!(serde_json::to_string(&shed).unwrap().contains("\"shed\""));
    }

    #[test]
    fn spot_discount_cheapens_the_fleet_bill() {
        let book = ProfileBook::builtin();
        // All-spot fleet: every in-service node hour is discountable.
        let spec = FleetSpec {
            pools: vec![crate::node::NodePool {
                name: "spot-only".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::Spot,
                preemptible: true,
                count: 3,
                region: None,
            }],
        };
        let cfg = quick_config(1234, 2);
        let base = run_chaos(&book, &base_specs(), &spec, &cfg).unwrap();
        let mut dcfg = cfg.clone();
        dcfg.spot_discount = Some(0.1);
        let discounted = run_chaos(&book, &base_specs(), &spec, &dcfg).unwrap();
        // Identical trace, strictly cheaper bill.
        assert_eq!(
            base.events.iter().map(|e| &e.event).collect::<Vec<_>>(),
            discounted
                .events
                .iter()
                .map(|e| &e.event)
                .collect::<Vec<_>>()
        );
        assert!(
            discounted.baseline_usd_per_hour < base.baseline_usd_per_hour,
            "0.1x spot discount never showed up: {} vs {}",
            discounted.baseline_usd_per_hour,
            base.baseline_usd_per_hour
        );
        for (d, b) in discounted.events.iter().zip(&base.events) {
            assert!(d.usd_per_hour < b.usd_per_hour);
        }
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let book = ProfileBook::builtin();
        let spec = FleetSpec::mixed_demo(2);
        let a = run_chaos(&book, &base_specs(), &spec, &quick_config(1234, 6)).unwrap();
        let b = run_chaos(&book, &base_specs(), &spec, &quick_config(1234, 6)).unwrap();
        assert_eq!(a, b, "identical seeds must give identical reports");
        let c = run_chaos(&book, &base_specs(), &spec, &quick_config(99, 6)).unwrap();
        assert_ne!(a.events, c.events, "different seeds should diverge");
    }

    #[test]
    fn observed_chaos_is_behavior_neutral_and_deterministic() {
        let book = ProfileBook::builtin();
        let spec = FleetSpec::mixed_demo(2);
        let cfg = quick_config(1234, 4);
        let plain = run_chaos(&book, &base_specs(), &spec, &cfg).unwrap();

        let mut rec_a = Recorder::new(0);
        let a = run_chaos_observed(&book, &base_specs(), &spec, &cfg, &mut rec_a).unwrap();
        assert_eq!(plain, a, "observation must not change the report");

        // One gauge row per interval plus the baseline row.
        assert_eq!(rec_a.metrics.len(), cfg.intervals + 1);
        assert_eq!(
            rec_a.metrics.rows()[0].get("event"),
            Some(&parva_obs::ArgValue::Str("baseline".into()))
        );
        // Every interval emits its event instant and a probe decision.
        let probes = rec_a.events.iter().filter(|e| e.name == "probe").count();
        assert_eq!(probes, cfg.intervals);
        assert!(rec_a.events.iter().all(|e| e.pid == PID_FLEET));
        // The phase self-profile covered every handle_event phase.
        let phases: Vec<&str> = rec_a.profile.stats().iter().map(|s| s.name).collect();
        for phase in ["schedule", "plan", "probe-fanout", "merge"] {
            assert!(phases.contains(&phase), "missing phase {phase}");
        }
        // Deterministic artifacts: byte-identical across runs.
        let mut rec_b = Recorder::new(0);
        let b = run_chaos_observed(&book, &base_specs(), &spec, &cfg, &mut rec_b).unwrap();
        assert_eq!(a, b);
        assert_eq!(rec_a.chrome_trace(), rec_b.chrome_trace());
        assert_eq!(rec_a.metrics_jsonl(), rec_b.metrics_jsonl());
        assert_eq!(rec_a.metrics_csv(), rec_b.metrics_csv());
    }

    #[test]
    fn probe_fanout_profile_attributes_inner_simulations() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        orchestrator.enable_profiling();
        let serving = quick_config(5, 1).serving;
        // Kill the node hosting logical GPU 0 so the displacement window
        // forces fresh blackout/shadowed/measured probes (cache misses).
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving)
            .unwrap();
        assert!(outcome.displaced_segments > 0);
        // probe-fanout attributed the inner simulations via the
        // scope-safe Snapshot::delta, including scoped-thread misses.
        let fanout = orchestrator
            .profiler()
            .stats()
            .iter()
            .find(|s| s.name == "probe-fanout")
            .unwrap();
        assert!(fanout.des_sims > 0, "fan-out ran no simulations");
        assert!(fanout.des_events > 0);
        let names: Vec<&str> = orchestrator
            .profiler()
            .stats()
            .iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["schedule", "plan", "probe-fanout", "merge"]);
    }

    #[test]
    fn every_event_recovers_on_a_heterogeneous_fleet() {
        let book = ProfileBook::builtin();
        let spec = FleetSpec::mixed_demo(2);
        let report = run_chaos(&book, &base_specs(), &spec, &quick_config(7, 8)).unwrap();
        assert_eq!(report.events.len(), 8);
        assert!(
            report.baseline_compliance > 0.999,
            "{}",
            report.baseline_compliance
        );
        assert!(
            report.fully_recovered(),
            "steady-state compliance must return to pre-event level:\n{}",
            report.render()
        );
        // The trace must actually disturb something for the test to mean
        // anything (seed chosen to include capacity loss).
        assert!(
            report.events.iter().any(|e| matches!(
                e.event,
                FleetEvent::NodeFailure { .. } | FleetEvent::SpotPreemption { .. }
            )),
            "trace contained no capacity loss:\n{}",
            report.render()
        );
    }

    #[test]
    fn capacity_loss_migrates_and_dips() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let serving = quick_config(5, 1).serving;
        // Kill the node hosting logical GPU 0 explicitly.
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving)
            .unwrap();
        assert!(outcome.displaced_segments > 0, "victim node hosted nothing");
        assert!(outcome.migration.migrated_segments >= outcome.displaced_segments);
        assert!(outcome.compliance_during < outcome.compliance_before);
        assert!(outcome.compliance_shadowed >= outcome.compliance_during);
        assert!(
            outcome.recovered(),
            "compliance_after {}",
            outcome.compliance_after
        );
        assert!(outcome.migration.recovery_latency_ms > 0.0);
        // Every service is still fully covered by the recovered map.
        for spec in base_specs() {
            assert!(
                orchestrator.deployment().capacity_of(spec.id) + 1e-6 >= spec.request_rate_rps,
                "service {} uncovered after recovery",
                spec.id
            );
        }
        assert!(orchestrator.deployment().validate());
    }

    #[test]
    fn warned_preemption_shrinks_the_measured_dip() {
        use crate::migration::CONTROL_PLANE_MS;
        let book = ProfileBook::builtin();
        let serving = quick_config(5, 1).serving;
        let mut cold =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let victim = cold.placement().slot_of(0).unwrap().node;
        let cold_out = cold
            .handle_event(1, FleetEvent::SpotPreemption { node: victim }, &serving)
            .unwrap();
        let mut warm =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let warm_out = warm
            .handle_event(1, FleetEvent::PreemptionWarning { node: victim }, &serving)
            .unwrap();
        // Identical failure, identical recovery plan — but the warning
        // pre-staged the weights and layouts, so only the control plane is
        // paid live and the measured dip can only shrink.
        assert!(cold_out.displaced_segments > 0);
        assert_eq!(
            warm_out.migration.migrated_segments,
            cold_out.migration.migrated_segments
        );
        assert!(
            cold_out.measured_dip() > 0.0,
            "cold preemption must dip for the comparison to bite"
        );
        assert!(
            warm_out.measured_dip() < cold_out.measured_dip(),
            "pre-copy must strictly shrink the dip: warned {:.4} vs cold {:.4}",
            warm_out.measured_dip(),
            cold_out.measured_dip()
        );
        assert!((warm_out.simulated_recovery_ms - CONTROL_PLANE_MS).abs() < 1e-9);
        assert!(warm_out.simulated_recovery_ms < cold_out.simulated_recovery_ms);
        assert!(warm_out.precopied_gib > 0.0);
        assert_eq!(cold_out.precopied_gib, 0.0);
    }

    #[test]
    fn simulated_recovery_sits_inside_the_analytic_envelope() {
        use crate::migration::{CONTROL_PLANE_MS, MIG_REFLASH_MS};
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let serving = quick_config(5, 1).serving;
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving)
            .unwrap();
        let plan = &outcome.migration;
        assert!(!plan.ops.is_empty());
        // SimTime quantizes to whole microseconds per op, so the DES and
        // the f64 analytic bounds can differ by sub-ms rounding.
        let eps = 0.5;
        // Lower bound: control + the slowest single GPU's own re-flash
        // followed by its own copy (re-flashes and copies on different
        // GPUs may overlap, so the global worsts don't sum).
        assert!(
            outcome.simulated_recovery_ms >= plan.analytic_lower_bound_ms() - eps,
            "sim {:.1} below lower bound {:.1}",
            outcome.simulated_recovery_ms,
            plan.analytic_lower_bound_ms()
        );
        // Upper bound: busiest node fully serialized + all copies queued.
        assert!(
            outcome.simulated_recovery_ms <= plan.analytic_upper_bound_ms() + eps,
            "sim {:.1} above upper bound {:.1}",
            outcome.simulated_recovery_ms,
            plan.analytic_upper_bound_ms()
        );
        // The serialized re-flash waves actually show up in the schedule.
        assert!(
            outcome.simulated_recovery_ms
                >= CONTROL_PLANE_MS + plan.reflash_waves as f64 * MIG_REFLASH_MS - eps
        );
        // And the analytic estimate agrees with the DES within the copy
        // contention it cannot see (the only term it models optimistically).
        let tolerance = plan.weight_copy_gib / crate::migration::WEIGHT_COPY_GIB_PER_S * 1_000.0;
        assert!(
            (outcome.simulated_recovery_ms - plan.recovery_latency_ms).abs() <= tolerance + eps,
            "sim {:.1} vs analytic {:.1} beyond copy tolerance {:.1}",
            outcome.simulated_recovery_ms,
            plan.recovery_latency_ms,
            tolerance
        );
        // The measured window dipped but recovered within the interval.
        assert!(outcome.measured_dip() > 0.0);
        assert!(outcome.recovered());
    }

    #[test]
    fn analytic_fallback_reports_blackout_dip() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2))
                .unwrap()
                .with_des_recovery(false);
        let serving = quick_config(5, 1).serving;
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving)
            .unwrap();
        assert_eq!(outcome.compliance_measured, outcome.compliance_during);
        assert_eq!(outcome.simulated_recovery_ms, 0.0);
    }

    #[test]
    fn load_shift_reconfigures_without_capacity_loss() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let serving = quick_config(5, 1).serving;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::LoadShift { multiplier: 1.3 }, &serving)
            .unwrap();
        assert_eq!(outcome.displaced_segments, 0);
        assert!(outcome.recovered());
        for spec in &orchestrator.specs {
            assert!(
                orchestrator.deployment.capacity_of(spec.id) + 1e-6 >= spec.request_rate_rps,
                "service {} uncovered after shift",
                spec.id
            );
        }
    }

    #[test]
    fn scale_up_adds_headroom_without_migration() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(1)).unwrap();
        let serving = quick_config(5, 1).serving;
        let slots_before = orchestrator.fleet().alive_slots().len();
        let outcome = orchestrator
            .handle_event(1, FleetEvent::ScaleUpGrant { pool: 0, nodes: 1 }, &serving)
            .unwrap();
        assert_eq!(outcome.migration.migrated_segments, 0);
        assert_eq!(outcome.migration.reflashed_gpus, 0);
        assert!(orchestrator.fleet().alive_slots().len() > slots_before);
    }

    #[test]
    fn exhausted_fleet_fails_loudly() {
        let book = ProfileBook::builtin();
        // Two nodes; the event generator never kills the last node, but the
        // orchestrator API can be driven into exhaustion directly: kill the
        // idle node out-of-band, then fail the one hosting all capacity.
        let spec = FleetSpec {
            pools: vec![crate::node::NodePool {
                name: "only".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::OnDemand,
                preemptible: false,
                count: 2,
                region: None,
            }],
        };
        let mut orchestrator = FleetOrchestrator::bootstrap(&book, &base_specs(), &spec)
            .unwrap()
            .with_max_replacements(0);
        let serving = quick_config(5, 1).serving;
        let hosting: Vec<usize> = orchestrator.placement().nodes_in_service();
        let idle: Vec<usize> = orchestrator
            .fleet()
            .alive_nodes()
            .into_iter()
            .filter(|n| !hosting.contains(n))
            .collect();
        for n in idle {
            orchestrator.fleet.kill(n);
        }
        let mut last_err = None;
        for &victim in &hosting {
            match orchestrator.handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving) {
                Ok(_) => {}
                Err(e) => {
                    last_err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(last_err, Some(FleetError::Placement { .. })),
            "killing every node must exhaust placement: {last_err:?}"
        );
    }

    #[test]
    fn retarget_scales_capacity_to_new_demand() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let targets: Vec<ServiceSpec> = base_specs()
            .iter()
            .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 1.4, s.slo.latency_ms))
            .collect();
        let outcome = orchestrator.retarget(1, &targets).unwrap();
        assert!(
            outcome.reconfigured_gpus > 0,
            "1.4x demand must reconfigure"
        );
        for t in &targets {
            assert!(
                orchestrator.deployment().capacity_of(t.id) + 1e-6 >= t.request_rate_rps,
                "service {} under-provisioned after retarget",
                t.id
            );
        }
        assert_eq!(
            orchestrator.specs()[0].request_rate_rps,
            targets[0].request_rate_rps
        );
        assert!(orchestrator.deployment().validate());
    }

    #[test]
    fn retarget_failure_is_transactional() {
        let book = ProfileBook::builtin();
        // One tight node, no replacements: a 100x surge cannot be hosted.
        let spec = FleetSpec {
            pools: vec![crate::node::NodePool {
                name: "tight".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::OnDemand,
                preemptible: false,
                count: 1,
                region: None,
            }],
        };
        let mut orchestrator = FleetOrchestrator::bootstrap(&book, &base_specs(), &spec)
            .unwrap()
            .with_max_replacements(0);
        let before_deployment = orchestrator.deployment().clone();
        let before_placement = orchestrator.placement().clone();
        let before_rate = orchestrator.specs()[0].request_rate_rps;
        let surge: Vec<ServiceSpec> = base_specs()
            .iter()
            .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 100.0, s.slo.latency_ms))
            .collect();
        assert!(orchestrator.retarget(1, &surge).is_err());
        // Everything rolled back: same map, same anchor, same demand.
        assert_eq!(
            orchestrator.deployment().segments(),
            before_deployment.segments()
        );
        assert_eq!(orchestrator.placement(), &before_placement);
        assert_eq!(orchestrator.specs()[0].request_rate_rps, before_rate);
    }

    #[test]
    fn capacity_event_hook_recovers_without_serving() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(2)).unwrap();
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .apply_capacity_event(1, &FleetEvent::NodeFailure { node: victim })
            .unwrap();
        assert!(outcome.displaced_segments > 0);
        assert!(outcome.migration.migrated_segments >= outcome.displaced_segments);
        for spec in base_specs() {
            assert!(
                orchestrator.deployment().capacity_of(spec.id) + 1e-6 >= spec.request_rate_rps,
                "service {} uncovered after hook recovery",
                spec.id
            );
        }
        assert!(orchestrator.deployment().validate());
    }

    #[test]
    fn evacuate_drains_everything() {
        let book = ProfileBook::builtin();
        let mut orchestrator =
            FleetOrchestrator::bootstrap(&book, &base_specs(), &FleetSpec::mixed_demo(1)).unwrap();
        let segments = orchestrator.deployment().segments().len();
        assert!(segments > 0);
        let drained = orchestrator.evacuate();
        assert_eq!(drained, segments);
        assert!(orchestrator.fleet().alive_nodes().is_empty());
        assert_eq!(orchestrator.deployment().segments().len(), 0);
        assert!(orchestrator.placement().slots.is_empty());
    }

    #[test]
    fn replacement_nodes_backfill_dead_capacity() {
        let book = ProfileBook::builtin();
        // A minimal fleet with zero headroom beyond what the plan needs:
        // killing a hosting node forces the control plane to provision a
        // replacement rather than erroring out.
        let spec = FleetSpec {
            pools: vec![crate::node::NodePool {
                name: "tight".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::OnDemand,
                preemptible: false,
                count: 1,
                region: None,
            }],
        };
        let mut orchestrator = FleetOrchestrator::bootstrap(&book, &base_specs(), &spec).unwrap();
        let serving = quick_config(5, 1).serving;
        let victim = orchestrator.placement().slot_of(0).unwrap().node;
        let outcome = orchestrator
            .handle_event(1, FleetEvent::NodeFailure { node: victim }, &serving)
            .unwrap();
        assert!(outcome.replacement_nodes > 0, "replacement expected");
        assert!(outcome.recovered(), "{}", outcome.compliance_after);
        assert!(orchestrator.deployment().validate());
        for spec in base_specs() {
            assert!(orchestrator.deployment().capacity_of(spec.id) + 1e-6 >= spec.request_rate_rps);
        }
    }
}
