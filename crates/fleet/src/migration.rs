//! Migration planning: what physically moves when the fleet recovers.
//!
//! A recovery step transforms `(deployment, placement)` — the logical map
//! plus its physical assignment — into a new pair. The migration plan is
//! the physical diff: which segments land on a different physical GPU (and
//! must reload weights there), which physical GPUs change MIG layout (and
//! must re-flash, paper §III-F's "milliseconds to a few seconds" window),
//! and how many GPCs are left stranded on in-service GPUs afterwards.

use crate::node::{Fleet, GpuSlot};
use crate::placer::FleetPlacement;
use parva_deploy::MigDeployment;
use parva_mig::Placement;
use parva_perf::PerfParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed cost of re-flashing one GPU's MIG layout (destroy + create
/// instances via NVML), milliseconds. Re-flashes run in parallel across
/// GPUs, so the plan charges it once if any GPU re-flashes.
pub const MIG_REFLASH_MS: f64 = 800.0;

/// Host-to-device copy bandwidth for reloading model weights on the target
/// GPU, GiB/s (PCIe Gen4 x16 effective).
pub const WEIGHT_COPY_GIB_PER_S: f64 = 22.0;

/// Scheduler + control-plane overhead charged per recovery, milliseconds.
pub const CONTROL_PLANE_MS: f64 = 150.0;

/// The physical movement a recovery implies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Segments that ended up on a different physical GPU (weights reload).
    pub migrated_segments: usize,
    /// Physical GPUs whose MIG layout changed (need a re-flash).
    pub reflashed_gpus: usize,
    /// Model weights moved to new GPUs, GiB.
    pub weight_copy_gib: f64,
    /// Free GPCs stranded on in-service physical GPUs after recovery.
    pub stranded_gpcs: u32,
    /// Analytic end-to-end recovery latency, ms: control plane + one
    /// parallel re-flash wave + the largest per-GPU weight-copy batch.
    pub recovery_latency_ms: f64,
}

/// One physical segment identity: where it runs and what it is.
type PhysicalSegment = (GpuSlot, Placement, u32);

fn physical_segments(
    deployment: &MigDeployment,
    placement: &FleetPlacement,
) -> Vec<(PhysicalSegment, f64)> {
    deployment
        .segments()
        .iter()
        .filter_map(|ps| {
            placement.slot_of(ps.gpu).map(|slot| {
                let weights = PerfParams::for_model(ps.segment.model).weights_gib;
                ((slot, ps.placement, ps.segment.service_id), weights)
            })
        })
        .collect()
}

/// Per-physical-GPU layout (multiset of placements).
fn layouts(
    deployment: &MigDeployment,
    placement: &FleetPlacement,
) -> BTreeMap<GpuSlot, Vec<Placement>> {
    let mut map: BTreeMap<GpuSlot, Vec<Placement>> = BTreeMap::new();
    for ps in deployment.segments() {
        if let Some(slot) = placement.slot_of(ps.gpu) {
            map.entry(slot).or_default().push(ps.placement);
        }
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

impl MigrationPlan {
    /// Diff two `(deployment, placement)` states into a migration plan.
    #[must_use]
    pub fn between(
        before: (&MigDeployment, &FleetPlacement),
        after: (&MigDeployment, &FleetPlacement),
        fleet: &Fleet,
    ) -> Self {
        let old: Vec<(PhysicalSegment, f64)> = physical_segments(before.0, before.1);
        let new: Vec<(PhysicalSegment, f64)> = physical_segments(after.0, after.1);

        // A segment "stays" when an identical physical identity existed
        // before; extras (count-aware) are migrations/new launches.
        let mut old_counts: BTreeMap<PhysicalSegment, usize> = BTreeMap::new();
        for (k, _) in &old {
            *old_counts.entry(*k).or_insert(0) += 1;
        }
        let mut migrated = 0usize;
        let mut weight_copy_gib = 0.0;
        let mut per_gpu_copy: BTreeMap<GpuSlot, f64> = BTreeMap::new();
        for (k, weights) in &new {
            match old_counts.get_mut(k) {
                Some(n) if *n > 0 => *n -= 1,
                _ => {
                    migrated += 1;
                    weight_copy_gib += weights;
                    *per_gpu_copy.entry(k.0).or_insert(0.0) += weights;
                }
            }
        }

        let old_layouts = layouts(before.0, before.1);
        let new_layouts = layouts(after.0, after.1);
        let mut reflashed = 0usize;
        for (slot, layout) in &new_layouts {
            if old_layouts.get(slot) != Some(layout) {
                reflashed += 1;
            }
        }
        // GPUs that went fully dark on *surviving* nodes also re-flash to
        // empty; dead nodes' GPUs do not — nobody is left to flash them.
        for slot in old_layouts.keys() {
            if !new_layouts.contains_key(slot) && fleet.node(slot.node).alive {
                reflashed += 1;
            }
        }

        let stranded_gpcs: u32 = {
            let mut used: BTreeMap<GpuSlot, u32> = BTreeMap::new();
            for ps in after.0.segments() {
                if let Some(slot) = after.1.slot_of(ps.gpu) {
                    *used.entry(slot).or_insert(0) += u32::from(ps.segment.gpcs());
                }
            }
            used.values()
                .map(|&gpcs| u32::from(parva_mig::COMPUTE_SLICES).saturating_sub(gpcs))
                .sum()
        };

        let worst_copy_s =
            per_gpu_copy.values().fold(0.0f64, |a, &b| a.max(b)) / WEIGHT_COPY_GIB_PER_S;
        let recovery_latency_ms = CONTROL_PLANE_MS
            + if reflashed > 0 { MIG_REFLASH_MS } else { 0.0 }
            + worst_copy_s * 1_000.0;

        Self {
            migrated_segments: migrated,
            reflashed_gpus: reflashed,
            weight_copy_gib,
            stranded_gpcs,
            recovery_latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Fleet, FleetSpec};
    use crate::placer::place_on_fleet;
    use parva_deploy::Segment;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn deployment(n: usize) -> MigDeployment {
        let mut d = MigDeployment::new();
        for i in 0..n {
            d.place_first_fit(Segment {
                service_id: i as u32,
                model: Model::ResNet50,
                triplet: Triplet::new(InstanceProfile::G7, 8, 2),
                throughput_rps: 1000.0,
                latency_ms: 10.0,
            });
        }
        d
    }

    #[test]
    fn identity_diff_is_empty() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let d = deployment(4);
        let p = place_on_fleet(&d, &fleet).unwrap();
        let plan = MigrationPlan::between((&d, &p), (&d, &p), &fleet);
        assert_eq!(plan.migrated_segments, 0);
        assert_eq!(plan.reflashed_gpus, 0);
        assert_eq!(plan.weight_copy_gib, 0.0);
        assert!((plan.recovery_latency_ms - CONTROL_PLANE_MS).abs() < 1e-9);
    }

    #[test]
    fn moving_one_gpu_charges_reflash_and_copy() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let d = deployment(2);
        let before = place_on_fleet(&d, &fleet).unwrap();
        let mut after = before.clone();
        // Relocate logical GPU 1 to a different physical slot.
        let taken: Vec<_> = before.slots.iter().map(|(_, s)| *s).collect();
        let spare = fleet
            .alive_slots()
            .into_iter()
            .find(|s| !taken.contains(s))
            .expect("fleet has spare slots");
        after.slots[1].1 = spare;
        let plan = MigrationPlan::between((&d, &before), (&d, &after), &fleet);
        assert_eq!(plan.migrated_segments, 1);
        // The vacated slot re-flashes to empty, the target re-flashes to
        // the new layout.
        assert_eq!(plan.reflashed_gpus, 2);
        assert!(plan.weight_copy_gib > 0.0);
        assert!(plan.recovery_latency_ms > CONTROL_PLANE_MS + MIG_REFLASH_MS);
    }
}
