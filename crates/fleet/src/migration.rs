//! Migration planning: what physically moves when the fleet recovers.
//!
//! A recovery step transforms `(deployment, placement)` — the logical map
//! plus its physical assignment — into a new pair. The migration plan is
//! the physical diff: which segments land on a different physical GPU (and
//! must reload weights there), which physical GPUs change MIG layout (and
//! must re-flash, paper §III-F's "milliseconds to a few seconds" window),
//! and how many GPCs are left stranded on in-service GPUs afterwards.

use crate::node::{Fleet, GpuSlot};
use crate::placer::FleetPlacement;
use parva_deploy::MigDeployment;
use parva_mig::Placement;
use parva_perf::PerfParams;
use parva_serve::{RecoveryOp, RecoverySpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed cost of re-flashing one GPU's MIG layout (destroy + create
/// instances via NVML), milliseconds. Re-flashes run in parallel across
/// *nodes*, but NVML serializes re-flashes on the same node, so the
/// analytic model charges the worst per-node re-flash count as one wave
/// per queued GPU.
pub const MIG_REFLASH_MS: f64 = 800.0;

/// Host-to-device copy bandwidth for reloading model weights on the target
/// GPU, GiB/s (PCIe Gen4 x16 effective).
pub const WEIGHT_COPY_GIB_PER_S: f64 = 22.0;

/// Scheduler + control-plane overhead charged per recovery, milliseconds.
pub const CONTROL_PLANE_MS: f64 = 150.0;

/// The physical movement a recovery implies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Segments that ended up on a different physical GPU (weights reload).
    pub migrated_segments: usize,
    /// Physical GPUs whose MIG layout changed (need a re-flash).
    pub reflashed_gpus: usize,
    /// Worst per-node re-flash count: NVML serializes re-flashes on one
    /// node, so this many waves run back to back on the busiest node.
    pub reflash_waves: usize,
    /// Model weights moved to new GPUs, GiB.
    pub weight_copy_gib: f64,
    /// Free GPCs stranded on in-service physical GPUs after recovery.
    pub stranded_gpcs: u32,
    /// Analytic end-to-end recovery latency, ms: control plane + the worst
    /// per-node serialized re-flash queue + the largest per-GPU
    /// weight-copy batch. The DES-simulated path
    /// ([`MigrationPlan::to_recovery_spec`]) additionally charges PCIe
    /// contention between copies landing on the same node.
    pub recovery_latency_ms: f64,
    /// Per-GPU recovery work lowered for the serving DES (deterministic
    /// slot order): hosting node, logical GPU of the recovered map,
    /// re-flash flag and inbound weight GiB.
    pub ops: Vec<RecoveryOp>,
}

/// One physical segment identity: where it runs and what it is.
type PhysicalSegment = (GpuSlot, Placement, u32);

fn physical_segments(
    deployment: &MigDeployment,
    placement: &FleetPlacement,
) -> Vec<(PhysicalSegment, f64)> {
    deployment
        .segments()
        .iter()
        .filter_map(|ps| {
            placement.slot_of(ps.gpu).map(|slot| {
                let weights = PerfParams::for_model(ps.segment.model).weights_gib;
                ((slot, ps.placement, ps.segment.service_id), weights)
            })
        })
        .collect()
}

/// Per-physical-GPU layout (multiset of placements).
fn layouts(
    deployment: &MigDeployment,
    placement: &FleetPlacement,
) -> BTreeMap<GpuSlot, Vec<Placement>> {
    let mut map: BTreeMap<GpuSlot, Vec<Placement>> = BTreeMap::new();
    for ps in deployment.segments() {
        if let Some(slot) = placement.slot_of(ps.gpu) {
            map.entry(slot).or_default().push(ps.placement);
        }
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

impl MigrationPlan {
    /// Diff two `(deployment, placement)` states into a migration plan.
    #[must_use]
    pub fn between(
        before: (&MigDeployment, &FleetPlacement),
        after: (&MigDeployment, &FleetPlacement),
        fleet: &Fleet,
    ) -> Self {
        let old: Vec<(PhysicalSegment, f64)> = physical_segments(before.0, before.1);
        let new: Vec<(PhysicalSegment, f64)> = physical_segments(after.0, after.1);

        // A segment "stays" when an identical physical identity existed
        // before; extras (count-aware) are migrations/new launches.
        let mut old_counts: BTreeMap<PhysicalSegment, usize> = BTreeMap::new();
        for (k, _) in &old {
            *old_counts.entry(*k).or_insert(0) += 1;
        }
        let mut migrated = 0usize;
        let mut weight_copy_gib = 0.0;
        let mut per_gpu_copy: BTreeMap<GpuSlot, f64> = BTreeMap::new();
        for (k, weights) in &new {
            match old_counts.get_mut(k) {
                Some(n) if *n > 0 => *n -= 1,
                _ => {
                    migrated += 1;
                    weight_copy_gib += weights;
                    *per_gpu_copy.entry(k.0).or_insert(0.0) += weights;
                }
            }
        }

        let old_layouts = layouts(before.0, before.1);
        let new_layouts = layouts(after.0, after.1);
        // Physical slot → logical GPU of the recovered map (placements are
        // injective: each logical GPU owns one slot).
        let logical_of: BTreeMap<GpuSlot, usize> =
            after.1.slots.iter().map(|&(l, s)| (s, l)).collect();
        let mut reflashed = 0usize;
        let mut reflashed_slots: Vec<GpuSlot> = Vec::new();
        for (slot, layout) in &new_layouts {
            if old_layouts.get(slot) != Some(layout) {
                reflashed += 1;
                reflashed_slots.push(*slot);
            }
        }
        // GPUs that went fully dark on *surviving* nodes also re-flash to
        // empty; dead nodes' GPUs do not — nobody is left to flash them.
        let mut vacated_slots: Vec<GpuSlot> = Vec::new();
        for slot in old_layouts.keys() {
            if !new_layouts.contains_key(slot) && fleet.node(slot.node).alive {
                reflashed += 1;
                vacated_slots.push(*slot);
            }
        }

        // Lower the physical work to per-GPU recovery ops, slot order.
        let mut ops: Vec<RecoveryOp> = Vec::new();
        let affected: std::collections::BTreeSet<GpuSlot> = reflashed_slots
            .iter()
            .chain(per_gpu_copy.keys())
            .copied()
            .collect();
        for slot in affected {
            ops.push(RecoveryOp {
                node: slot.node,
                logical_gpu: logical_of.get(&slot).copied(),
                reflash: reflashed_slots.contains(&slot),
                copy_gib: per_gpu_copy.get(&slot).copied().unwrap_or(0.0),
                prepared: false,
            });
        }
        for slot in vacated_slots {
            ops.push(RecoveryOp {
                node: slot.node,
                logical_gpu: None,
                reflash: true,
                copy_gib: 0.0,
                prepared: false,
            });
        }

        // Worst per-node re-flash queue (NVML serializes within a node).
        let mut per_node_reflash: BTreeMap<usize, usize> = BTreeMap::new();
        for op in ops.iter().filter(|o| o.reflash) {
            *per_node_reflash.entry(op.node).or_insert(0) += 1;
        }
        let reflash_waves = per_node_reflash.values().copied().max().unwrap_or(0);

        let stranded_gpcs: u32 = {
            let mut used: BTreeMap<GpuSlot, u32> = BTreeMap::new();
            for ps in after.0.segments() {
                if let Some(slot) = after.1.slot_of(ps.gpu) {
                    *used.entry(slot).or_insert(0) += u32::from(ps.segment.gpcs());
                }
            }
            used.values()
                .map(|&gpcs| u32::from(parva_mig::COMPUTE_SLICES).saturating_sub(gpcs))
                .sum()
        };

        let worst_copy_s =
            per_gpu_copy.values().fold(0.0f64, |a, &b| a.max(b)) / WEIGHT_COPY_GIB_PER_S;
        let recovery_latency_ms =
            CONTROL_PLANE_MS + reflash_waves as f64 * MIG_REFLASH_MS + worst_copy_s * 1_000.0;

        Self {
            migrated_segments: migrated,
            reflashed_gpus: reflashed,
            reflash_waves,
            weight_copy_gib,
            stranded_gpcs,
            recovery_latency_ms,
            ops,
        }
    }

    /// The provable lower bound on any recovery's end-to-end latency: the
    /// control plane must react, and the slowest single GPU must finish
    /// its own re-flash (if any) followed by its own inbound weight copy.
    /// Per op those two serialize — the layout must exist before weights
    /// load — but re-flashes and copies on *different* GPUs overlap, so
    /// the bound maximizes over ops rather than summing the global worst
    /// re-flash and worst copy (which the DES can legitimately beat by
    /// overlapping them). The DES-simulated latency can only sit at or
    /// above this (it additionally queues re-flashes and copies per node).
    #[must_use]
    pub fn analytic_lower_bound_ms(&self) -> f64 {
        let worst_op_ms = self
            .ops
            .iter()
            .map(|o| {
                let reflash = if o.reflash { MIG_REFLASH_MS } else { 0.0 };
                reflash + o.copy_gib / WEIGHT_COPY_GIB_PER_S * 1_000.0
            })
            .fold(0.0f64, f64::max);
        CONTROL_PLANE_MS + worst_op_ms
    }

    /// The matching upper bound: every re-flash wave on the busiest node
    /// plus *all* copies serialized behind each other on one link. The
    /// DES schedule can never exceed it.
    #[must_use]
    pub fn analytic_upper_bound_ms(&self) -> f64 {
        let total_copy_s: f64 =
            self.ops.iter().map(|o| o.copy_gib).sum::<f64>() / WEIGHT_COPY_GIB_PER_S;
        CONTROL_PLANE_MS + self.reflash_waves as f64 * MIG_REFLASH_MS + total_copy_s * 1_000.0
    }

    /// Lower the plan into a serving-DES recovery spec starting at
    /// `start_ms` into the window. `prepared` marks every op pre-staged
    /// (§III-F shadow pre-copy on a spot warning / evacuation notice):
    /// only the control-plane delay remains to be paid live.
    #[must_use]
    pub fn to_recovery_spec(&self, start_ms: f64, prepared: bool) -> RecoverySpec {
        let spec = recovery_spec_from_ops(self.ops.clone(), start_ms);
        if prepared {
            spec.prepared()
        } else {
            spec
        }
    }

    /// Lower the plan under a *bounded* pre-copy budget (GiB of weights a
    /// warning window can move before it expires): ops are staged
    /// largest-copy-first — the biggest inbound copy dominates the live
    /// recovery window, so it is the most valuable to pre-stage — until
    /// the budget runs dry; whatever did not fit is paid live. Op order is
    /// preserved (it feeds the DES's per-node re-flash/copy serialization);
    /// only the `prepared` flags change. A warning that cannot cover the
    /// whole plan thus buys a *partial* recovery window instead of the old
    /// all-or-nothing cliff, and a budget that covers everything is exactly
    /// [`to_recovery_spec`](Self::to_recovery_spec) with `prepared: true`.
    #[must_use]
    pub fn to_partial_recovery_spec(&self, start_ms: f64, budget_gib: f64) -> RecoverySpec {
        let mut ops = self.ops.clone();
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by(|&a, &b| {
            ops[b]
                .copy_gib
                .partial_cmp(&ops[a].copy_gib)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut remaining = budget_gib;
        for i in order {
            // Re-flash-only ops (copy_gib = 0) cost no bandwidth and
            // always pre-stage; a copy is staged only if it fits whole —
            // a half-copied weight file is not a servable model.
            if ops[i].copy_gib <= remaining {
                remaining -= ops[i].copy_gib;
                ops[i].prepared = true;
            }
        }
        recovery_spec_from_ops(ops, start_ms)
    }
}

/// Assemble a serving-DES recovery spec from already-lowered ops, wiring
/// in the fleet's physical constants (control plane, re-flash cost, PCIe
/// bandwidth). Shared by [`MigrationPlan::to_recovery_spec`] and callers
/// that accumulate ops across several plans (the region federation).
#[must_use]
pub fn recovery_spec_from_ops(ops: Vec<RecoveryOp>, start_ms: f64) -> RecoverySpec {
    RecoverySpec {
        start_ms,
        control_plane_ms: CONTROL_PLANE_MS,
        reflash_ms: MIG_REFLASH_MS,
        link_gib_per_s: WEIGHT_COPY_GIB_PER_S,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Fleet, FleetSpec};
    use crate::placer::place_on_fleet;
    use parva_deploy::Segment;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn deployment(n: usize) -> MigDeployment {
        let mut d = MigDeployment::new();
        for i in 0..n {
            d.place_first_fit(Segment {
                service_id: i as u32,
                model: Model::ResNet50,
                triplet: Triplet::new(InstanceProfile::G7, 8, 2),
                throughput_rps: 1000.0,
                latency_ms: 10.0,
            });
        }
        d
    }

    #[test]
    fn identity_diff_is_empty() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let d = deployment(4);
        let p = place_on_fleet(&d, &fleet).unwrap();
        let plan = MigrationPlan::between((&d, &p), (&d, &p), &fleet);
        assert_eq!(plan.migrated_segments, 0);
        assert_eq!(plan.reflashed_gpus, 0);
        assert_eq!(plan.weight_copy_gib, 0.0);
        assert!((plan.recovery_latency_ms - CONTROL_PLANE_MS).abs() < 1e-9);
    }

    fn plan_with_ops(ops: Vec<RecoveryOp>) -> MigrationPlan {
        let weight_copy_gib = ops.iter().map(|o| o.copy_gib).sum();
        MigrationPlan {
            migrated_segments: ops.iter().filter(|o| o.copy_gib > 0.0).count(),
            reflashed_gpus: ops.iter().filter(|o| o.reflash).count(),
            reflash_waves: 1,
            weight_copy_gib,
            stranded_gpcs: 0,
            recovery_latency_ms: 0.0,
            ops,
        }
    }

    #[test]
    fn partial_budget_stages_largest_copies_first_without_reordering() {
        let plan = plan_with_ops(vec![
            RecoveryOp {
                node: 0,
                logical_gpu: Some(0),
                reflash: true,
                copy_gib: 2.0,
                prepared: false,
            },
            RecoveryOp {
                node: 0,
                logical_gpu: Some(1),
                reflash: false,
                copy_gib: 10.0,
                prepared: false,
            },
            RecoveryOp {
                node: 1,
                logical_gpu: Some(2),
                reflash: false,
                copy_gib: 5.0,
                prepared: false,
            },
        ]);
        // Budget 12: the 10-GiB copy stages first (largest), 5 no longer
        // fits, 2 does. Op order must be untouched.
        let spec = plan.to_partial_recovery_spec(100.0, 12.0);
        let prepared: Vec<bool> = spec.ops.iter().map(|o| o.prepared).collect();
        assert_eq!(prepared, vec![true, true, false]);
        let order: Vec<f64> = spec.ops.iter().map(|o| o.copy_gib).collect();
        assert_eq!(order, vec![2.0, 10.0, 5.0]);
        // A covering budget prepares everything — exactly the old
        // all-or-nothing "covered" branch.
        let full = plan.to_partial_recovery_spec(100.0, 17.0);
        assert!(full.ops.iter().all(|o| o.prepared));
        let covered = plan.to_recovery_spec(100.0, true);
        assert_eq!(full, covered);
        // A zero budget stages nothing with these all-copy ops...
        let zero = plan.to_partial_recovery_spec(100.0, 0.0);
        assert!(zero.ops.iter().all(|o| !o.prepared));
        // ...but re-flash-only ops are bandwidth-free and always stage.
        let flash_only = plan_with_ops(vec![RecoveryOp {
            node: 0,
            logical_gpu: Some(0),
            reflash: true,
            copy_gib: 0.0,
            prepared: false,
        }]);
        assert!(flash_only.to_partial_recovery_spec(100.0, 0.0).ops[0].prepared);
    }

    #[test]
    fn partial_precopy_dip_sits_between_cold_and_fully_prepared() {
        // The regression the partial path exists for: a warning whose
        // budget covers only part of the copy volume must pay a *partial*
        // recovery window — never worse than cold, never better than
        // fully staged.
        use parva_deploy::Scheduler;
        let book = parva_profile::ProfileBook::builtin();
        let specs = crate::demo_services();
        let d = parva_core::ParvaGpu::new(&book).schedule(&specs).unwrap();
        let plan = plan_with_ops(vec![
            RecoveryOp {
                node: 0,
                logical_gpu: Some(0),
                reflash: true,
                copy_gib: 40.0,
                prepared: false,
            },
            RecoveryOp {
                node: 0,
                logical_gpu: Some(1),
                reflash: true,
                copy_gib: 10.0,
                prepared: false,
            },
        ]);
        let cold = plan.to_partial_recovery_spec(600.0, 0.0);
        let partial = plan.to_partial_recovery_spec(600.0, 45.0); // stages the 40-GiB op
        let full = plan.to_partial_recovery_spec(600.0, 50.0);
        assert_eq!(partial.prepared_gib(), 40.0);
        let cfg = parva_serve::ServingConfig {
            warmup_s: 0.5,
            duration_s: 3.0,
            drain_s: 1.0,
            seed: 11,
            ..parva_serve::ServingConfig::default()
        };
        let run = |spec: &RecoverySpec| {
            parva_serve::Simulation::new(&d, &specs)
                .recovery(spec)
                .config(&cfg)
                .run()
                .overall_request_compliance_rate()
        };
        let (c_cold, c_partial, c_full) = (run(&cold), run(&partial), run(&full));
        assert!(
            c_partial >= c_cold,
            "partial precopy ({c_partial:.4}) worse than cold ({c_cold:.4})"
        );
        assert!(
            c_full >= c_partial,
            "full precopy ({c_full:.4}) worse than partial ({c_partial:.4})"
        );
        assert!(
            c_partial > c_cold,
            "staging the dominant copy must shrink the dip ({c_partial:.4} vs {c_cold:.4})"
        );
    }

    #[test]
    fn moving_one_gpu_charges_reflash_and_copy() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let d = deployment(2);
        let before = place_on_fleet(&d, &fleet).unwrap();
        let mut after = before.clone();
        // Relocate logical GPU 1 to a different physical slot.
        let taken: Vec<_> = before.slots.iter().map(|(_, s)| *s).collect();
        let spare = fleet
            .alive_slots()
            .into_iter()
            .find(|s| !taken.contains(s))
            .expect("fleet has spare slots");
        after.slots[1].1 = spare;
        let plan = MigrationPlan::between((&d, &before), (&d, &after), &fleet);
        assert_eq!(plan.migrated_segments, 1);
        // The vacated slot re-flashes to empty, the target re-flashes to
        // the new layout.
        assert_eq!(plan.reflashed_gpus, 2);
        assert!(plan.weight_copy_gib > 0.0);
        assert!(plan.recovery_latency_ms > CONTROL_PLANE_MS + MIG_REFLASH_MS);
    }
}
