//! Mapping the scheduler's *logical* GPUs onto *physical* heterogeneous
//! fleet slots.
//!
//! The ParvaGPU two-stage scheduler (paper §III) emits a [`MigDeployment`]
//! over anonymous, A100-geometry GPUs. All catalog models share the 7-slice
//! MIG geometry (paper §V), so a logical GPU's *layout* is realizable on any
//! slot; what differs per model is **memory per slice**, which decides
//! whether each resident segment's working set still fits. The placer
//! therefore solves a feasibility-aware assignment:
//!
//! * every logical GPU with segments gets exactly one physical slot whose
//!   GPU model can hold all of its segments' working sets;
//! * per-node vCPU budgets (2 vCPUs per inference process, as in
//!   `parva_cluster::pack`) are respected;
//! * assignment is best-fit by memory (demanding layouts go to roomy
//!   GPUs last, keeping big-memory slots free), deterministic, and —
//!   via [`place_sticky`] — minimally disruptive: logical GPUs keep their
//!   previous slot whenever it is still alive and feasible.

use crate::node::{Fleet, GpuSlot};
use parva_cluster::VCPUS_PER_PROCESS;
use parva_deploy::MigDeployment;
use parva_mig::{GpuModel, Placement};
use parva_perf::math::fits_memory_on;
use parva_perf::ComputeShare;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A complete logical → physical assignment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetPlacement {
    /// `logical GPU index → physical slot` (only GPUs with segments).
    pub slots: Vec<(usize, GpuSlot)>,
}

impl FleetPlacement {
    /// The slot of one logical GPU, if assigned.
    #[must_use]
    pub fn slot_of(&self, logical: usize) -> Option<GpuSlot> {
        self.slots
            .iter()
            .find(|(l, _)| *l == logical)
            .map(|(_, s)| *s)
    }

    /// Node ids hosting at least one logical GPU.
    #[must_use]
    pub fn nodes_in_service(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.slots.iter().map(|(_, s)| s.node).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Why a placement attempt failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementError {
    /// A logical GPU's segments fit no alive slot (by memory or because
    /// every feasible slot is taken / vCPU-exhausted).
    NoFeasibleSlot {
        /// The logical GPU that could not be hosted.
        logical_gpu: usize,
        /// GiB demanded by its most memory-hungry segment per memory slice.
        needed_gib_per_slice: f64,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoFeasibleSlot { logical_gpu, needed_gib_per_slice } => write!(
                f,
                "logical GPU {logical_gpu} (needs {needed_gib_per_slice:.1} GiB/slice) fits no alive slot"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Can every segment on `logical` run on GPU model `model`?
fn gpu_feasible(deployment: &MigDeployment, logical: usize, model: GpuModel) -> bool {
    deployment.segments_on(logical).all(|ps| {
        fits_memory_on(
            ps.segment.model,
            ComputeShare::Mig(ps.segment.triplet.instance),
            ps.segment.triplet.batch,
            ps.segment.triplet.procs,
            model,
        )
    })
}

/// Smallest per-slice memory (GiB) a logical GPU's segment set requires —
/// the sort key that sends demanding layouts to roomy slots first.
fn min_gib_per_slice(deployment: &MigDeployment, logical: usize) -> f64 {
    deployment
        .segments_on(logical)
        .map(|ps| {
            let t = &ps.segment.triplet;
            let need = parva_perf::math::memory_gib(ps.segment.model, t.batch, t.procs);
            need / f64::from(t.instance.memory_slices())
        })
        .fold(0.0, f64::max)
}

/// vCPUs a logical GPU's server processes consume on its host node.
fn vcpus_of(deployment: &MigDeployment, logical: usize) -> u32 {
    deployment
        .segments_on(logical)
        .map(|ps| ps.segment.triplet.procs)
        .sum::<u32>()
        * VCPUS_PER_PROCESS
}

/// One element of a [`LayoutSignature`]: `(placement, service, batch,
/// procs)`.
type SignatureEntry = (Placement, u32, u32, u32);

/// Layout signature of a logical GPU — identical signatures mean
/// physically indistinguishable GPUs.
type LayoutSignature = Vec<SignatureEntry>;

fn layout_signature(deployment: &MigDeployment, logical: usize) -> LayoutSignature {
    let mut sig: LayoutSignature = deployment
        .segments_on(logical)
        .map(|ps| {
            (
                ps.placement,
                ps.segment.service_id,
                ps.segment.triplet.batch,
                ps.segment.triplet.procs,
            )
        })
        .collect();
    sig.sort_unstable();
    sig
}

/// Carry a placement across a deployment transformation that may have
/// renumbered logical GPUs (the §III-F reconfiguration path ends in
/// `compact()`): a new logical GPU inherits the slot of an old logical GPU
/// with the identical layout signature, so the sticky placer keeps
/// physically unchanged GPUs in place and migration counts stay honest.
#[must_use]
pub fn translate_placement(
    old: (&MigDeployment, &FleetPlacement),
    new_deployment: &MigDeployment,
) -> FleetPlacement {
    let mut pool: Vec<(LayoutSignature, GpuSlot)> = old
        .1
        .slots
        .iter()
        .map(|&(logical, slot)| (layout_signature(old.0, logical), slot))
        .collect();
    let mut out = FleetPlacement::default();
    for logical in 0..new_deployment.gpu_count() {
        let sig = layout_signature(new_deployment, logical);
        if sig.is_empty() {
            continue;
        }
        if let Some(i) = pool.iter().position(|(s, _)| *s == sig) {
            let (_, slot) = pool.swap_remove(i);
            out.slots.push((logical, slot));
        }
    }
    out.slots.sort_unstable_by_key(|(l, _)| *l);
    out
}

/// Assign every non-empty logical GPU a physical slot, from scratch.
///
/// # Errors
/// [`PlacementError::NoFeasibleSlot`] when the alive fleet cannot host some
/// logical GPU.
pub fn place_on_fleet(
    deployment: &MigDeployment,
    fleet: &Fleet,
) -> Result<FleetPlacement, PlacementError> {
    place_sticky(deployment, fleet, &FleetPlacement::default())
}

/// Like [`place_on_fleet`], but logical GPUs keep their slot from
/// `previous` whenever that slot is still alive and feasible — the live-
/// migration minimizer: only displaced or newly created logical GPUs move.
///
/// # Errors
/// [`PlacementError::NoFeasibleSlot`] when the alive fleet cannot host some
/// logical GPU.
pub fn place_sticky(
    deployment: &MigDeployment,
    fleet: &Fleet,
    previous: &FleetPlacement,
) -> Result<FleetPlacement, PlacementError> {
    let mut free: Vec<GpuSlot> = fleet.alive_slots();
    let mut node_vcpus: HashMap<usize, u32> = HashMap::new();
    let mut out = FleetPlacement::default();

    let occupied: Vec<usize> = (0..deployment.gpu_count())
        .filter(|&g| deployment.segments_on(g).next().is_some())
        .collect();

    // Pass 1: sticky retention.
    let mut pending: Vec<usize> = Vec::new();
    for &logical in &occupied {
        let prev = previous.slot_of(logical).filter(|s| free.contains(s));
        match prev {
            Some(slot)
                if gpu_feasible(deployment, logical, fleet.slot_model(slot))
                    && fits_node_vcpus(
                        fleet,
                        &node_vcpus,
                        slot.node,
                        vcpus_of(deployment, logical),
                    ) =>
            {
                free.retain(|s| *s != slot);
                *node_vcpus.entry(slot.node).or_insert(0) += vcpus_of(deployment, logical);
                out.slots.push((logical, slot));
            }
            _ => pending.push(logical),
        }
    }

    // Pass 2: best-fit for the rest, most memory-demanding first.
    pending.sort_by(|&a, &b| {
        min_gib_per_slice(deployment, b)
            .total_cmp(&min_gib_per_slice(deployment, a))
            .then(a.cmp(&b))
    });
    for logical in pending {
        let need_vcpus = vcpus_of(deployment, logical);
        // Among feasible free slots, pick the smallest-memory GPU model;
        // ties break on (node, slot) for determinism.
        let best = free
            .iter()
            .copied()
            .filter(|&s| {
                gpu_feasible(deployment, logical, fleet.slot_model(s))
                    && fits_node_vcpus(fleet, &node_vcpus, s.node, need_vcpus)
            })
            .min_by(|&a, &b| {
                fleet
                    .slot_model(a)
                    .mem_per_slice_gib
                    .total_cmp(&fleet.slot_model(b).mem_per_slice_gib)
                    .then(a.node.cmp(&b.node))
                    .then(a.slot.cmp(&b.slot))
            });
        let Some(slot) = best else {
            return Err(PlacementError::NoFeasibleSlot {
                logical_gpu: logical,
                needed_gib_per_slice: min_gib_per_slice(deployment, logical),
            });
        };
        free.retain(|s| *s != slot);
        *node_vcpus.entry(slot.node).or_insert(0) += need_vcpus;
        out.slots.push((logical, slot));
    }

    out.slots.sort_unstable_by_key(|(l, _)| *l);
    Ok(out)
}

fn fits_node_vcpus(
    fleet: &Fleet,
    node_vcpus: &HashMap<usize, u32>,
    node: usize,
    demand: u32,
) -> bool {
    node_vcpus.get(&node).copied().unwrap_or(0) + demand <= fleet.node(node).node.vcpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FleetSpec;
    use parva_deploy::Segment;
    use parva_mig::InstanceProfile;
    use parva_perf::Model;
    use parva_profile::Triplet;

    fn seg(id: u32, model: Model, profile: InstanceProfile, batch: u32) -> Segment {
        Segment {
            service_id: id,
            model,
            triplet: Triplet::new(profile, batch, 1),
            throughput_rps: 100.0,
            latency_ms: 10.0,
        }
    }

    #[test]
    fn assigns_each_logical_gpu_one_alive_slot() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let mut d = MigDeployment::new();
        for i in 0..5 {
            d.place_first_fit(seg(i, Model::ResNet50, InstanceProfile::G7, 8));
        }
        let p = place_on_fleet(&d, &fleet).unwrap();
        assert_eq!(p.slots.len(), 5);
        let mut slots: Vec<GpuSlot> = p.slots.iter().map(|(_, s)| *s).collect();
        slots.sort_unstable_by_key(|s| (s.node, s.slot));
        slots.dedup();
        assert_eq!(slots.len(), 5, "double-booked slot");
    }

    #[test]
    fn memory_hungry_layouts_avoid_small_gpus() {
        // Guanaco-65B's ~41 GiB working set exceeds a whole A100-40GB but
        // fits 80 GB parts — the placer must route it off the p4d pool.
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let mut d = MigDeployment::new();
        d.place_first_fit(seg(0, Model::Guanaco65B, InstanceProfile::G7, 1));
        let model_40 = parva_mig::GpuModel::A100_40GB;
        assert!(
            !gpu_feasible(&d, 0, model_40),
            "fixture must not fit the 40 GB part"
        );
        let p = place_on_fleet(&d, &fleet).unwrap();
        let slot = p.slot_of(0).unwrap();
        assert!(fleet.slot_model(slot).mem_per_slice_gib > model_40.mem_per_slice_gib);
    }

    #[test]
    fn sticky_keeps_surviving_assignments() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let mut d = MigDeployment::new();
        for i in 0..4 {
            d.place_first_fit(seg(i, Model::MobileNetV2, InstanceProfile::G3, 8));
        }
        let first = place_on_fleet(&d, &fleet).unwrap();
        // Add one more logical GPU; previous assignments must not move.
        d.place_first_fit(seg(9, Model::MobileNetV2, InstanceProfile::G7, 8));
        let second = place_sticky(&d, &fleet, &first).unwrap();
        for (logical, slot) in &first.slots {
            assert_eq!(
                second.slot_of(*logical),
                Some(*slot),
                "logical {logical} moved"
            );
        }
    }

    #[test]
    fn infeasible_when_fleet_too_small() {
        let fleet = Fleet::provision(&FleetSpec {
            pools: vec![crate::node::NodePool {
                name: "tiny".into(),
                node: parva_cluster::NodeType::P4DE_24XLARGE,
                pricing: parva_cluster::PricingPlan::OnDemand,
                preemptible: false,
                count: 1,
                region: None,
            }],
        });
        let mut d = MigDeployment::new();
        for i in 0..9 {
            d.place_first_fit(seg(i, Model::ResNet50, InstanceProfile::G7, 8));
        }
        assert!(matches!(
            place_on_fleet(&d, &fleet),
            Err(PlacementError::NoFeasibleSlot { .. })
        ));
    }
}
