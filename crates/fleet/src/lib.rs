//! # parva-fleet — heterogeneous multi-node fleet orchestration
//!
//! The paper's evaluation assumes a static, homogeneous pool of A100 nodes
//! (§IV-A), but its own cost argument — "the pay-per-use nature of cloud
//! environments" (§I) — only bites in a *dynamic* fleet: nodes are
//! heterogeneous (§V names the whole A100→H200→B200 ladder), spot capacity
//! vanishes, GPUs fail, and demand drifts. This crate simulates that living
//! cluster and makes the ParvaGPU machinery recover through it:
//!
//! * [`node`] — the inventory: [`NodePool`]s over
//!   [`parva_mig::GpuModel::CATALOG`] instance types with per-pool
//!   [`parva_cluster::PricingPlan`]s and spot exposure; nodes die
//!   ([`Fleet::kill`]) and arrive ([`Fleet::grant`]).
//! * [`event`] — the seeded chaos stream: node failures, spot preemptions,
//!   scale-up grants, load shifts. Deterministic per seed.
//! * [`placer`] — logical → physical anchoring: the scheduler's anonymous
//!   A100-geometry GPUs are assigned to concrete slots with per-model
//!   memory feasibility and per-node vCPU budgets, sticky-first so
//!   recoveries migrate as little as possible.
//! * [`orchestrator`] — the event-driven control loop: on each event it
//!   re-runs the two-stage scheduler *incrementally* (the §III-F path via
//!   [`parva_core::allocator`] and [`parva_core::reconfigure`]), quantifies
//!   the disruption window with
//!   [`parva_autoscale::simulate_displacement_window`], re-anchors and
//!   re-packs the surviving nodes, and serves the next interval in the DES
//!   simulator to prove SLO compliance returned.
//! * [`migration`] — the physical diff each recovery implies: moved
//!   segments, GPU MIG re-flashes (serialized per node), stranded GPCs, an
//!   analytic recovery latency, and the lowering of the plan into serving-
//!   DES recovery ops ([`MigrationPlan::to_recovery_spec`]) so weight
//!   copies and re-flashes compete with live traffic and the disruption
//!   dip is *measured*, not assumed. Spot two-minute warnings
//!   ([`FleetEvent::PreemptionWarning`]) pre-copy weights and pre-flash
//!   targets before the capacity dies, shrinking the measured dip toward
//!   the control-plane delay.
//! * [`pack`] / [`report`] — node-granularity cost under mixed pricing and
//!   the per-event [`FleetReport`].
//!
//! Entry point: [`run_chaos`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod migration;
pub mod node;
pub mod orchestrator;
pub mod pack;
pub mod placer;
pub mod report;
pub mod simcache;

pub use event::{next_event, next_event_with, ChaosProfile, FleetEvent};

pub use migration::MigrationPlan;
pub use node::{Fleet, FleetNode, FleetSpec, GpuSlot, NodePool};
pub use orchestrator::{
    event_label, run_chaos, run_chaos_observed, run_chaos_sink, FleetConfig, FleetError,
    FleetOrchestrator, RecoveryOutcome, DEFAULT_MAX_REPLACEMENTS,
};
pub use pack::{FleetPacking, NodeUsage};
pub use placer::{
    place_on_fleet, place_sticky, translate_placement, FleetPlacement, PlacementError,
};
pub use report::{EventOutcome, FleetReport, RECOVERY_TOLERANCE};
pub use simcache::SimCache;

/// The demo service mix used by the chaos surfaces (`parvactl fleet`, the
/// `fleet_chaos` bench binary and example): four CNN services sized to fit
/// comfortably inside [`FleetSpec::mixed_demo`]'s base capacity so chaos
/// runs exercise recovery, not capacity planning. Companion to
/// [`FleetSpec::mixed_demo`].
#[must_use]
pub fn demo_services() -> Vec<parva_deploy::ServiceSpec> {
    use parva_perf::Model;
    vec![
        parva_deploy::ServiceSpec::new(0, Model::ResNet50, 700.0, 205.0),
        parva_deploy::ServiceSpec::new(1, Model::MobileNetV2, 500.0, 167.0),
        parva_deploy::ServiceSpec::new(2, Model::DenseNet121, 300.0, 183.0),
        parva_deploy::ServiceSpec::new(3, Model::Vgg16, 200.0, 400.0),
    ]
}
