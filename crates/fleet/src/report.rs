//! The chaos-run report: per-event recovery accounting plus fleet summary.

use crate::event::FleetEvent;
use crate::migration::MigrationPlan;
use parva_cluster::BillingReport;
use parva_serve::ResilienceCounters;
use serde::{Deserialize, Serialize, Value};

/// Tolerance for [`EventOutcome::recovered`]: request-level window
/// compliance carries ~1% sampling noise from the window edge (requests
/// offered near the end complete during the drain period and count against
/// the metric), which moves with the deployment shape and offered rate. A
/// genuinely unrecovered fleet — lost capacity never re-placed — drops by
/// several percent or more, far past this band.
pub const RECOVERY_TOLERANCE: f64 = 0.01;

/// What one event did to the fleet and how the orchestrator recovered.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct EventOutcome {
    /// Interval index (1-based; interval 0 is the undisturbed baseline).
    pub interval: usize,
    /// The injected event.
    pub event: FleetEvent,
    /// Segments whose capacity was lost at the instant of the event.
    pub displaced_segments: usize,
    /// Replacement nodes the control plane provisioned because the
    /// surviving fleet could not host the deployment.
    pub replacement_nodes: usize,
    /// The physical migration the recovery required.
    pub migration: MigrationPlan,
    /// Request-level compliance just before the event (control window).
    pub compliance_before: f64,
    /// Request-level compliance during the disruption window with the lost
    /// capacity dark for the whole window and no shadows (the analytic
    /// worst-case dip).
    pub compliance_during: f64,
    /// Request-level compliance during the window with §III-F shadow
    /// processes bridging the lost capacity.
    pub compliance_shadowed: f64,
    /// Request-level compliance *measured* by the DES with the recovery
    /// (re-flashes, weight copies, control plane) riding the event queue
    /// alongside the serving traffic: affected servers are dark only until
    /// their recovery op completes. Falls back to `compliance_during` when
    /// the DES recovery path is disabled.
    pub compliance_measured: f64,
    /// Request-level compliance of the recovered deployment serving the
    /// next interval (steady state after recovery). Same basis as
    /// `compliance_before`, so [`EventOutcome::recovered`] compares like
    /// with like.
    pub compliance_after: f64,
    /// Batch-level compliance of the recovered steady state (the paper's
    /// Fig. 8 metric, blind to dropped traffic — kept for comparison).
    pub compliance_after_batch: f64,
    /// Simulated end-to-end recovery latency measured from the DES event
    /// timeline, ms (0 when the event required no physical work). The
    /// analytic estimate stays in `migration.recovery_latency_ms`.
    pub simulated_recovery_ms: f64,
    /// Weights staged ahead of the loss by predictive pre-copy, GiB
    /// (non-zero only for honored warnings / evacuation notices).
    pub precopied_gib: f64,
    /// Nodes in service after recovery.
    pub nodes_in_service: usize,
    /// Hourly cost of the in-service fleet after recovery, USD.
    pub usd_per_hour: f64,
    /// GPUs stranded on dead nodes (capacity paid for but unreachable —
    /// zero unless billing outlives the failure).
    pub lost_gpus: usize,
    /// Resilience counters (timeouts, retries, sheds, hedges) summed
    /// across services of the interval's DES-measured window — or, when
    /// the event required no simulated recovery, the recovered steady
    /// state. `None` (and omitted from the serialized form) when the run
    /// had no resilience policy or nothing fired.
    #[serde(default)]
    pub resilience: Option<ResilienceCounters>,
}

// Hand-written so resilience-free runs serialize exactly as before the
// resilience layer existed: `resilience` is emitted only when present.
impl Serialize for EventOutcome {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("interval"), self.interval.to_value()),
            (String::from("event"), self.event.to_value()),
            (
                String::from("displaced_segments"),
                self.displaced_segments.to_value(),
            ),
            (
                String::from("replacement_nodes"),
                self.replacement_nodes.to_value(),
            ),
            (String::from("migration"), self.migration.to_value()),
            (
                String::from("compliance_before"),
                self.compliance_before.to_value(),
            ),
            (
                String::from("compliance_during"),
                self.compliance_during.to_value(),
            ),
            (
                String::from("compliance_shadowed"),
                self.compliance_shadowed.to_value(),
            ),
            (
                String::from("compliance_measured"),
                self.compliance_measured.to_value(),
            ),
            (
                String::from("compliance_after"),
                self.compliance_after.to_value(),
            ),
            (
                String::from("compliance_after_batch"),
                self.compliance_after_batch.to_value(),
            ),
            (
                String::from("simulated_recovery_ms"),
                self.simulated_recovery_ms.to_value(),
            ),
            (String::from("precopied_gib"), self.precopied_gib.to_value()),
            (
                String::from("nodes_in_service"),
                self.nodes_in_service.to_value(),
            ),
            (String::from("usd_per_hour"), self.usd_per_hour.to_value()),
            (String::from("lost_gpus"), self.lost_gpus.to_value()),
        ];
        if let Some(res) = &self.resilience {
            map.push((String::from("resilience"), res.to_value()));
        }
        Value::Map(map)
    }
}

impl EventOutcome {
    /// The analytic worst-case compliance dip (control − blackout window,
    /// the whole window dark).
    #[must_use]
    pub fn compliance_dip(&self) -> f64 {
        (self.compliance_before - self.compliance_during).max(0.0)
    }

    /// The *measured* compliance dip: control minus the DES window in
    /// which recovery events compete with serving traffic. At most the
    /// analytic dip, and near zero when pre-copy prepared the recovery.
    #[must_use]
    pub fn measured_dip(&self) -> f64 {
        (self.compliance_before - self.compliance_measured).max(0.0)
    }

    /// Did steady-state compliance return to at least the pre-event level
    /// (within [`RECOVERY_TOLERANCE`])? Both sides are request-level
    /// (in-SLO completions over offered), so a recovered fleet that
    /// quietly drops traffic cannot score as recovered the way the
    /// batch-level metric would.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.compliance_after + RECOVERY_TOLERANCE >= self.compliance_before
    }
}

/// Full outcome of a chaos run.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct FleetReport {
    /// Master seed of the run (event stream + serving arrivals).
    pub seed: u64,
    /// Baseline (interval 0) batch-level compliance of the undisturbed
    /// fleet.
    pub baseline_compliance: f64,
    /// Baseline hourly cost, USD.
    pub baseline_usd_per_hour: f64,
    /// Per-event outcomes, interval order.
    pub events: Vec<EventOutcome>,
    /// The operator's per-tenant P&L, one row per (interval, tenant)
    /// including the interval-0 baseline. `None` (and omitted from the
    /// serialized form) when the run had no tenants configured.
    #[serde(default)]
    pub billing: Option<BillingReport>,
}

// Hand-written so tenant-free runs serialize exactly as before the tenant
// layer existed: `billing` is emitted only when present.
impl Serialize for FleetReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            (String::from("seed"), self.seed.to_value()),
            (
                String::from("baseline_compliance"),
                self.baseline_compliance.to_value(),
            ),
            (
                String::from("baseline_usd_per_hour"),
                self.baseline_usd_per_hour.to_value(),
            ),
            (String::from("events"), self.events.to_value()),
        ];
        if let Some(billing) = &self.billing {
            map.push((String::from("billing"), billing.to_value()));
        }
        Value::Map(map)
    }
}

impl FleetReport {
    /// Total segments migrated across all recoveries.
    #[must_use]
    pub fn total_migrations(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.migration.migrated_segments)
            .sum()
    }

    /// Total GPU re-flashes across all recoveries.
    #[must_use]
    pub fn total_reflashes(&self) -> usize {
        self.events.iter().map(|e| e.migration.reflashed_gpus).sum()
    }

    /// Total replacement nodes provisioned across all recoveries.
    #[must_use]
    pub fn total_replacements(&self) -> usize {
        self.events.iter().map(|e| e.replacement_nodes).sum()
    }

    /// The worst analytic (whole-window blackout) compliance dip.
    #[must_use]
    pub fn worst_dip(&self) -> f64 {
        self.events
            .iter()
            .map(EventOutcome::compliance_dip)
            .fold(0.0, f64::max)
    }

    /// The worst DES-measured compliance dip.
    #[must_use]
    pub fn worst_measured_dip(&self) -> f64 {
        self.events
            .iter()
            .map(EventOutcome::measured_dip)
            .fold(0.0, f64::max)
    }

    /// The slowest single recovery by the analytic estimate, ms.
    #[must_use]
    pub fn worst_recovery_latency_ms(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.migration.recovery_latency_ms)
            .fold(0.0, f64::max)
    }

    /// The slowest single recovery measured from DES events, ms.
    #[must_use]
    pub fn worst_simulated_recovery_ms(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.simulated_recovery_ms)
            .fold(0.0, f64::max)
    }

    /// Total weights staged ahead of capacity losses by predictive
    /// pre-copy across the run, GiB.
    #[must_use]
    pub fn total_precopied_gib(&self) -> f64 {
        self.events.iter().map(|e| e.precopied_gib).sum()
    }

    /// Whether every event's steady state recovered to the pre-event level.
    #[must_use]
    pub fn fully_recovered(&self) -> bool {
        self.events.iter().all(EventOutcome::recovered)
    }

    /// Render as a human-readable table. `dip %` is the DES-measured dip
    /// (`est dip %` keeps the analytic whole-window blackout estimate for
    /// comparison), and `sim ms` / `est ms` pair the measured and analytic
    /// recovery latencies the same way.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos run (seed {}): baseline compliance {:.2}% at ${:.2}/h\n\
             {:<4} {:<34} {:>5} {:>5} {:>7} {:>7} {:>9} {:>9} {:>7} {:>7} {:>6} {:>9}\n",
            self.seed,
            self.baseline_compliance * 100.0,
            self.baseline_usd_per_hour,
            "ivl",
            "event",
            "disp",
            "mig",
            "reflash",
            "dip %",
            "est dip %",
            "after %",
            "sim ms",
            "est ms",
            "nodes",
            "$/h"
        );
        for e in &self.events {
            out.push_str(&format!(
                "{:<4} {:<34} {:>5} {:>5} {:>7} {:>7.2} {:>9.2} {:>9.2} {:>7.0} {:>7.0} {:>6} {:>9.2}\n",
                e.interval,
                e.event.to_string(),
                e.displaced_segments,
                e.migration.migrated_segments,
                e.migration.reflashed_gpus,
                e.measured_dip() * 100.0,
                e.compliance_dip() * 100.0,
                e.compliance_after * 100.0,
                e.simulated_recovery_ms,
                e.migration.recovery_latency_ms,
                e.nodes_in_service,
                e.usd_per_hour
            ));
        }
        out.push_str(&format!(
            "total: {} migrations, {} re-flashes, {} replacement node(s), {:.1} GiB pre-copied, \
             worst measured dip {:.2}% (analytic {:.2}%), worst recovery {:.0} ms simulated \
             ({:.0} ms analytic), {}\n",
            self.total_migrations(),
            self.total_reflashes(),
            self.total_replacements(),
            self.total_precopied_gib(),
            self.worst_measured_dip() * 100.0,
            self.worst_dip() * 100.0,
            self.worst_simulated_recovery_ms(),
            self.worst_recovery_latency_ms(),
            if self.fully_recovered() {
                "all events recovered"
            } else {
                "UNRECOVERED EVENTS"
            }
        ));
        if let Some(billing) = &self.billing {
            out.push_str(&billing.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::CONTROL_PLANE_MS;

    fn outcome(dip: f64, after: f64) -> EventOutcome {
        EventOutcome {
            interval: 1,
            event: FleetEvent::Quiet,
            displaced_segments: 0,
            replacement_nodes: 0,
            migration: MigrationPlan {
                migrated_segments: 2,
                reflashed_gpus: 1,
                reflash_waves: 1,
                weight_copy_gib: 0.5,
                stranded_gpcs: 0,
                recovery_latency_ms: CONTROL_PLANE_MS,
                ops: vec![],
            },
            compliance_before: 1.0,
            compliance_during: 1.0 - dip,
            compliance_shadowed: 1.0,
            compliance_measured: 1.0 - dip / 2.0,
            compliance_after: after,
            compliance_after_batch: after,
            simulated_recovery_ms: CONTROL_PLANE_MS,
            precopied_gib: 0.0,
            nodes_in_service: 2,
            usd_per_hour: 50.0,
            lost_gpus: 0,
            resilience: None,
        }
    }

    #[test]
    fn summary_math() {
        let report = FleetReport {
            seed: 1,
            baseline_compliance: 1.0,
            baseline_usd_per_hour: 60.0,
            events: vec![outcome(0.2, 1.0), outcome(0.05, 0.9)],
            billing: None,
        };
        assert_eq!(report.total_migrations(), 4);
        assert_eq!(report.total_reflashes(), 2);
        assert!((report.worst_dip() - 0.2).abs() < 1e-12);
        assert!((report.worst_measured_dip() - 0.1).abs() < 1e-12);
        assert!((report.worst_simulated_recovery_ms() - CONTROL_PLANE_MS).abs() < 1e-12);
        assert!(!report.fully_recovered());
        let rendered = report.render();
        assert!(rendered.contains("chaos run"));
        assert!(rendered.contains("UNRECOVERED"));
    }

    #[test]
    fn recovered_tolerates_rounding() {
        let e = outcome(0.1, 1.0);
        assert!(e.recovered());
        assert!((e.compliance_dip() - 0.1).abs() < 1e-12);
        assert!((e.measured_dip() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn degraded_request_compliance_is_not_reported_recovered() {
        // The old check compared request-level `compliance_before` against
        // *batch-level* `compliance_after`. A fleet that drops traffic
        // after recovery completes fewer batches but each one in SLO —
        // batch compliance 1.0 — and scored as recovered. With both sides
        // request-level, it cannot.
        let mut e = outcome(0.0, 0.9);
        e.compliance_after_batch = 1.0; // every *completed* batch in SLO
        assert!(
            !e.recovered(),
            "dropping traffic must not count as recovered"
        );
        assert!(e.compliance_after_batch > e.compliance_after);
    }
}
