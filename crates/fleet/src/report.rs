//! The chaos-run report: per-event recovery accounting plus fleet summary.

use crate::event::FleetEvent;
use crate::migration::MigrationPlan;
use serde::{Deserialize, Serialize};

/// What one event did to the fleet and how the orchestrator recovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventOutcome {
    /// Interval index (1-based; interval 0 is the undisturbed baseline).
    pub interval: usize,
    /// The injected event.
    pub event: FleetEvent,
    /// Segments whose capacity was lost at the instant of the event.
    pub displaced_segments: usize,
    /// Replacement nodes the control plane provisioned because the
    /// surviving fleet could not host the deployment.
    pub replacement_nodes: usize,
    /// The physical migration the recovery required.
    pub migration: MigrationPlan,
    /// Request-level compliance just before the event (control window).
    pub compliance_before: f64,
    /// Request-level compliance during the disruption window with the lost
    /// capacity dark and no shadows (the dip).
    pub compliance_during: f64,
    /// Request-level compliance during the window with §III-F shadow
    /// processes bridging the lost capacity.
    pub compliance_shadowed: f64,
    /// Batch-level compliance of the recovered deployment serving the next
    /// interval (steady state after recovery).
    pub compliance_after: f64,
    /// Nodes in service after recovery.
    pub nodes_in_service: usize,
    /// Hourly cost of the in-service fleet after recovery, USD.
    pub usd_per_hour: f64,
    /// GPUs stranded on dead nodes (capacity paid for but unreachable —
    /// zero unless billing outlives the failure).
    pub lost_gpus: usize,
}

impl EventOutcome {
    /// The compliance dip the event caused before recovery
    /// (control − blackout window).
    #[must_use]
    pub fn compliance_dip(&self) -> f64 {
        (self.compliance_before - self.compliance_during).max(0.0)
    }

    /// Did steady-state compliance return to at least the pre-event level?
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.compliance_after + 1e-9 >= self.compliance_before
    }
}

/// Full outcome of a chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Master seed of the run (event stream + serving arrivals).
    pub seed: u64,
    /// Baseline (interval 0) batch-level compliance of the undisturbed
    /// fleet.
    pub baseline_compliance: f64,
    /// Baseline hourly cost, USD.
    pub baseline_usd_per_hour: f64,
    /// Per-event outcomes, interval order.
    pub events: Vec<EventOutcome>,
}

impl FleetReport {
    /// Total segments migrated across all recoveries.
    #[must_use]
    pub fn total_migrations(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.migration.migrated_segments)
            .sum()
    }

    /// Total GPU re-flashes across all recoveries.
    #[must_use]
    pub fn total_reflashes(&self) -> usize {
        self.events.iter().map(|e| e.migration.reflashed_gpus).sum()
    }

    /// Total replacement nodes provisioned across all recoveries.
    #[must_use]
    pub fn total_replacements(&self) -> usize {
        self.events.iter().map(|e| e.replacement_nodes).sum()
    }

    /// The worst disruption-window compliance dip.
    #[must_use]
    pub fn worst_dip(&self) -> f64 {
        self.events
            .iter()
            .map(EventOutcome::compliance_dip)
            .fold(0.0, f64::max)
    }

    /// The slowest single recovery, ms.
    #[must_use]
    pub fn worst_recovery_latency_ms(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.migration.recovery_latency_ms)
            .fold(0.0, f64::max)
    }

    /// Whether every event's steady state recovered to the pre-event level.
    #[must_use]
    pub fn fully_recovered(&self) -> bool {
        self.events.iter().all(EventOutcome::recovered)
    }

    /// Render as a human-readable table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos run (seed {}): baseline compliance {:.2}% at ${:.2}/h\n\
             {:<4} {:<34} {:>5} {:>5} {:>7} {:>9} {:>9} {:>9} {:>6} {:>9}\n",
            self.seed,
            self.baseline_compliance * 100.0,
            self.baseline_usd_per_hour,
            "ivl",
            "event",
            "disp",
            "mig",
            "reflash",
            "dip %",
            "after %",
            "rec ms",
            "nodes",
            "$/h"
        );
        for e in &self.events {
            out.push_str(&format!(
                "{:<4} {:<34} {:>5} {:>5} {:>7} {:>9.2} {:>9.2} {:>9.0} {:>6} {:>9.2}\n",
                e.interval,
                e.event.to_string(),
                e.displaced_segments,
                e.migration.migrated_segments,
                e.migration.reflashed_gpus,
                e.compliance_dip() * 100.0,
                e.compliance_after * 100.0,
                e.migration.recovery_latency_ms,
                e.nodes_in_service,
                e.usd_per_hour
            ));
        }
        out.push_str(&format!(
            "total: {} migrations, {} re-flashes, {} replacement node(s), worst dip {:.2}%, \
             worst recovery {:.0} ms, {}\n",
            self.total_migrations(),
            self.total_reflashes(),
            self.total_replacements(),
            self.worst_dip() * 100.0,
            self.worst_recovery_latency_ms(),
            if self.fully_recovered() {
                "all events recovered"
            } else {
                "UNRECOVERED EVENTS"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::CONTROL_PLANE_MS;

    fn outcome(dip: f64, after: f64) -> EventOutcome {
        EventOutcome {
            interval: 1,
            event: FleetEvent::Quiet,
            displaced_segments: 0,
            replacement_nodes: 0,
            migration: MigrationPlan {
                migrated_segments: 2,
                reflashed_gpus: 1,
                weight_copy_gib: 0.5,
                stranded_gpcs: 0,
                recovery_latency_ms: CONTROL_PLANE_MS,
            },
            compliance_before: 1.0,
            compliance_during: 1.0 - dip,
            compliance_shadowed: 1.0,
            compliance_after: after,
            nodes_in_service: 2,
            usd_per_hour: 50.0,
            lost_gpus: 0,
        }
    }

    #[test]
    fn summary_math() {
        let report = FleetReport {
            seed: 1,
            baseline_compliance: 1.0,
            baseline_usd_per_hour: 60.0,
            events: vec![outcome(0.2, 1.0), outcome(0.05, 0.9)],
        };
        assert_eq!(report.total_migrations(), 4);
        assert_eq!(report.total_reflashes(), 2);
        assert!((report.worst_dip() - 0.2).abs() < 1e-12);
        assert!(!report.fully_recovered());
        let rendered = report.render();
        assert!(rendered.contains("chaos run"));
        assert!(rendered.contains("UNRECOVERED"));
    }

    #[test]
    fn recovered_tolerates_rounding() {
        let e = outcome(0.1, 1.0);
        assert!(e.recovered());
        assert!((e.compliance_dip() - 0.1).abs() < 1e-12);
    }
}
