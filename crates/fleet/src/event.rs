//! The seeded chaos event stream driving the fleet.

use crate::node::Fleet;
use parva_des::RngStream;
use serde::{Deserialize, Serialize};

/// A disturbance (or grant) hitting the fleet at an interval boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// Hardware/host failure of one node: its GPUs vanish immediately.
    NodeFailure {
        /// The failed node id.
        node: usize,
    },
    /// The provider reclaims one spot node (two-minute warning collapsed to
    /// the interval boundary — the warning was *not* acted on).
    SpotPreemption {
        /// The preempted node id.
        node: usize,
    },
    /// The provider announces it will reclaim one spot node (the
    /// two-minute warning, honored): the control plane pre-copies weights
    /// and pre-flashes target GPUs *before* the capacity dies, so only the
    /// control-plane delay is paid live (paper §III-F shadows, applied
    /// forward).
    PreemptionWarning {
        /// The warned (and then preempted) node id.
        node: usize,
    },
    /// A pending scale-up is granted: fresh nodes join the fleet.
    ScaleUpGrant {
        /// Pool the nodes come from.
        pool: usize,
        /// Number of nodes granted.
        nodes: usize,
    },
    /// Demand shifts: every service's offered rate is scaled to
    /// `multiplier` × its base rate.
    LoadShift {
        /// New rate multiplier relative to the base service set.
        multiplier: f64,
    },
    /// Nothing happens this interval (control point in the trace).
    Quiet,
}

impl std::fmt::Display for FleetEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeFailure { node } => write!(f, "node {node} failed"),
            Self::SpotPreemption { node } => write!(f, "spot node {node} preempted"),
            Self::PreemptionWarning { node } => {
                write!(f, "spot node {node} warned (2-min, pre-copy)")
            }
            Self::ScaleUpGrant { pool, nodes } => {
                write!(f, "scale-up: {nodes} node(s) from pool {pool}")
            }
            Self::LoadShift { multiplier } => write!(f, "load shift to {multiplier:.2}x"),
            Self::Quiet => write!(f, "quiet"),
        }
    }
}

/// The event-mix contract of one chaos stream: cumulative probability
/// thresholds over a single uniform roll, plus the warned fraction of spot
/// reclaims. [`ChaosProfile::default`] stores the historical mix as *exact
/// literals* (`0.30 / 0.55 / 0.75 / 0.95`, warning `0.5`) so the default
/// path replays pre-profile event streams bit-identically — recomputing
/// `0.30 + 0.25` in f64 would land on `0.55000000000000004` and shift any
/// roll in between.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Rolls below this fail a node.
    pub fail_to: f64,
    /// Rolls in `[fail_to, preempt_to)` reclaim a spot node.
    pub preempt_to: f64,
    /// Rolls in `[preempt_to, scale_to)` grant a scale-up.
    pub scale_to: f64,
    /// Rolls in `[scale_to, shift_to)` shift the offered load; above is
    /// quiet.
    pub shift_to: f64,
    /// Fraction of spot reclaims that arrive with the two-minute warning
    /// intact (most real notices do); the rest hit cold.
    pub warning_frac: f64,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        Self {
            fail_to: 0.30,
            preempt_to: 0.55,
            scale_to: 0.75,
            shift_to: 0.95,
            warning_frac: 0.5,
        }
    }
}

impl ChaosProfile {
    /// A profile whose spot-preemption band is scaled by `intensity`
    /// (1.0 = the default 0.25-wide band): the scale-up and load-shift
    /// bands keep their widths by sliding, and the quiet band absorbs the
    /// difference. `intensity` is clamped so every threshold stays in
    /// `[fail_to, 1.0]`. Exactly `1.0` returns [`ChaosProfile::default`]
    /// so spec-driven runs at the default intensity stay bit-identical to
    /// unconfigured ones.
    #[must_use]
    pub fn with_preemption_intensity(intensity: f64) -> Self {
        if intensity == 1.0 || !intensity.is_finite() {
            return Self::default();
        }
        let width = (0.25 * intensity.max(0.0)).min(0.70);
        let preempt_to = 0.30 + width;
        Self {
            fail_to: 0.30,
            preempt_to,
            scale_to: (preempt_to + 0.20).min(1.0),
            shift_to: (preempt_to + 0.40).min(1.0),
            warning_frac: 0.5,
        }
    }
}

/// Draw the next event for the current fleet state. Deterministic given the
/// stream state; events that need a victim fall back to [`FleetEvent::Quiet`]
/// when no candidate exists (e.g. preempting with no spot nodes left).
/// Equivalent to [`next_event_with`] under [`ChaosProfile::default`].
pub fn next_event(rng: &mut RngStream, fleet: &Fleet) -> FleetEvent {
    next_event_with(rng, fleet, &ChaosProfile::default())
}

/// Draw the next event under an explicit [`ChaosProfile`]. The RNG
/// consumption pattern per event kind is identical across profiles, so two
/// profiles only diverge where a roll crosses a moved threshold.
pub fn next_event_with(rng: &mut RngStream, fleet: &Fleet, profile: &ChaosProfile) -> FleetEvent {
    let roll = rng.uniform();
    if roll < profile.fail_to {
        // Fail any alive node — spot or not — but never the last one.
        let alive = fleet.alive_nodes();
        if alive.len() <= 1 {
            return FleetEvent::Quiet;
        }
        FleetEvent::NodeFailure {
            node: alive[rng.index(alive.len())],
        }
    } else if roll < profile.preempt_to {
        let spot = fleet.alive_spot_nodes();
        if spot.is_empty() || fleet.alive_nodes().len() <= 1 {
            return FleetEvent::Quiet;
        }
        let node = spot[rng.index(spot.len())];
        if rng.uniform() < profile.warning_frac {
            FleetEvent::PreemptionWarning { node }
        } else {
            FleetEvent::SpotPreemption { node }
        }
    } else if roll < profile.scale_to {
        let pool = rng.index(fleet.pools().len());
        FleetEvent::ScaleUpGrant { pool, nodes: 1 }
    } else if roll < profile.shift_to {
        // 0.70×–1.30× of the base rates, quantized for readable reports.
        let step = rng.index(13);
        FleetEvent::LoadShift {
            multiplier: 0.70 + 0.05 * step as f64,
        }
    } else {
        FleetEvent::Quiet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FleetSpec;

    #[test]
    fn event_stream_is_deterministic() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let draw = |seed: u64| -> Vec<FleetEvent> {
            let mut rng = RngStream::new(seed, 0);
            (0..32).map(|_| next_event(&mut rng, &fleet)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn events_respect_fleet_state() {
        let mut fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        for id in fleet.alive_spot_nodes() {
            fleet.kill(id);
        }
        let mut rng = RngStream::new(3, 1);
        for _ in 0..200 {
            match next_event(&mut rng, &fleet) {
                FleetEvent::SpotPreemption { .. } | FleetEvent::PreemptionWarning { .. } => {
                    panic!("no spot nodes left to preempt")
                }
                FleetEvent::NodeFailure { node } => assert!(fleet.node(node).alive),
                _ => {}
            }
        }
    }

    #[test]
    fn spot_reclaims_split_between_warned_and_cold() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let mut rng = RngStream::new(5, 2);
        let (mut warned, mut cold) = (0usize, 0usize);
        for _ in 0..400 {
            match next_event(&mut rng, &fleet) {
                FleetEvent::PreemptionWarning { node } => {
                    assert!(fleet.node(node).preemptible);
                    warned += 1;
                }
                FleetEvent::SpotPreemption { .. } => cold += 1,
                _ => {}
            }
        }
        assert!(warned > 0, "no warnings drawn in 400 events");
        assert!(cold > 0, "no cold preemptions drawn in 400 events");
    }

    #[test]
    fn default_profile_matches_legacy_stream() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let mut a = RngStream::new(7, 0);
        let mut b = RngStream::new(7, 0);
        let profile = ChaosProfile::default();
        for _ in 0..512 {
            assert_eq!(
                next_event(&mut a, &fleet),
                next_event_with(&mut b, &fleet, &profile)
            );
        }
    }

    #[test]
    fn preemption_intensity_scales_the_reclaim_band() {
        assert_eq!(
            ChaosProfile::with_preemption_intensity(1.0),
            ChaosProfile::default()
        );
        let hot = ChaosProfile::with_preemption_intensity(2.0);
        let cold = ChaosProfile::with_preemption_intensity(0.0);
        assert!(hot.preempt_to > ChaosProfile::default().preempt_to);
        assert!((cold.preempt_to - cold.fail_to).abs() < 1e-12);
        assert!(hot.shift_to <= 1.0);
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let count = |p: &ChaosProfile| -> usize {
            let mut rng = RngStream::new(9, 4);
            (0..600)
                .filter(|_| {
                    matches!(
                        next_event_with(&mut rng, &fleet, p),
                        FleetEvent::SpotPreemption { .. } | FleetEvent::PreemptionWarning { .. }
                    )
                })
                .count()
        };
        assert!(count(&hot) > count(&ChaosProfile::default()));
        assert_eq!(count(&cold), 0);
    }

    #[test]
    fn last_node_is_never_killed() {
        let mut fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let alive = fleet.alive_nodes();
        for &id in &alive[1..] {
            fleet.kill(id);
        }
        let mut rng = RngStream::new(11, 0);
        for _ in 0..200 {
            assert!(!matches!(
                next_event(&mut rng, &fleet),
                FleetEvent::NodeFailure { .. }
                    | FleetEvent::SpotPreemption { .. }
                    | FleetEvent::PreemptionWarning { .. }
            ));
        }
    }
}
