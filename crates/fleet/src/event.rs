//! The seeded chaos event stream driving the fleet.

use crate::node::Fleet;
use parva_des::RngStream;
use serde::{Deserialize, Serialize};

/// A disturbance (or grant) hitting the fleet at an interval boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// Hardware/host failure of one node: its GPUs vanish immediately.
    NodeFailure {
        /// The failed node id.
        node: usize,
    },
    /// The provider reclaims one spot node (two-minute warning collapsed to
    /// the interval boundary — the warning was *not* acted on).
    SpotPreemption {
        /// The preempted node id.
        node: usize,
    },
    /// The provider announces it will reclaim one spot node (the
    /// two-minute warning, honored): the control plane pre-copies weights
    /// and pre-flashes target GPUs *before* the capacity dies, so only the
    /// control-plane delay is paid live (paper §III-F shadows, applied
    /// forward).
    PreemptionWarning {
        /// The warned (and then preempted) node id.
        node: usize,
    },
    /// A pending scale-up is granted: fresh nodes join the fleet.
    ScaleUpGrant {
        /// Pool the nodes come from.
        pool: usize,
        /// Number of nodes granted.
        nodes: usize,
    },
    /// Demand shifts: every service's offered rate is scaled to
    /// `multiplier` × its base rate.
    LoadShift {
        /// New rate multiplier relative to the base service set.
        multiplier: f64,
    },
    /// Nothing happens this interval (control point in the trace).
    Quiet,
}

impl std::fmt::Display for FleetEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeFailure { node } => write!(f, "node {node} failed"),
            Self::SpotPreemption { node } => write!(f, "spot node {node} preempted"),
            Self::PreemptionWarning { node } => {
                write!(f, "spot node {node} warned (2-min, pre-copy)")
            }
            Self::ScaleUpGrant { pool, nodes } => {
                write!(f, "scale-up: {nodes} node(s) from pool {pool}")
            }
            Self::LoadShift { multiplier } => write!(f, "load shift to {multiplier:.2}x"),
            Self::Quiet => write!(f, "quiet"),
        }
    }
}

/// Draw the next event for the current fleet state. Deterministic given the
/// stream state; events that need a victim fall back to [`FleetEvent::Quiet`]
/// when no candidate exists (e.g. preempting with no spot nodes left).
pub fn next_event(rng: &mut RngStream, fleet: &Fleet) -> FleetEvent {
    let roll = rng.uniform();
    if roll < 0.30 {
        // Fail any alive node — spot or not — but never the last one.
        let alive = fleet.alive_nodes();
        if alive.len() <= 1 {
            return FleetEvent::Quiet;
        }
        FleetEvent::NodeFailure {
            node: alive[rng.index(alive.len())],
        }
    } else if roll < 0.55 {
        let spot = fleet.alive_spot_nodes();
        if spot.is_empty() || fleet.alive_nodes().len() <= 1 {
            return FleetEvent::Quiet;
        }
        let node = spot[rng.index(spot.len())];
        // Half the reclaims arrive with the two-minute warning intact
        // (most real notices do); the rest hit cold.
        if rng.uniform() < 0.5 {
            FleetEvent::PreemptionWarning { node }
        } else {
            FleetEvent::SpotPreemption { node }
        }
    } else if roll < 0.75 {
        let pool = rng.index(fleet.pools().len());
        FleetEvent::ScaleUpGrant { pool, nodes: 1 }
    } else if roll < 0.95 {
        // 0.70×–1.30× of the base rates, quantized for readable reports.
        let step = rng.index(13);
        FleetEvent::LoadShift {
            multiplier: 0.70 + 0.05 * step as f64,
        }
    } else {
        FleetEvent::Quiet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FleetSpec;

    #[test]
    fn event_stream_is_deterministic() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let draw = |seed: u64| -> Vec<FleetEvent> {
            let mut rng = RngStream::new(seed, 0);
            (0..32).map(|_| next_event(&mut rng, &fleet)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn events_respect_fleet_state() {
        let mut fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        for id in fleet.alive_spot_nodes() {
            fleet.kill(id);
        }
        let mut rng = RngStream::new(3, 1);
        for _ in 0..200 {
            match next_event(&mut rng, &fleet) {
                FleetEvent::SpotPreemption { .. } | FleetEvent::PreemptionWarning { .. } => {
                    panic!("no spot nodes left to preempt")
                }
                FleetEvent::NodeFailure { node } => assert!(fleet.node(node).alive),
                _ => {}
            }
        }
    }

    #[test]
    fn spot_reclaims_split_between_warned_and_cold() {
        let fleet = Fleet::provision(&FleetSpec::mixed_demo(2));
        let mut rng = RngStream::new(5, 2);
        let (mut warned, mut cold) = (0usize, 0usize);
        for _ in 0..400 {
            match next_event(&mut rng, &fleet) {
                FleetEvent::PreemptionWarning { node } => {
                    assert!(fleet.node(node).preemptible);
                    warned += 1;
                }
                FleetEvent::SpotPreemption { .. } => cold += 1,
                _ => {}
            }
        }
        assert!(warned > 0, "no warnings drawn in 400 events");
        assert!(cold > 0, "no cold preemptions drawn in 400 events");
    }

    #[test]
    fn last_node_is_never_killed() {
        let mut fleet = Fleet::provision(&FleetSpec::mixed_demo(1));
        let alive = fleet.alive_nodes();
        for &id in &alive[1..] {
            fleet.kill(id);
        }
        let mut rng = RngStream::new(11, 0);
        for _ in 0..200 {
            assert!(!matches!(
                next_event(&mut rng, &fleet),
                FleetEvent::NodeFailure { .. }
                    | FleetEvent::SpotPreemption { .. }
                    | FleetEvent::PreemptionWarning { .. }
            ));
        }
    }
}
