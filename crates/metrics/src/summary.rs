//! Assembling the regenerated artifacts into one markdown summary.
//!
//! Every harness binary writes a CSV under `results/`; this module stitches
//! them into a single human-readable `SUMMARY.md` (markdown tables in the
//! paper's table/figure order), so a reviewer reads one file instead of
//! twenty. Missing artifacts are listed, not skipped silently.

use std::path::Path;

/// One artifact the summary knows about: file name, title, one-line caption.
#[derive(Debug, Clone, Copy)]
pub struct Artifact {
    /// CSV file name under the results directory.
    pub file: &'static str,
    /// Section title.
    pub title: &'static str,
    /// What the reader is looking at.
    pub caption: &'static str,
}

/// The manifest, in the paper's presentation order followed by the
/// extension analyses.
pub const MANIFEST: &[Artifact] = &[
    Artifact {
        file: "table1_capabilities.csv",
        title: "Table I — capability matrix",
        caption: "Feature support of the six spatial-sharing frameworks.",
    },
    Artifact {
        file: "fig1_mig_configurations.csv",
        title: "Figure 1 — the 19 MIG configurations",
        caption: "Derived from start-slice and memory-slice rules, not hard-coded.",
    },
    Artifact {
        file: "fig3_fig4_anchors.csv",
        title: "Figures 3–4 — InceptionV3 anchor points",
        caption: "Calibrated model vs the paper's §III-B quoted values.",
    },
    Artifact {
        file: "table4_scenarios.csv",
        title: "Table IV — evaluation scenarios",
        caption: "Request rates (req/s) and SLO latencies (ms) per model.",
    },
    Artifact {
        file: "fig5_gpu_counts.csv",
        title: "Figure 5 — total GPUs",
        caption: "Fleet size per framework per scenario (fewer is better).",
    },
    Artifact {
        file: "fig6_internal_slack.csv",
        title: "Figure 6 — internal slack (%)",
        caption: "Eq. 3 over measured SM activity (lower is better).",
    },
    Artifact {
        file: "fig7_external_fragmentation.csv",
        title: "Figure 7 — external fragmentation (%)",
        caption: "Unallocated GPCs on rented GPUs (lower is better).",
    },
    Artifact {
        file: "fig8_slo_compliance.csv",
        title: "Figure 8 — SLO compliance (%)",
        caption: "Batch-weighted compliance from the serving simulation.",
    },
    Artifact {
        file: "fig9_scheduling_delay.csv",
        title: "Figure 9 — scheduling delay (log10 ms)",
        caption: "Wall-clock scheduler cost per scenario.",
    },
    Artifact {
        file: "fig10_gpu_scaling.csv",
        title: "Figure 10 — GPUs at 1–10× S5",
        caption: "Predictor-mode fleet sizes as the service count scales.",
    },
    Artifact {
        file: "fig11_delay_scaling.csv",
        title: "Figure 11 — scheduling delay at 1–10× S5",
        caption: "Scheduler cost as the service count scales.",
    },
    Artifact {
        file: "cost_table.csv",
        title: "Cost view of Figure 5",
        caption: "p4de.24xlarge nodes and monthly bills per framework.",
    },
    Artifact {
        file: "disc_llm_feasibility.csv",
        title: "§V — LLM memory feasibility",
        caption: "Smallest feasible MIG instance per LLM per GPU generation.",
    },
    Artifact {
        file: "disc_llm_serving.csv",
        title: "§V — LLM serving fleets",
        caption: "ParvaGPU on the three-LLM scenario per GPU generation.",
    },
    Artifact {
        file: "ext_shadow_disruption.csv",
        title: "§III-F — shadow-process windows",
        caption: "Request compliance through a reconfiguration, ± shadows.",
    },
    Artifact {
        file: "ablation_threshold.csv",
        title: "Ablation — optimization threshold",
        caption: "The §III-E-2 '≤ 4 GPCs' knob swept 0–7.",
    },
    Artifact {
        file: "ablation_profile_noise.csv",
        title: "Ablation — profiler noise",
        caption: "Scheduler robustness to measurement error.",
    },
    Artifact {
        file: "ablation_burstiness.csv",
        title: "Ablation — arrival burstiness",
        caption: "MMPP bursts vs the SLO/2 queuing budget.",
    },
];

/// JSON performance artifacts listed (not tabulated — they are nested
/// documents, not CSVs) at the end of the summary so the perf and
/// observability trajectories are visible next to the paper figures.
pub const PERF_ARTIFACTS: &[Artifact] = &[
    Artifact {
        file: "BENCH_des.json",
        title: "DES engine throughput",
        caption: "events/sec per scenario scale (perf_sweep; gated in CI at 2x).",
    },
    Artifact {
        file: "BENCH_obs.json",
        title: "Observability overhead",
        caption: "tracing-off vs tracing-on wall per engine (obs_overhead).",
    },
];

/// Render one CSV string as a markdown table (first line = header).
#[must_use]
pub fn csv_to_markdown(csv: &str) -> String {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return String::from("*(empty)*\n");
    };
    let cells = |line: &str| -> Vec<String> {
        line.split(',')
            .map(|c| c.trim().replace('|', "\\|"))
            .collect()
    };
    let head = cells(header);
    let mut out = format!("| {} |\n", head.join(" | "));
    out.push_str(&format!("|{}\n", "---|".repeat(head.len())));
    for line in lines {
        out.push_str(&format!("| {} |\n", cells(line).join(" | ")));
    }
    out
}

/// Build the full summary document from a results directory.
#[must_use]
pub fn build_summary(results_dir: &Path) -> String {
    let mut out = String::from(
        "# Results summary\n\nRegenerated artifacts of the ParvaGPU reproduction, in the \
         paper's order.\nRe-create everything with `cargo run --release -p parva-bench \
         --bin repro_all`\nand the per-figure binaries (see EXPERIMENTS.md).\n",
    );
    let mut missing = Vec::new();
    for artifact in MANIFEST {
        match std::fs::read_to_string(results_dir.join(artifact.file)) {
            Ok(csv) => {
                out.push_str(&format!(
                    "\n## {}\n\n{}\n\n{}",
                    artifact.title,
                    artifact.caption,
                    csv_to_markdown(&csv)
                ));
            }
            Err(_) => missing.push(artifact.file),
        }
    }
    let present: Vec<&Artifact> = PERF_ARTIFACTS
        .iter()
        .filter(|a| results_dir.join(a.file).exists())
        .collect();
    if !present.is_empty() {
        out.push_str("\n## Performance artifacts\n\n");
        for a in present {
            out.push_str(&format!("* `{}` — {}: {}\n", a.file, a.title, a.caption));
        }
    }
    if !missing.is_empty() {
        out.push_str("\n## Missing artifacts\n\n");
        for f in missing {
            out.push_str(&format!("* `{f}` — regenerate with its harness binary\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("parva-summary-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn csv_to_markdown_shapes_tables() {
        let md = csv_to_markdown("a,b\n1,2\n3,4\n");
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn pipes_escaped_and_empty_handled() {
        assert!(csv_to_markdown("x|y,b\n").contains("x\\|y"));
        assert_eq!(csv_to_markdown(""), "*(empty)*\n");
    }

    #[test]
    fn summary_includes_present_and_lists_missing() {
        let dir = scratch_dir("mix");
        std::fs::write(dir.join("fig5_gpu_counts.csv"), "scenario,ParvaGPU\nS1,2\n").unwrap();
        std::fs::write(dir.join("BENCH_obs.json"), "{}").unwrap();
        let summary = build_summary(&dir);
        assert!(summary.contains("## Performance artifacts"));
        assert!(summary.contains("`BENCH_obs.json`"));
        assert!(summary.contains("## Figure 5 — total GPUs"));
        assert!(summary.contains("| S1 | 2 |"));
        assert!(summary.contains("## Missing artifacts"));
        assert!(summary.contains("`table1_capabilities.csv`"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_manifest_summary_has_no_missing_section() {
        let dir = scratch_dir("full");
        for a in MANIFEST {
            std::fs::write(dir.join(a.file), "h1,h2\nv1,v2\n").unwrap();
        }
        let summary = build_summary(&dir);
        assert!(!summary.contains("## Missing artifacts"));
        for a in MANIFEST {
            assert!(summary.contains(a.title), "{}", a.title);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
