//! ASCII bar charts for the figure harness (quick visual sanity checks of
//! the regenerated figures without leaving the terminal).

/// A horizontal ASCII bar chart.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    rows: Vec<(String, f64)>,
    width: usize,
}

impl BarChart {
    /// An empty chart rendered `width` characters wide (default 40).
    #[must_use]
    pub fn new() -> Self {
        Self {
            rows: Vec::new(),
            width: 40,
        }
    }

    /// Override the bar width in characters.
    #[must_use]
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(1);
        self
    }

    /// Add one bar. Negative or non-finite values are clamped to zero.
    pub fn bar<S: Into<String>>(&mut self, label: S, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.rows.push((label.into(), v));
        self
    }

    /// Number of bars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no bars were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the chart; bars are scaled to the maximum value.
    #[must_use]
    pub fn render(&self) -> String {
        let max = self.rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, value) in &self.rows {
            let filled = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "{label:<label_w$}  {}{} {value:.1}\n",
                "█".repeat(filled),
                " ".repeat(self.width - filled.min(self.width)),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new().with_width(10);
        c.bar("a", 10.0).bar("b", 5.0).bar("c", 0.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        assert_eq!(lines[2].matches('█').count(), 0);
    }

    #[test]
    fn handles_empty_and_degenerate() {
        let c = BarChart::new();
        assert!(c.is_empty());
        assert_eq!(c.render(), "");
        let mut z = BarChart::new();
        z.bar("x", 0.0);
        assert!(z.render().contains("x"));
        let mut n = BarChart::new();
        n.bar("neg", -5.0).bar("nan", f64::NAN);
        assert!(!n.render().contains('█'));
    }

    #[test]
    fn labels_aligned() {
        let mut c = BarChart::new().with_width(4);
        c.bar("short", 1.0).bar("a-much-longer-label", 2.0);
        let s = c.render();
        let starts: Vec<usize> = s.lines().map(|l| l.find('█').unwrap_or(l.len())).collect();
        assert_eq!(starts[0], starts[1], "bars must start at the same column");
    }
}
