//! # parva-metrics — the paper's evaluation metrics
//!
//! * **GPU internal slack** (Eq. 3): `1 − Σ(SMᵢ·Aᵢ)/Σ SMᵢ` over services'
//!   servers, with Aᵢ the measured SM activity — computed from a
//!   [`parva_serve::ServingReport`].
//! * **GPU external fragmentation** (Eq. 4): the fraction of compute
//!   resources on in-use GPUs not allocated to any partition. The paper
//!   prints the equation as `Σ SMᵢ/(G·S)` — the *allocated* fraction — but
//!   the text ("ParvaGPU completely eliminates external fragmentation")
//!   requires its complement; we implement `1 − Σ SMᵢ/(G·S)`.
//! * **SLO compliance** (Fig. 8): batch-weighted, from the serving report.
//! * **Scheduling delay** (Figs. 9/11): wall-clock time of a `schedule()`
//!   call, measured by [`time_schedule`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod summary;
pub mod table;

pub use chart::BarChart;
pub use summary::{build_summary, csv_to_markdown};
pub use table::TextTable;

use parva_deploy::{Deployment, ScheduleError, Scheduler, ServiceSpec};
use parva_serve::ServingReport;
use std::time::{Duration, Instant};

/// GPU internal slack (paper Eq. 3) from a serving report.
#[must_use]
pub fn internal_slack(report: &ServingReport) -> f64 {
    report.internal_slack()
}

/// GPU external fragmentation (paper Eq. 4, complemented — see crate docs):
/// the share of compute capacity on allocated GPUs assigned to no workload.
#[must_use]
pub fn external_fragmentation(deployment: &Deployment) -> f64 {
    match deployment {
        Deployment::Mig(d) => {
            let capacity = f64::from(d.gpcs_capacity());
            if capacity <= 0.0 {
                return 0.0;
            }
            1.0 - f64::from(d.gpcs_allocated()) / capacity
        }
        Deployment::Mps(d) => {
            let gpus = d.gpu_count();
            if gpus == 0 {
                return 0.0;
            }
            let allocated: f64 = d.gpus.iter().map(parva_deploy::MpsGpu::fraction_used).sum();
            1.0 - allocated / gpus as f64
        }
    }
}

/// Batch-weighted SLO compliance (Fig. 8's y-axis).
#[must_use]
pub fn slo_compliance(report: &ServingReport) -> f64 {
    report.overall_compliance_rate()
}

/// Run a scheduler and measure its wall-clock scheduling delay.
///
/// # Errors
/// Propagates the scheduler's own error alongside the elapsed time.
pub fn time_schedule(
    scheduler: &dyn Scheduler,
    services: &[ServiceSpec],
) -> (Result<Deployment, ScheduleError>, Duration) {
    let start = Instant::now();
    let result = scheduler.schedule(services);
    (result, start.elapsed())
}

/// `log10(milliseconds)` — the y-axis transform of Figs. 9 and 11.
#[must_use]
pub fn log_ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1_000.0).max(1e-6).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parva_core::ParvaGpu;
    use parva_profile::ProfileBook;
    use parva_scenarios::Scenario;

    #[test]
    fn parvagpu_s2_zero_fragmentation() {
        let book = ProfileBook::builtin();
        let d = ParvaGpu::new(&book)
            .schedule(&Scenario::S2.services())
            .unwrap();
        let frag = external_fragmentation(&d);
        assert!(frag.abs() < 1e-9, "fragmentation {frag:.4}");
    }

    #[test]
    fn igniter_s2_nonzero_fragmentation() {
        let d = parva_baselines::IGniter::new()
            .schedule(&Scenario::S2.services())
            .unwrap();
        assert!(external_fragmentation(&d) > 0.02);
    }

    #[test]
    fn gpulet_s2_zero_fragmentation() {
        // gpulet's remainder rule fills every GPU.
        let d = parva_baselines::Gpulet::new()
            .schedule(&Scenario::S2.services())
            .unwrap();
        assert!(external_fragmentation(&d) < 1e-6);
    }

    #[test]
    fn empty_deployments_have_no_fragmentation() {
        assert_eq!(
            external_fragmentation(&Deployment::Mig(parva_deploy::MigDeployment::new())),
            0.0
        );
        assert_eq!(
            external_fragmentation(&Deployment::Mps(parva_deploy::MpsDeployment::new())),
            0.0
        );
    }

    #[test]
    fn time_schedule_returns_elapsed() {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let (result, elapsed) = time_schedule(&sched, &Scenario::S1.services());
        assert!(result.is_ok());
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn log_ms_transform() {
        assert!((log_ms(Duration::from_millis(100)) - 2.0).abs() < 1e-9);
        assert!((log_ms(Duration::from_millis(1)) - 0.0).abs() < 1e-9);
        // Sub-microsecond clamps rather than -inf.
        assert!(log_ms(Duration::from_nanos(1)).is_finite());
    }
}
