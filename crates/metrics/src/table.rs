//! Plain-text table rendering for the figure/table harness binaries.

/// A simple fixed-width text table builder (no external dependencies).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}", w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (quoted only when needed).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "gpus"]);
        t.row(vec!["ParvaGPU", "3"]);
        t.row(vec!["MIG-serving", "8"]);
        let s = t.render();
        assert!(s.contains("ParvaGPU"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["a,b"]);
        t.row(vec!["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }
}
