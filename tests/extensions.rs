//! Tests for the paper's proposed extensions (§III-F shadow processes,
//! §V/§VI adaptations) implemented in this reproduction.

use parvagpu::core::{reconfigure, ParvaGpu};
use parvagpu::prelude::*;

#[test]
fn throughput_only_services_schedule_efficiently() {
    // §VI: HPC/training adaptation — no latency bound, pure rate cover.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = vec![
        ServiceSpec::throughput_only(0, Model::ResNet50, 2_000.0),
        ServiceSpec::throughput_only(1, Model::BertLarge, 100.0),
    ];
    let d = sched.schedule(&specs).unwrap();
    for s in &specs {
        assert!(d.capacity_of(s.id) >= s.request_rate_rps);
    }
    assert!(external_fragmentation(&d) < 1e-9);

    // With the latency bound gone, the optimal segments must be at least as
    // GPC-efficient as under a strict SLO.
    let strict = vec![ServiceSpec::new(0, Model::ResNet50, 2_000.0, 60.0)];
    let (strict_cfg, _) = sched.plan(&strict).unwrap();
    let (loose_cfg, _) = sched
        .plan(&[ServiceSpec::throughput_only(0, Model::ResNet50, 2_000.0)])
        .unwrap();
    assert!(
        loose_cfg[0].opt_seg.throughput_per_gpc()
            >= strict_cfg[0].opt_seg.throughput_per_gpc() - 1e-9
    );
}

#[test]
fn shadow_plan_covers_torn_down_capacity() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = Scenario::S2.services();
    let (services, deployment) = sched.plan(&specs).unwrap();

    let updated = ServiceSpec::new(4, Model::InceptionV3, 1_500.0, 419.0);
    let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
    let plan = out.shadow_plan(&deployment);

    // Every reconfiguring GPU's resident services appear in the plan.
    for &gpu in &out.reconfigured_gpus {
        for ps in deployment.segments_on(gpu) {
            assert!(
                plan.services.contains(&ps.segment.service_id),
                "service {} missing from shadow plan",
                ps.segment.service_id
            );
        }
    }
    // Spare GPUs cover the torn-down GPCs.
    assert!(plan.spare_gpus * 7 >= plan.shadow_gpcs);
    // Consistency: the shadow GPC count equals exactly the GPCs of the
    // before-map segments on reconfiguring GPUs (brand-new GPUs contribute
    // nothing — bringing up a fresh GPU needs no shadow processes).
    let expected: u32 = out
        .reconfigured_gpus
        .iter()
        .flat_map(|&g| deployment.segments_on(g))
        .map(|ps| u32::from(ps.segment.gpcs()))
        .sum();
    assert_eq!(plan.shadow_gpcs, expected);
    if out.reconfigured_gpus.is_empty() {
        assert_eq!(plan.shadow_gpcs, 0);
    }
}

#[test]
fn h100_geometry_is_interchangeable() {
    // §V: Ampere/Hopper/Blackwell all keep the same MIG configurations, so
    // the geometry layer must treat them identically.
    use parvagpu::mig::{GpuModel, InstanceProfile};
    for p in InstanceProfile::ALL {
        assert_eq!(
            GpuModel::A100_80GB.instance_memory_gib(p),
            GpuModel::H100_80GB.instance_memory_gib(p)
        );
    }
}

#[test]
fn memory_heavy_llm_like_service_prefers_big_instances() {
    // §V discussion: memory-hungry models reduce the feasibility of small
    // segments. BERT-large at a large batch is our stand-in: its optimal
    // triplets must exclude 1-GPC instances at high batch sizes, yet the
    // service still schedules.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = vec![ServiceSpec::new(0, Model::BertLarge, 200.0, 4_000.0)];
    let (cfg, d) = sched.plan(&specs).unwrap();
    assert!(d.validate());
    // The most efficient operating point for a big model at loose SLO is a
    // large-batch triplet that only fits on multi-GPC instances.
    assert!(cfg[0].opt_seg.triplet.batch >= 16);
}
