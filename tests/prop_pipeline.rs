//! Property-based integration tests over the full ParvaGPU pipeline:
//! random service mixes must always yield valid, covering, unfragmented
//! deployments.

use parvagpu::prelude::*;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = Model> {
    prop::sample::select(Model::ALL.to_vec())
}

/// Service generator constrained to the feasible regime (loose enough SLOs
/// that at least one profile point qualifies; positive rates).
fn arb_service(id: u32) -> impl Strategy<Value = ServiceSpec> {
    (arb_model(), 10.0f64..3_000.0, 150.0f64..5_000.0)
        .prop_map(move |(m, rate, slo)| ServiceSpec::new(id, m, rate, slo))
}

fn arb_services() -> impl Strategy<Value = Vec<ServiceSpec>> {
    prop::collection::vec(any::<u8>(), 1..8).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_service(i as u32))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariants: validity, SLO-feasible segments, demand
    /// coverage and zero external fragmentation for arbitrary mixes.
    #[test]
    fn parvagpu_invariants_hold(specs in arb_services()) {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let d = sched.schedule(&specs).expect("feasible regime by construction");
        prop_assert!(d.validate());
        for s in &specs {
            prop_assert!(
                d.capacity_of(s.id) + 1e-6 >= s.request_rate_rps,
                "service {} uncovered", s.id
            );
        }
        prop_assert!(external_fragmentation(&d) < 1e-9);
        let mig = d.as_mig().unwrap();
        for ps in mig.segments() {
            let spec = specs.iter().find(|s| s.id == ps.segment.service_id).unwrap();
            prop_assert!(ps.segment.latency_ms < spec.slo.internal_target_ms());
        }
    }

    /// The optimizer may only ever help: fleet size never exceeds the
    /// unoptimized ablation's.
    #[test]
    fn optimization_is_monotone(specs in arb_services()) {
        let book = ProfileBook::builtin();
        let full = ParvaGpu::new(&book).schedule(&specs).expect("feasible");
        let unopt = ParvaGpuUnoptimized::new(&book).schedule(&specs).expect("feasible");
        prop_assert!(full.gpu_count() <= unopt.gpu_count());
    }

    /// Doubling every rate can only need at least as many GPUs.
    #[test]
    fn gpu_count_monotone_in_load(specs in arb_services()) {
        let book = ProfileBook::builtin();
        let sched = ParvaGpu::new(&book);
        let doubled: Vec<ServiceSpec> = specs
            .iter()
            .map(|s| ServiceSpec::new(s.id, s.model, s.request_rate_rps * 2.0, s.slo.latency_ms))
            .collect();
        let base = sched.schedule(&specs).expect("feasible").gpu_count();
        let more = sched.schedule(&doubled).expect("feasible").gpu_count();
        prop_assert!(more >= base, "doubling load shrank the fleet: {base} -> {more}");
    }

    /// MIG-realizability: every GPU layout ParvaGPU emits is one of the 19
    /// valid configurations (or a sub-configuration).
    #[test]
    fn deployments_always_mig_realizable(specs in arb_services()) {
        let book = ProfileBook::builtin();
        let configs = parvagpu::mig::all_configurations();
        let d = ParvaGpu::new(&book).schedule(&specs).expect("feasible");
        for gpu in d.as_mig().unwrap().gpus() {
            prop_assert!(configs.iter().any(|c| c.contains(gpu)));
        }
    }
}
