//! Failure-injection integration tests: infeasible inputs must fail loudly
//! and precisely, never panic or silently under-provision.

use parvagpu::prelude::*;
use parvagpu::profile::SweepGrid;

#[test]
fn impossible_slo_is_infeasible_for_every_framework() {
    let book = ProfileBook::builtin();
    let specs = vec![ServiceSpec::new(0, Model::BertLarge, 50.0, 2.0)];
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(ParvaGpu::new(&book)),
        Box::new(ParvaGpuSingle::new(&book)),
        Box::new(ParvaGpuUnoptimized::new(&book)),
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(MigServing::new(&book)),
    ];
    for s in schedulers {
        assert!(
            s.schedule(&specs).is_err(),
            "{} accepted an impossible SLO",
            s.name()
        );
    }
}

#[test]
fn invalid_specs_rejected() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    for bad in [
        ServiceSpec::new(0, Model::ResNet50, 0.0, 100.0),
        ServiceSpec::new(1, Model::ResNet50, -10.0, 100.0),
        ServiceSpec::new(2, Model::ResNet50, 100.0, 0.0),
        ServiceSpec::new(3, Model::ResNet50, f64::NAN, 100.0),
    ] {
        assert!(
            matches!(
                sched.schedule(&[bad]),
                Err(ScheduleError::InvalidService { .. })
            ),
            "accepted {bad:?}"
        );
    }
}

#[test]
fn unprofiled_model_reported_with_service_id() {
    let book = ProfileBook::measure(&[Model::ResNet50], &SweepGrid::paper_default());
    let sched = ParvaGpu::new(&book);
    let specs = vec![
        ServiceSpec::new(0, Model::ResNet50, 100.0, 200.0),
        ServiceSpec::new(77, Model::Vgg19, 100.0, 200.0),
    ];
    assert_eq!(
        sched.schedule(&specs),
        Err(ScheduleError::NotProfiled { service_id: 77 })
    );
}

#[test]
fn one_bad_service_fails_the_whole_batch() {
    // A deployment must satisfy *every* SLO (paper §I); partial deployments
    // are not a thing.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let mut specs = Scenario::S2.services();
    specs.push(ServiceSpec::new(99, Model::BertLarge, 10.0, 1.0));
    assert!(matches!(
        sched.schedule(&specs),
        Err(ScheduleError::InfeasibleSlo { service_id: 99, .. })
    ));
}

#[test]
fn oom_constrained_service_still_schedulable_on_big_instances() {
    // A memory-hungry configuration (BERT at huge batch) is OOM on small
    // instances; the Configurator must route around it via larger ones.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = vec![ServiceSpec::new(0, Model::BertLarge, 400.0, 3_000.0)];
    let d = sched
        .schedule(&specs)
        .expect("feasible via large instances");
    assert!(d.capacity_of(0) >= 400.0);
}

#[test]
fn empty_service_list_yields_empty_deployment() {
    let book = ProfileBook::builtin();
    for s in [
        Box::new(ParvaGpu::new(&book)) as Box<dyn Scheduler>,
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(MigServing::new(&book)),
    ] {
        let d = s
            .schedule(&[])
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert_eq!(d.gpu_count(), 0, "{}", s.name());
    }
}

#[test]
fn extreme_rate_still_covered() {
    // 20k req/s of MobileNetV2 — dozens of segments across many GPUs.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = vec![ServiceSpec::new(0, Model::MobileNetV2, 20_000.0, 167.0)];
    let d = sched.schedule(&specs).unwrap();
    assert!(d.capacity_of(0) >= 20_000.0);
    assert!(d.gpu_count() >= 2);
    assert!(external_fragmentation(&d) < 1e-9);
}

#[test]
fn duplicate_service_ids_do_not_corrupt_state() {
    // Two services sharing an id is a client error, but the deployment must
    // still validate structurally (capacity queries aggregate them).
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = vec![
        ServiceSpec::new(5, Model::ResNet50, 300.0, 205.0),
        ServiceSpec::new(5, Model::MobileNetV2, 300.0, 167.0),
    ];
    if let Ok(d) = sched.schedule(&specs) {
        assert!(d.validate());
    }
}
