//! Integration: a 3-region federation driven through region evacuation
//! and failback — the acceptance scenario of the multi-region subsystem.
//!
//! Asserts the full story end to end: (a) evacuated services are
//! re-placed in surviving regions through the §III-F incremental path,
//! (b) spilled traffic's p99 latency reflects the inter-region RTT
//! matrix, (c) per-region cost honors the regional pricing multipliers,
//! and SLO attainment recovers to the pre-event level after failback.

use parvagpu::prelude::*;
use parvagpu::region::{EvacuationDrill, RegionEvent};

fn config(seed: u64) -> FederationConfig {
    FederationConfig {
        seed,
        intervals: 6,
        serving: ServingConfig {
            warmup_s: 0.4,
            duration_s: 2.0,
            drain_s: 0.8,
            ..ServingConfig::default()
        },
        drill: Some(EvacuationDrill {
            region: 0,
            evacuate_at: 2,
            failback_at: 4,
        }),
        ..FederationConfig::default()
    }
}

#[test]
fn three_region_evacuation_and_failback_recover_slo_attainment() {
    let book = ProfileBook::builtin();
    let spec = FederationSpec::three_region_demo();
    let services = parvagpu::region::demo_services();
    let report = run_federation(&book, &services, &spec, &config(21)).unwrap();

    assert_eq!(report.region_names.len(), 3);
    assert_eq!(report.intervals.len(), 6);
    assert!(
        report.baseline.global_compliance > 0.98,
        "undisturbed federation must attain its SLOs: {:.4}\n{}",
        report.baseline.global_compliance,
        report.render()
    );

    // --- the evacuation interval -----------------------------------
    let evac = &report.intervals[1];
    assert!(matches!(evac.event, RegionEvent::Evacuation { region: 0 }));
    let dark = &evac.regions[0];
    assert!(!dark.active, "evacuated region must go dark");
    assert!(dark.displaced_segments > 0, "evacuation drained nothing");
    assert_eq!(dark.usd_per_hour, 0.0, "a dark region bills nothing");
    assert!(dark.spill_out_rps > 0.0, "its demand must go somewhere");

    // (a) survivors re-placed the drained services via the incremental
    // path: their deployments reconfigured/migrated and their routed-in
    // traffic grew beyond local demand.
    let survivors: Vec<_> = evac.regions.iter().filter(|r| r.active).collect();
    assert_eq!(survivors.len(), 2);
    let churn: usize = survivors
        .iter()
        .map(|r| r.reconfigured_gpus + r.migrated_segments + r.replacement_nodes)
        .sum();
    assert!(
        churn > 0,
        "survivors did not re-place anything:\n{}",
        report.render()
    );
    for r in &survivors {
        assert!(
            r.routed_in_rps > r.offered_rps,
            "{}: routed {:.0} not above local {:.0}",
            r.name,
            r.routed_in_rps,
            r.offered_rps
        );
    }

    // (b) the spilled tail reflects the RTT matrix: every survivor that
    // absorbed spill shows a spilled p99 at least the nearest RTT out of
    // the evacuated region and above its local p99.
    let nearest = spec.rtt.nearest_rtt_ms(0);
    assert!(nearest >= 80.0);
    for r in &survivors {
        if r.spill_in_rps > 0.0 {
            assert!(
                r.spilled_p99_ms >= nearest,
                "{}: spilled p99 {:.0} ms below the {:.0} ms RTT floor",
                r.name,
                r.spilled_p99_ms,
                nearest
            );
            assert!(r.spilled_p99_ms > r.local_p99_ms);
        }
    }
    assert!(evac.spilled_rps > 0.0);

    // --- failback and recovery -------------------------------------
    let back = &report.intervals[3];
    assert!(matches!(back.event, RegionEvent::Failback { region: 0 }));
    assert!(back.regions[0].active, "region 0 must return");
    assert!(
        back.spilled_rps < evac.spilled_rps,
        "failback must take traffic home"
    );

    // SLO attainment recovers to the pre-event level once the region is
    // home. Recovery is judged at the failback interval: later intervals
    // may carry fresh unannounced failures whose *measured* dips (DES
    // recovery riding the serving traffic) legitimately depress exactly
    // that interval.
    assert!(
        back.attains(report.baseline.global_compliance),
        "failback attainment {:.4} below baseline {:.4}\n{}",
        back.global_compliance,
        report.baseline.global_compliance,
        report.render()
    );
}

#[test]
fn per_region_cost_honors_pricing_multipliers() {
    // (c) every active region's hourly bill equals the sum of its nodes'
    // plan prices scaled by the region's price index — recomputed here
    // from the spec, independent of the federation's own accounting.
    let book = ProfileBook::builtin();
    let spec = FederationSpec::three_region_demo();
    let services = parvagpu::region::demo_services();
    let report = run_federation(&book, &services, &spec, &config(21)).unwrap();

    for outcome in std::iter::once(&report.baseline).chain(&report.intervals) {
        for r in outcome.regions.iter().filter(|r| r.active) {
            assert!(r.usd_per_hour > 0.0, "{} serving for free", r.name);
        }
    }
    // The baseline runs every region on its bootstrap fleet: us-east
    // (index 1.0) and the others (1.08 / 1.15). Rebuild the expected
    // bills from the node plans.
    let baseline = &report.baseline;
    for (i, region) in spec.regions.iter().enumerate() {
        let row = &baseline.regions[i];
        // Node-hour prices must be consistent with the region's index:
        // compare against the same fleet priced at the reference index.
        let reference: f64 = row.usd_per_hour / region.pricing_multiplier;
        // Every in-service node is one of the spec's pools, all priced at
        // plan × on-demand × index, so the ratio must be exact.
        assert!(
            reference > 0.0,
            "region {} reported no cost at baseline",
            region.name
        );
        // Cross-check: us-east is the reference region.
        if i == 0 {
            assert!((row.usd_per_hour - reference).abs() < 1e-9);
        }
    }
    // eu-west and ap-south run identical pool *types*; their per-node
    // price ratio must equal the index ratio when node counts match.
    let eu = &baseline.regions[1];
    let ap = &baseline.regions[2];
    if eu.nodes_in_service == ap.nodes_in_service {
        let want = spec.regions[2].pricing_multiplier / spec.regions[1].pricing_multiplier;
        assert!(
            (ap.usd_per_hour / eu.usd_per_hour - want).abs() < 1e-6,
            "index ratio not honored: {:.4} vs {:.4}",
            ap.usd_per_hour / eu.usd_per_hour,
            want
        );
    }
}

#[test]
fn federation_report_is_deterministic_and_serializable() {
    let book = ProfileBook::builtin();
    let spec = FederationSpec::three_region_demo();
    let services = parvagpu::region::demo_services();
    let a = run_federation(&book, &services, &spec, &config(9)).unwrap();
    let b = run_federation(&book, &services, &spec, &config(9)).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "identical seed + spec must serialize byte-identically"
    );
    // And the JSON round-trips.
    let parsed: parvagpu::region::FederationReport =
        serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
    assert_eq!(parsed, a);
}
