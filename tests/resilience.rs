//! The resilient request lifecycle end to end: the `resilience` spec
//! block's round-trip (absent default included), inert-policy report
//! neutrality across the whole scenario registry, budgeted-retry goodput
//! under sustained overload against the no-resilience baseline, and the
//! `retry_storm` builtin's budgeted-vs-unbudgeted attainment ordering.

use parvagpu::prelude::*;
use parvagpu::scenarios::{builtin_specs, spec_by_name};
use proptest::prelude::*;

/// The `resilience` block round-trips losslessly and its absent default
/// serializes to the exact pre-resilience schema: a policy-free spec's
/// JSON carries no `resilience` key, and parsing JSON without one yields
/// `None`.
#[test]
fn resilience_block_round_trips_and_defaults_to_absent() {
    // The shipping policy-bearing builtin: byte-identical round-trip.
    let spec = spec_by_name("retry_storm").expect("registered");
    let res = spec.resilience.expect("retry_storm ships a policy");
    assert!(res.timeout_ms > 0.0 && res.retry_budget_rps > 0.0);
    let json = serde_json::to_string(&spec).unwrap();
    assert!(json.contains("\"resilience\""));
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(back.resilience, spec.resilience);

    // The policy-free default: absent from the serialized form...
    let plain = spec_by_name("quickstart").expect("registered");
    let plain_json = serde_json::to_string(&plain).unwrap();
    assert!(!plain_json.contains("\"resilience\""));
    // ...and parsed back as None.
    let back: ScenarioSpec = serde_json::from_str(&plain_json).unwrap();
    assert!(back.resilience.is_none());

    // A partial block fills the documented defaults.
    let spelled = format!(
        "{},\"resilience\":{{\"timeout_ms\":100.0}}}}",
        &plain_json[..plain_json.len() - 1]
    );
    let back: ScenarioSpec = serde_json::from_str(&spelled).unwrap();
    let res = back.resilience.expect("block parses");
    assert_eq!(res.timeout_ms, 100.0);
    assert_eq!(res.backoff_base_ms, 25.0);
    assert!(res.health_checked, "health checks default on");

    // The committed on-disk example parses and round-trips too.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/retry_storm.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec on disk");
    let spec: ScenarioSpec = serde_json::from_str(&text).expect("spec JSON parses");
    let res = spec.resilience.expect("example carries a policy");
    assert!(res.retry_budget_rps > 0.0, "the example ships budgeted");
    let json = serde_json::to_string(&spec).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
}

/// An explicitly *inert* policy — no timeout, no hedging, no shedding,
/// health checks off — leaves every registered scenario's report
/// byte-identical to running with no `resilience` block at all, across
/// all three engines. (The engine-level frozen-reference proptest pins
/// the serve DES; this pins the fleet and region threading on top.)
#[test]
fn inert_policy_is_report_neutral_across_the_registry() {
    let inert = ResilienceSpec {
        health_checked: false,
        ..ResilienceSpec::default()
    };
    assert!(inert.is_inert());
    let mut covered = 0;
    for spec in builtin_specs() {
        if spec.resilience.is_some() {
            continue; // retry_storm ships its own live policy
        }
        let quick = spec.quick();
        let plain = quick.run().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let mut wrapped = quick.clone();
        wrapped.resilience = Some(inert);
        let inerted = wrapped
            .run()
            .unwrap_or_else(|e| panic!("{} (inert policy): {e}", spec.name));
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&inerted).unwrap(),
            "inert resilience policy changed '{}'",
            spec.name
        );
        covered += 1;
    }
    assert!(covered >= 8, "only {covered} specs covered");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Budgeted retries never cost goodput: under a sustained overload
    /// (offered well past what the placed instances sustain), a policy of
    /// sub-SLO timeouts plus budget-capped retries keeps in-SLO goodput
    /// at or above the no-resilience baseline. The timeout acts as
    /// deadline-based shedding — requests that already missed are pulled
    /// from the queue — and the budget keeps re-injection marginal.
    #[test]
    fn budgeted_retry_goodput_never_falls_below_no_retry_baseline(
        seed in 0u64..1 << 32,
        overload in 5.5f64..8.0,
    ) {
        let book = ProfileBook::builtin();
        let specs = vec![ServiceSpec::new(0, Model::ResNet50, 829.0, 205.0)];
        let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
        let ingress = vec![vec![IngressClass::local(829.0 * overload)]];
        let cfg = ServingConfig {
            warmup_s: 0.5,
            duration_s: 2.0,
            drain_s: 0.5,
            seed,
            arrivals: ArrivalProcess::Poisson,
        };
        let baseline = Simulation::new(&d, &specs)
            .ingress(&ingress)
            .config(&cfg)
            .run();
        let budgeted_policy = ResilienceSpec {
            timeout_ms: 100.0,
            max_retries: 3,
            backoff_base_ms: 20.0,
            backoff_multiplier: 2.0,
            jitter: 0.2,
            retry_budget_rps: 80.0,
            ..ResilienceSpec::default()
        };
        let budgeted = Simulation::new(&d, &specs)
            .ingress(&ingress)
            .resilience(&budgeted_policy)
            .config(&cfg)
            .run();
        let goodput = |r: &ServingReport| -> u64 {
            r.services.iter().map(|s| s.completed_within_slo).sum()
        };
        prop_assert!(baseline.services[0].offered > baseline.services[0].completed,
            "not actually overloaded at {overload}x");
        prop_assert!(
            goodput(&budgeted) >= goodput(&baseline),
            "budgeted retries lost goodput at {overload}x overload: {} vs baseline {}",
            goodput(&budgeted),
            goodput(&baseline)
        );
    }
}

/// The `retry_storm` builtin demonstrates the metastable failure mode:
/// at the same seed and offered load, the shipped retry budget keeps SLO
/// attainment strictly above the unbudgeted storm, and the storm's retry
/// traffic amplifies far beyond the budgeted run's.
#[test]
fn retry_storm_budget_beats_unbudgeted_collapse() {
    let budgeted = spec_by_name("retry_storm").expect("registered");
    let mut unbudgeted = budgeted.clone();
    unbudgeted
        .resilience
        .as_mut()
        .expect("retry_storm ships a policy")
        .retry_budget_rps = 0.0;
    let run = |spec: &ScenarioSpec| -> ServingReport {
        match spec.run().unwrap() {
            ScenarioReport::Serve(r) => r,
            _ => unreachable!("retry_storm is a serve scenario"),
        }
    };
    let graceful = run(&budgeted);
    let storm = run(&unbudgeted);
    assert!(
        graceful.overall_request_compliance_rate() > storm.overall_request_compliance_rate(),
        "budget did not avert the collapse: {} vs {}",
        graceful.overall_request_compliance_rate(),
        storm.overall_request_compliance_rate()
    );
    let retries = |r: &ServingReport| -> u64 { r.services.iter().map(|s| s.retries).sum() };
    assert!(
        retries(&storm) > 4 * retries(&graceful).max(1),
        "the storm should amplify retries: {} vs {}",
        retries(&storm),
        retries(&graceful)
    );
    assert!(
        graceful.resilience_totals().is_some(),
        "the budgeted run still reports its lifecycle counters"
    );
}
