//! Streaming export equivalence, end to end: every registered built-in
//! spec runs once through the batch [`Recorder`] and once through the
//! shard-rotating [`StreamSink`] (`ScenarioSpec::run_streamed`), and
//!
//! 1. both paths produce the identical report (the sink never steers),
//! 2. the concatenated trace shards are byte-identical to the batch
//!    JSONL export, and likewise for the metrics lane — the streamed
//!    artifact is the batch artifact, just retired incrementally,
//! 3. the stream finalizes cleanly (`stream.done`, stats consistent
//!    with what landed on disk).

use parvagpu::obs::read_concat_shards;
use parvagpu::scenarios::builtin_specs;

fn shard_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parva-obs-stream-it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Concatenated shards are byte-equivalent to the batch export and the
/// reports agree, for every registered spec.
#[test]
fn streamed_shards_match_batch_export_for_every_spec() {
    for spec in builtin_specs() {
        let spec = spec.quick();
        let (batch_report, rec) = spec
            .run_observed()
            .unwrap_or_else(|e| panic!("{} observed run failed: {e}", spec.name));
        let dir = shard_dir(&spec.name);
        let (stream_report, stats) = spec
            .run_streamed(&dir)
            .unwrap_or_else(|e| panic!("{} streamed run failed: {e}", spec.name));

        // Identical reports (compare serialized — reports don't all
        // implement PartialEq).
        let a = serde_json::to_string(&batch_report).unwrap();
        let b = serde_json::to_string(&stream_report).unwrap();
        assert_eq!(a, b, "report drift between sinks in '{}'", spec.name);

        // Byte equivalence, lane by lane.
        let trace = read_concat_shards(&dir, "trace").unwrap();
        assert_eq!(
            trace,
            rec.trace_jsonl(),
            "trace lane drift in '{}'",
            spec.name
        );
        let metrics = read_concat_shards(&dir, "metrics").unwrap();
        assert_eq!(
            metrics,
            rec.metrics_jsonl(),
            "metrics lane drift in '{}'",
            spec.name
        );

        // Stats agree with what's on disk; the stream is finalized.
        assert_eq!(
            stats.trace_events,
            trace.lines().count() as u64,
            "{}",
            spec.name
        );
        assert_eq!(
            stats.gauge_rows,
            metrics.lines().count() as u64,
            "{}",
            spec.name
        );
        assert_eq!(stats.dropped_shards, 0, "{}", spec.name);
        assert!(dir.join("stream.done").is_file(), "{}", spec.name);
    }
}

/// A tight rotation policy (tiny shards) changes the file layout but not
/// one byte of the concatenated stream.
#[test]
fn rotation_policy_never_changes_the_bytes() {
    let spec = parvagpu::scenarios::spec_by_name("quickstart").unwrap();
    let mut spec = spec.quick();
    let dir_default = shard_dir("quickstart-default-shards");
    let (_, stats_default) = spec.run_streamed(&dir_default).unwrap();
    let baseline = read_concat_shards(&dir_default, "trace").unwrap();

    spec.observability.streaming.shard_max_events = 64;
    let dir_tiny = shard_dir("quickstart-tiny-shards");
    let (_, stats_tiny) = spec.run_streamed(&dir_tiny).unwrap();
    let rotated = read_concat_shards(&dir_tiny, "trace").unwrap();

    assert_eq!(baseline, rotated, "rotation must be layout-only");
    assert!(
        stats_tiny.trace_shards > stats_default.trace_shards,
        "64-event shards must rotate more often ({} vs {})",
        stats_tiny.trace_shards,
        stats_default.trace_shards
    );
}

/// Retention keeps only the newest shards — the tail of the full stream
/// — and reports what it dropped.
#[test]
fn retention_keeps_the_newest_tail() {
    let spec = parvagpu::scenarios::spec_by_name("quickstart").unwrap();
    let mut spec = spec.quick();
    spec.observability.streaming.shard_max_events = 64;
    let dir_full = shard_dir("quickstart-retain-full");
    spec.run_streamed(&dir_full).unwrap();
    let full = read_concat_shards(&dir_full, "trace").unwrap();

    spec.observability.streaming.retain_shards = 2;
    let dir_kept = shard_dir("quickstart-retain-2");
    let (_, stats) = spec.run_streamed(&dir_kept).unwrap();
    let kept = read_concat_shards(&dir_kept, "trace").unwrap();

    assert!(stats.dropped_shards > 0, "tiny shards must trip retention");
    assert!(
        stats.trace_shards <= 3,
        "{} shards kept",
        stats.trace_shards
    );
    assert!(
        full.ends_with(&kept),
        "retained shards must be a suffix of the full stream"
    );
    assert!(kept.lines().count() < full.lines().count());
}
