//! Serving-quality integration tests: latency distributions, interference
//! visibility and measurement consistency of the serving substrate.

use parvagpu::prelude::*;

fn cfg(seed: u64) -> ServingConfig {
    ServingConfig {
        warmup_s: 1.0,
        duration_s: 4.0,
        drain_s: 2.0,
        seed,
        ..Default::default()
    }
}

#[test]
fn latencies_respect_physical_lower_bound() {
    // No request can complete faster than one minimal batch cycle on the
    // largest instance.
    let book = ProfileBook::builtin();
    let specs = vec![ServiceSpec::new(0, Model::ResNet50, 400.0, 300.0)];
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let report = Simulation::new(&d, &specs).config(&cfg(1)).run();
    let svc = report.service(0).unwrap();
    let floor = parvagpu::perf::latency_ms(
        Model::ResNet50,
        parvagpu::perf::ComputeShare::Mig(parvagpu::mig::InstanceProfile::G7),
        1,
        1,
    );
    // Histogram quantile is bucket-upper-edge; compare against half the
    // analytic floor to stay robust to bucketing.
    assert!(
        svc.latency.quantile_ms(0.01) > floor / 2.0,
        "p1 latency {:.2} below physical floor {:.2}",
        svc.latency.quantile_ms(0.01),
        floor
    );
}

#[test]
fn p99_latency_within_slo_for_parvagpu() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let report = Simulation::new(&d, &specs).config(&cfg(2)).run();
    for (spec, svc) in specs.iter().zip(&report.services) {
        // quantile_ms reports the upper bucket edge (buckets ~9% wide), so
        // allow 10% above the SLO even though no request violated it.
        assert!(
            svc.latency.quantile_ms(0.99) <= spec.slo.latency_ms * 1.10,
            "service {} p99 {:.1} ms vs SLO {:.0} ms",
            spec.id,
            svc.latency.quantile_ms(0.99),
            spec.slo.latency_ms
        );
    }
}

#[test]
fn heterogeneous_interference_slows_co_residents() {
    // Two MPS partitions sharing a GPU must serve measurably slower than
    // the same partitions on separate GPUs.
    use parvagpu::deploy::{MpsDeployment, MpsGpu, MpsPartition};
    let mk = |svc: u32, model: Model| MpsPartition {
        service_id: svc,
        model,
        fraction: 0.5,
        batch: 16,
        procs: 1,
        throughput_rps: 500.0,
        latency_ms: 20.0,
    };
    let specs = vec![
        ServiceSpec::new(0, Model::ResNet50, 300.0, 400.0),
        ServiceSpec::new(1, Model::DenseNet121, 300.0, 400.0),
    ];

    let mut shared = MpsDeployment::new();
    shared.gpus.push(MpsGpu {
        partitions: vec![mk(0, Model::ResNet50), mk(1, Model::DenseNet121)],
    });
    let mut isolated = MpsDeployment::new();
    isolated.gpus.push(MpsGpu {
        partitions: vec![mk(0, Model::ResNet50)],
    });
    isolated.gpus.push(MpsGpu {
        partitions: vec![mk(1, Model::DenseNet121)],
    });

    let shared_report = Simulation::new(&Deployment::Mps(shared), &specs)
        .config(&cfg(3))
        .run();
    let isolated_report = Simulation::new(&Deployment::Mps(isolated), &specs)
        .config(&cfg(3))
        .run();
    let mean = |r: &ServingReport, id: u32| r.service(id).unwrap().latency.mean_ms();
    assert!(
        mean(&shared_report, 0) > mean(&isolated_report, 0) * 1.02,
        "co-location did not slow ResNet-50: {:.2} vs {:.2}",
        mean(&shared_report, 0),
        mean(&isolated_report, 0)
    );
}

#[test]
fn mig_segments_are_isolated() {
    // Two MIG segments on one GPU behave identically to the same segments
    // on two GPUs — the isolation property ParvaGPU is built on.
    use parvagpu::deploy::{MigDeployment, Segment};
    use parvagpu::mig::InstanceProfile;
    use parvagpu::profile::Triplet;
    let seg = |svc: u32, model: Model| Segment {
        service_id: svc,
        model,
        triplet: Triplet::new(InstanceProfile::G3, 16, 2),
        throughput_rps: parvagpu::perf::throughput_rps(
            model,
            parvagpu::perf::ComputeShare::Mig(InstanceProfile::G3),
            16,
            2,
        ),
        latency_ms: 20.0,
    };
    let specs = vec![
        ServiceSpec::new(0, Model::ResNet50, 400.0, 400.0),
        ServiceSpec::new(1, Model::DenseNet121, 400.0, 400.0),
    ];
    let mut same_gpu = MigDeployment::new();
    same_gpu.place_first_fit(seg(0, Model::ResNet50));
    same_gpu.place_first_fit(seg(1, Model::DenseNet121));
    let mut split = MigDeployment::new();
    split.place_first_fit(seg(0, Model::ResNet50));
    // Force the second segment onto a new GPU by filling... simply place on
    // GPU 1 explicitly.
    split
        .place_at(
            seg(1, Model::DenseNet121),
            1,
            parvagpu::mig::Placement::new(InstanceProfile::G3, 4),
        )
        .unwrap();

    let a = Simulation::new(&Deployment::Mig(same_gpu), &specs)
        .config(&cfg(4))
        .run();
    let b = Simulation::new(&Deployment::Mig(split), &specs)
        .config(&cfg(4))
        .run();
    for id in [0u32, 1] {
        let la = a.service(id).unwrap().latency.mean_ms();
        let lb = b.service(id).unwrap().latency.mean_ms();
        assert!(
            (la - lb).abs() < 1e-9,
            "MIG isolation violated for service {id}: {la:.3} vs {lb:.3}"
        );
    }
}

#[test]
fn offered_load_matches_configured_rate() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S1.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let report = Simulation::new(&d, &specs).config(&cfg(5)).run();
    for (spec, svc) in specs.iter().zip(&report.services) {
        let offered_rps = svc.offered as f64 / report.duration_s;
        let rel = (offered_rps - spec.request_rate_rps).abs() / spec.request_rate_rps;
        assert!(
            rel < 0.15,
            "service {}: offered {:.0} rps vs configured {:.0}",
            spec.id,
            offered_rps,
            spec.request_rate_rps
        );
    }
}

#[test]
fn slack_decomposition_is_consistent() {
    // Eq. 3 recomputed from the raw per-server activities must equal the
    // report's aggregate.
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let report = Simulation::new(&d, &specs).config(&cfg(6)).run();
    let sm: f64 = report.servers.iter().map(|s| s.sms).sum();
    let weighted: f64 = report.servers.iter().map(|s| s.sms * s.activity).sum();
    let manual = 1.0 - weighted / sm;
    assert!((manual - internal_slack(&report)).abs() < 1e-12);
}
