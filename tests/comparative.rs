//! Comparative integration tests: the cross-framework *shape* claims of the
//! paper's evaluation (who wins, and why) must hold on this substrate.

use parvagpu::prelude::*;

fn gpus(sched: &dyn Scheduler, specs: &[ServiceSpec]) -> Option<usize> {
    sched.schedule(specs).ok().map(|d| d.gpu_count())
}

#[test]
fn parvagpu_uses_fewest_gpus_everywhere() {
    // Paper Fig. 5: ParvaGPU conserves 46.5%/34.6%/41.0% GPUs on average vs
    // gpulet/iGniter/MIG-serving. The invariant we pin: ParvaGPU is never
    // beaten by any baseline in any scenario.
    let book = ProfileBook::builtin();
    let parva = ParvaGpu::new(&book);
    let baselines: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(MigServing::new(&book)),
    ];
    for sc in Scenario::ALL {
        let specs = sc.services();
        let p = gpus(&parva, &specs).unwrap_or_else(|| panic!("{sc}: ParvaGPU failed"));
        for b in &baselines {
            if let Some(g) = gpus(b.as_ref(), &specs) {
                assert!(p <= g, "{sc}: {} used {g} GPUs, ParvaGPU {p}", b.name());
            }
        }
    }
}

#[test]
fn parvagpu_beats_its_own_ablations() {
    // Fig. 5: ParvaGPU ≤ ParvaGPU-single; Fig. 7: ParvaGPU frag ≤
    // unoptimized frag.
    let book = ProfileBook::builtin();
    let full = ParvaGpu::new(&book);
    let single = ParvaGpuSingle::new(&book);
    let unopt = ParvaGpuUnoptimized::new(&book);
    for sc in Scenario::ALL {
        let specs = sc.services();
        let d_full = full.schedule(&specs).unwrap();
        let d_single = single.schedule(&specs).unwrap();
        let d_unopt = unopt.schedule(&specs).unwrap();
        assert!(
            d_full.gpu_count() <= d_single.gpu_count(),
            "{sc}: MPS should not cost GPUs"
        );
        assert!(
            external_fragmentation(&d_full) <= external_fragmentation(&d_unopt) + 1e-9,
            "{sc}: optimization increased fragmentation"
        );
    }
}

#[test]
fn mps_reduces_gpus_at_high_load() {
    // Paper §IV-B1: ParvaGPU vs ParvaGPU-single shows reductions in the
    // large scenarios (S4/S5/S6). We require a strict win in at least one.
    let book = ProfileBook::builtin();
    let full = ParvaGpu::new(&book);
    let single = ParvaGpuSingle::new(&book);
    let mut strict_win = false;
    for sc in [Scenario::S4, Scenario::S5, Scenario::S6] {
        let specs = sc.services();
        let f = full.schedule(&specs).unwrap().gpu_count();
        let s = single.schedule(&specs).unwrap().gpu_count();
        if f < s {
            strict_win = true;
        }
    }
    assert!(strict_win, "MPS never reduced the fleet in S4-S6");
}

#[test]
fn igniter_fails_only_high_rate_scenarios() {
    // Paper: iGniter runs S1-S4 but not S5/S6.
    let ign = IGniter::new();
    for sc in [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4] {
        assert!(
            ign.schedule(&sc.services()).is_ok(),
            "{sc} should be feasible for iGniter"
        );
    }
    for sc in [Scenario::S5, Scenario::S6] {
        assert!(
            matches!(
                ign.schedule(&sc.services()),
                Err(ScheduleError::RateTooHigh { .. })
            ),
            "{sc} should exceed iGniter's per-workload ceiling"
        );
    }
}

#[test]
fn fragmentation_ranking_matches_fig7() {
    // iGniter fragments; gpulet and full ParvaGPU do not; unoptimized
    // ParvaGPU sits in between on average.
    let book = ProfileBook::builtin();
    let mut unopt_frag_sum = 0.0;
    let mut igniter_frag_sum = 0.0;
    let mut n = 0.0;
    for sc in [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4] {
        let specs = sc.services();
        let d_ign = IGniter::new().schedule(&specs).unwrap();
        let d_unopt = ParvaGpuUnoptimized::new(&book).schedule(&specs).unwrap();
        let d_full = ParvaGpu::new(&book).schedule(&specs).unwrap();
        let d_gpulet = Gpulet::new().schedule(&specs).unwrap();
        igniter_frag_sum += external_fragmentation(&d_ign);
        unopt_frag_sum += external_fragmentation(&d_unopt);
        n += 1.0;
        assert!(external_fragmentation(&d_full) < 1e-9, "{sc}");
        assert!(external_fragmentation(&d_gpulet) < 1e-6, "{sc}");
    }
    assert!(igniter_frag_sum / n > 0.05, "iGniter unexpectedly tight");
    assert!(
        unopt_frag_sum / n > 0.0,
        "unoptimized ParvaGPU never fragments?"
    );
}

#[test]
fn slack_ordering_matches_fig6_on_s4() {
    // Measured internal slack: ParvaGPU lowest; iGniter and MIG-serving
    // substantially higher (paper: +32% and +30% on average). S4 is used
    // because the small scenarios carry a padding-quantization artifact on
    // this substrate (see EXPERIMENTS.md).
    let book = ProfileBook::builtin();
    let specs = Scenario::S4.services();
    let cfg = ServingConfig {
        warmup_s: 1.0,
        duration_s: 4.0,
        drain_s: 2.0,
        seed: 3,
        ..Default::default()
    };
    let slack_of = |d: &Deployment| internal_slack(&Simulation::new(d, &specs).config(&cfg).run());

    let parva = slack_of(&ParvaGpu::new(&book).schedule(&specs).unwrap());
    let migserv = slack_of(&MigServing::new(&book).schedule(&specs).unwrap());
    let igniter = slack_of(&IGniter::new().schedule(&specs).unwrap());
    let gpulet = slack_of(&Gpulet::new().schedule(&specs).unwrap());

    assert!(
        parva < migserv,
        "ParvaGPU {parva:.3} vs MIG-serving {migserv:.3}"
    );
    assert!(
        parva < igniter,
        "ParvaGPU {parva:.3} vs iGniter {igniter:.3}"
    );
    assert!(parva < gpulet, "ParvaGPU {parva:.3} vs gpulet {gpulet:.3}");
    assert!(
        migserv > parva + 0.10,
        "MIG-serving slack gap too small: {migserv:.3}"
    );
    assert!(
        gpulet > parva + 0.10,
        "gpulet slack gap too small: {gpulet:.3}"
    );
}

#[test]
fn high_rate_support_matches_table1() {
    // gpulet, MIG-serving and ParvaGPU handle S6; iGniter does not.
    let book = ProfileBook::builtin();
    let specs = Scenario::S6.services();
    assert!(Gpulet::new().schedule(&specs).is_ok());
    assert!(MigServing::new(&book).schedule(&specs).is_ok());
    assert!(ParvaGpu::new(&book).schedule(&specs).is_ok());
    assert!(IGniter::new().schedule(&specs).is_err());
}
