//! Integration tests for runtime reconfiguration (paper §III-F).

use parvagpu::core::{reconfigure, ParvaGpu};
use parvagpu::prelude::*;

fn setup() -> (
    ParvaGpu,
    Vec<ServiceSpec>,
    Vec<parvagpu::core::Service>,
    parvagpu::deploy::MigDeployment,
) {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = Scenario::S2.services();
    let (services, deployment) = sched.plan(&specs).unwrap();
    (sched, specs, services, deployment)
}

#[test]
fn tightened_slo_respected_after_reconfig() {
    let (sched, _, services, deployment) = setup();
    let updated = ServiceSpec::new(8, Model::ResNet50, 829.0, 100.0);
    let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
    for ps in out.deployment.segments_of(8) {
        assert!(ps.segment.latency_ms < 50.0);
    }
    assert!(out.deployment.validate());
    assert!(out.deployment.capacity_of(8) >= 829.0);
}

#[test]
fn loosened_slo_never_grows_the_fleet() {
    let (sched, _, services, deployment) = setup();
    let updated = ServiceSpec::new(5, Model::MobileNetV2, 677.0, 1_000.0);
    let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
    assert!(out.deployment.gpu_count() <= deployment.gpu_count() + 1);
}

#[test]
fn rate_spike_reconfig_covers_new_demand() {
    let (sched, specs, services, deployment) = setup();
    let updated = ServiceSpec::new(4, Model::InceptionV3, 2_000.0, 419.0);
    let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
    assert!(out.deployment.capacity_of(4) >= 2_000.0);
    // All other services keep their coverage.
    for s in &specs {
        if s.id != 4 {
            assert!(out.deployment.capacity_of(s.id) + 1e-6 >= s.request_rate_rps);
        }
    }
}

#[test]
fn reconfig_reports_changed_gpus_only() {
    let (sched, _, services, deployment) = setup();
    // Tiny rate bump for BERT (it has a single small segment).
    let updated = ServiceSpec::new(0, Model::BertLarge, 21.0, 6_434.0);
    let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
    // The diff set is consistent: every reported GPU index exists in one of
    // the two maps.
    let max_gpus = deployment.gpu_count().max(out.deployment.gpu_count());
    for g in &out.reconfigured_gpus {
        assert!(*g < max_gpus);
    }
}

#[test]
fn sequential_reconfigurations_stay_consistent() {
    let (sched, specs, mut services, mut deployment) = setup();
    // Apply three successive updates and re-validate after each.
    let updates = [
        ServiceSpec::new(1, Model::DenseNet121, 700.0, 183.0),
        ServiceSpec::new(9, Model::Vgg16, 410.0, 250.0),
        ServiceSpec::new(1, Model::DenseNet121, 353.0, 183.0), // revert
    ];
    for updated in updates {
        let out = reconfigure::update_service(&sched, &deployment, &services, updated).unwrap();
        assert!(out.deployment.validate());
        deployment = out.deployment;
        let idx = services
            .iter()
            .position(|s| s.spec.id == updated.id)
            .unwrap();
        services[idx] = out.service;
        for s in &specs {
            let expected = services.iter().find(|x| x.spec.id == s.id).unwrap();
            assert!(
                deployment.capacity_of(s.id) + 1e-6 >= expected.spec.request_rate_rps,
                "service {} lost coverage after updating {}",
                s.id,
                updated.id
            );
        }
    }
}
