//! Property tests over the DES-simulated recovery path: for arbitrary
//! chaos seeds, the simulated recovery latency must respect the analytic
//! envelope, and predictive pre-copy (the spot two-minute warning) must
//! never produce a worse measured dip than the identical failure landing
//! cold.

use parvagpu::fleet::{
    demo_services, run_chaos, FleetConfig, FleetEvent, FleetOrchestrator, FleetSpec,
};
use parvagpu::prelude::*;
use proptest::prelude::*;

fn quick_config(seed: u64, intervals: usize) -> FleetConfig {
    FleetConfig {
        seed,
        intervals,
        serving: ServingConfig {
            warmup_s: 0.3,
            duration_s: 1.5,
            drain_s: 0.7,
            ..ServingConfig::default()
        },
        max_replacements_per_event: 4,
        des_recovery: true,
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary chaos seeds, every event's simulated recovery latency
    /// sits at or above the analytic lower bound (control plane + the
    /// slowest single GPU's own re-flash followed by its own weight copy)
    /// and at or below the fully-serialized upper bound.
    #[test]
    fn simulated_latency_respects_the_analytic_envelope(seed in 0u64..500) {
        let book = ProfileBook::builtin();
        let report = run_chaos(
            &book,
            &demo_services(),
            &FleetSpec::mixed_demo(2),
            &quick_config(seed, 4),
        )
        .expect("demo fleet hosts the demo services");
        for e in &report.events {
            if e.migration.ops.is_empty() {
                prop_assert_eq!(e.simulated_recovery_ms, 0.0);
                continue;
            }
            // Prepared recoveries (warnings, shadow-bridged load shifts)
            // pay only the control plane — below the unprepared bound by
            // construction, so the envelope applies to cold events only.
            let cold = matches!(
                e.event,
                FleetEvent::NodeFailure { .. } | FleetEvent::SpotPreemption { .. }
            );
            if cold {
                prop_assert!(
                    e.simulated_recovery_ms >= e.migration.analytic_lower_bound_ms() - 0.5,
                    "seed {}: sim {:.1} below lower bound {:.1} ({})",
                    seed,
                    e.simulated_recovery_ms,
                    e.migration.analytic_lower_bound_ms(),
                    e.event
                );
            }
            prop_assert!(
                e.simulated_recovery_ms <= e.migration.analytic_upper_bound_ms() + 0.5,
                "seed {}: sim {:.1} above upper bound {:.1} ({})",
                seed,
                e.simulated_recovery_ms,
                e.migration.analytic_upper_bound_ms(),
                e.event
            );
        }
    }

    /// The same node loss, warned vs cold: honoring the two-minute warning
    /// (pre-copy + pre-flash) never yields a worse measured dip, and the
    /// prepared recovery completes in exactly the control-plane delay.
    #[test]
    fn warning_never_worsens_the_measured_dip(seed in 0u64..200) {
        let book = ProfileBook::builtin();
        let serving = quick_config(seed, 1).serving;
        let spec = FleetSpec::mixed_demo(2);
        let mut cold = FleetOrchestrator::bootstrap(&book, &demo_services(), &spec)
            .expect("bootstrap");
        // Pick a victim deterministically from the seed among hosting nodes.
        let hosting = cold.placement().nodes_in_service();
        let victim = hosting[(seed as usize) % hosting.len()];
        let cold_out = cold
            .handle_event(1, FleetEvent::SpotPreemption { node: victim }, &serving)
            .expect("recoverable");
        let mut warm = FleetOrchestrator::bootstrap(&book, &demo_services(), &spec)
            .expect("bootstrap");
        let warm_out = warm
            .handle_event(1, FleetEvent::PreemptionWarning { node: victim }, &serving)
            .expect("recoverable");
        prop_assert!(
            warm_out.measured_dip() <= cold_out.measured_dip() + 1e-9,
            "seed {seed}: warned dip {:.4} worse than cold {:.4}",
            warm_out.measured_dip(),
            cold_out.measured_dip()
        );
        prop_assert!(warm_out.simulated_recovery_ms <= cold_out.simulated_recovery_ms);
    }
}

#[test]
fn des_recovery_reports_are_deterministic_per_seed() {
    // The acceptance bar: the measured-dip path is a pure function of the
    // seed, byte for byte.
    let book = ProfileBook::builtin();
    let spec = FleetSpec::mixed_demo(2);
    let a = run_chaos(&book, &demo_services(), &spec, &quick_config(33, 5)).unwrap();
    let b = run_chaos(&book, &demo_services(), &spec, &quick_config(33, 5)).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
