//! The complete Table I — all six frameworks' capability rows and the
//! behavioural claims behind them, exercised cross-crate.

use parvagpu::baselines::{Gpulet, Gslice, IGniter, MigServing, ParisElsa};
use parvagpu::deploy::{OverheadClass, SpatialScheduling};
use parvagpu::prelude::*;

fn low_rate_specs() -> Vec<ServiceSpec> {
    // Rates every framework (including the single-GPU/single-instance ones)
    // can serve.
    vec![
        ServiceSpec::new(0, Model::ResNet50, 200.0, 205.0),
        ServiceSpec::new(1, Model::MobileNetV2, 300.0, 167.0),
        ServiceSpec::new(2, Model::DenseNet169, 120.0, 217.0),
    ]
}

fn all_schedulers(book: &ProfileBook) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Gslice::new()),
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(ParisElsa::new()),
        Box::new(MigServing::new(book)),
        Box::new(ParvaGpu::new(book)),
    ]
}

#[test]
fn six_rows_match_the_paper() {
    let book = ProfileBook::builtin();
    let expect: Vec<(&str, [&str; 7])> = vec![
        // Paper Table I rows: MPS, MIG, slack prev., frag prev., spatial,
        // high rate, overhead.
        ("GSLICE", ["yes", "no", "yes", "no", "yes", "no", "Low"]),
        ("gpulet", ["yes", "no", "no", "N/A", "2", "yes", "Medium"]),
        ("iGniter", ["yes", "no", "no", "no", "yes", "no", "Low"]),
        ("PARIS+ELSA", ["no", "yes", "no", "no", "N/A", "no", "N/A"]),
        (
            "MIG-serving",
            ["no", "yes", "no", "yes", "yes", "yes", "VeryHigh"],
        ),
        (
            "ParvaGPU",
            ["yes", "yes", "yes", "yes", "yes", "yes", "Low"],
        ),
    ];
    for (sched, (name, row)) in all_schedulers(&book).iter().zip(expect) {
        assert_eq!(sched.name(), name);
        assert_eq!(sched.capabilities().row(), row.map(String::from), "{name}");
    }
}

#[test]
fn every_framework_schedules_the_low_rate_set() {
    let book = ProfileBook::builtin();
    let specs = low_rate_specs();
    for sched in all_schedulers(&book) {
        let d = sched
            .schedule(&specs)
            .unwrap_or_else(|e| panic!("{} failed: {e}", sched.name()));
        assert!(
            d.validate(),
            "{} produced an invalid deployment",
            sched.name()
        );
        for s in &specs {
            assert!(
                d.capacity_of(s.id) > 0.0,
                "{} left service {} without capacity",
                sched.name(),
                s.id
            );
        }
    }
}

#[test]
fn high_rate_column_is_behavioural_not_declarative() {
    // Frameworks whose Table I row says "high request rate: no" must
    // actually reject S5; the others must schedule it.
    let book = ProfileBook::builtin();
    let s5 = Scenario::S5.services();
    for sched in all_schedulers(&book) {
        let outcome = sched.schedule(&s5);
        if sched.capabilities().high_request_rate {
            assert!(
                outcome.is_ok(),
                "{} should handle S5: {:?}",
                sched.name(),
                outcome.err()
            );
        } else {
            assert!(
                matches!(outcome, Err(ScheduleError::RateTooHigh { .. })),
                "{} should reject S5's rates",
                sched.name()
            );
        }
    }
}

#[test]
fn mig_column_determines_deployment_kind() {
    let book = ProfileBook::builtin();
    let specs = low_rate_specs();
    for sched in all_schedulers(&book) {
        let caps = sched.capabilities();
        let d = sched.schedule(&specs).unwrap();
        match d {
            Deployment::Mig(_) => assert!(caps.mig_support, "{}", sched.name()),
            Deployment::Mps(_) => {
                assert!(caps.mps_support && !caps.mig_support, "{}", sched.name())
            }
        }
    }
}

#[test]
fn overhead_classes_reflect_measured_delay_order() {
    // MIG-serving's "very high" overhead must show up as the slowest
    // scheduler on a workload all frameworks accept.
    let book = ProfileBook::builtin();
    let specs = low_rate_specs();
    let mut measured: Vec<(&'static str, Option<OverheadClass>, std::time::Duration)> = Vec::new();
    for sched in all_schedulers(&book) {
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            sched.schedule(&specs).unwrap();
        }
        measured.push((
            sched.name(),
            sched.capabilities().overhead,
            t0.elapsed() / 5,
        ));
    }
    let slowest = measured.iter().max_by_key(|(_, _, d)| *d).unwrap();
    assert_eq!(
        slowest.1,
        Some(OverheadClass::VeryHigh),
        "slowest scheduler was {} ({:?}), expected the VeryHigh row",
        slowest.0,
        slowest.2
    );
}

#[test]
fn paris_elsa_is_the_only_na_spatial_row() {
    let book = ProfileBook::builtin();
    let na: Vec<&str> = all_schedulers(&book)
        .iter()
        .filter(|s| s.capabilities().spatial_scheduling == SpatialScheduling::NotApplicable)
        .map(|s| s.name())
        .collect();
    assert_eq!(na, vec!["PARIS+ELSA"]);
}
