//! End-to-end integration: every paper scenario through the full ParvaGPU
//! pipeline (profile → configure → allocate → serve), asserting the paper's
//! headline claims.

use parvagpu::prelude::*;

fn quick_serving() -> ServingConfig {
    ServingConfig {
        warmup_s: 1.0,
        duration_s: 4.0,
        drain_s: 2.0,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn every_scenario_schedules_and_validates() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    for sc in Scenario::ALL {
        let specs = sc.services();
        let d = sched
            .schedule(&specs)
            .unwrap_or_else(|e| panic!("{sc}: {e}"));
        assert!(d.validate(), "{sc}: structurally invalid deployment");
        for s in &specs {
            assert!(
                d.capacity_of(s.id) + 1e-6 >= s.request_rate_rps,
                "{sc}: service {} under-provisioned",
                s.id
            );
        }
    }
}

#[test]
fn zero_external_fragmentation_in_all_scenarios() {
    // Paper Fig. 7: "ParvaGPU completely eliminates external fragmentation
    // in all scenarios".
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    for sc in Scenario::ALL {
        let d = sched.schedule(&sc.services()).unwrap();
        let frag = external_fragmentation(&d);
        assert!(
            frag.abs() < 1e-9,
            "{sc}: fragmentation {:.2}%",
            frag * 100.0
        );
    }
}

#[test]
fn no_slo_violations_small_scenarios() {
    // Paper Fig. 8: ParvaGPU has no SLO violations. Serving-simulate the
    // lighter scenarios (the heavy ones are covered by the fig8 harness in
    // release mode).
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    for sc in [Scenario::S1, Scenario::S2] {
        let specs = sc.services();
        let d = sched.schedule(&specs).unwrap();
        let report = Simulation::new(&d, &specs).config(&quick_serving()).run();
        assert!(
            (report.overall_compliance_rate() - 1.0).abs() < 1e-9,
            "{sc}: compliance {:.3}%",
            report.overall_compliance_rate() * 100.0
        );
    }
}

#[test]
fn internal_slack_is_single_digit_on_s5() {
    // Paper §IV-B2: "ParvaGPU's internal slack is in the range of 3-5%".
    // Our substrate reproduces the single-digit range on the large
    // scenarios, where last-GPU padding amortizes (S5 measures ~5%); the
    // small scenarios carry a documented quantization artifact (see
    // EXPERIMENTS.md).
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let specs = Scenario::S5.services();
    let d = sched.schedule(&specs).unwrap();
    let report = Simulation::new(&d, &specs).config(&quick_serving()).run();
    let slack = internal_slack(&report);
    assert!(slack < 0.10, "slack {:.1}% too high", slack * 100.0);
    assert!(slack >= 0.0);
}

#[test]
fn scenario_gpu_counts_scale_with_load() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let gpus: Vec<usize> = [
        Scenario::S2,
        Scenario::S3,
        Scenario::S4,
        Scenario::S5,
        Scenario::S6,
    ]
    .iter()
    .map(|sc| sched.schedule(&sc.services()).unwrap().gpu_count())
    .collect();
    // Monotone non-decreasing in offered load (S5's strict SLOs may need
    // more than S6 despite lower aggregate rate — compare within the chains
    // the paper sets up: S2 ≤ S3 ≤ S4 and S4 ≤ S6).
    assert!(gpus[0] <= gpus[1], "{gpus:?}");
    assert!(gpus[1] <= gpus[2], "{gpus:?}");
    assert!(gpus[2] <= gpus[4], "{gpus:?}");
}

#[test]
fn segments_respect_internal_latency_target() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    for sc in Scenario::ALL {
        let specs = sc.services();
        let d = sched.schedule(&specs).unwrap();
        let mig = d.as_mig().unwrap();
        for ps in mig.segments() {
            let spec = specs
                .iter()
                .find(|s| s.id == ps.segment.service_id)
                .unwrap();
            assert!(
                ps.segment.latency_ms < spec.slo.internal_target_ms(),
                "{sc}: segment {} breaks the internal target",
                ps.segment
            );
        }
    }
}

#[test]
fn deployments_fit_valid_mig_configurations() {
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let configs = parvagpu::mig::all_configurations();
    for sc in [Scenario::S2, Scenario::S5] {
        let d = sched.schedule(&sc.services()).unwrap();
        for gpu in d.as_mig().unwrap().gpus() {
            assert!(
                configs.iter().any(|c| c.contains(gpu)),
                "{sc}: GPU layout {gpu} is not MIG-realizable"
            );
        }
    }
}
