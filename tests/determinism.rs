//! Reproducibility: identical inputs must produce bit-identical outputs
//! across the whole pipeline — schedulers, serving simulation, metrics.

use parvagpu::prelude::*;

#[test]
fn schedulers_are_pure_functions() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S3.services();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(ParvaGpu::new(&book)),
        Box::new(ParvaGpuSingle::new(&book)),
        Box::new(ParvaGpuUnoptimized::new(&book)),
        Box::new(Gpulet::new()),
        Box::new(IGniter::new()),
        Box::new(MigServing::new(&book)),
    ];
    for s in schedulers {
        let a = s.schedule(&specs);
        let b = s.schedule(&specs);
        assert_eq!(a, b, "{} is nondeterministic", s.name());
    }
}

#[test]
fn serving_simulation_reproducible() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S1.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let cfg = ServingConfig {
        warmup_s: 0.5,
        duration_s: 3.0,
        drain_s: 1.0,
        seed: 99,
        ..Default::default()
    };
    let a = Simulation::new(&d, &specs).config(&cfg).run();
    let b = Simulation::new(&d, &specs).config(&cfg).run();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "serving simulation diverged under a fixed seed"
    );
}

#[test]
fn profile_book_is_stable() {
    let a = ProfileBook::builtin();
    let b = ProfileBook::builtin();
    assert_eq!(a, b);
    // And survives serialization.
    let json = a.to_json().unwrap();
    assert_eq!(ProfileBook::from_json(&json).unwrap(), a);
}

#[test]
fn service_order_does_not_change_gpu_count() {
    // The allocator sorts by segment size internally; permuting the service
    // list may reshuffle placements but must not change fleet size.
    let book = ProfileBook::builtin();
    let sched = ParvaGpu::new(&book);
    let mut specs = Scenario::S2.services();
    let forward = sched.schedule(&specs).unwrap().gpu_count();
    specs.reverse();
    let backward = sched.schedule(&specs).unwrap().gpu_count();
    assert_eq!(forward, backward);
}
