//! Observability determinism and behavior-neutrality, end to end: every
//! registered built-in spec runs observed at quick scale, and
//!
//! 1. the trace and metrics artifacts are byte-identical across two
//!    observed runs (same spec → same bytes, always),
//! 2. the report of an observed run equals the report of an unobserved
//!    run (tracing never perturbs simulation behavior),
//! 3. the Chrome trace is structurally valid `trace_event` JSON with the
//!    process-name metadata Perfetto keys on.

use parvagpu::obs::Recorder;
use parvagpu::scenarios::{builtin_specs, ScenarioReport, ScenarioSpec};

fn observed(spec: &ScenarioSpec) -> (ScenarioReport, Recorder) {
    spec.run_observed()
        .unwrap_or_else(|e| panic!("{} observed run failed: {e}", spec.name))
}

/// Trace, metrics and gauge artifacts are byte-identical across observed
/// runs of the same spec, for every registered spec.
#[test]
fn artifacts_are_byte_identical_across_runs() {
    for spec in builtin_specs() {
        let spec = spec.quick();
        let (_, a) = observed(&spec);
        let (_, b) = observed(&spec);
        assert_eq!(
            a.chrome_trace(),
            b.chrome_trace(),
            "trace drift in '{}'",
            spec.name
        );
        assert_eq!(
            a.trace_jsonl(),
            b.trace_jsonl(),
            "trace JSONL drift in '{}'",
            spec.name
        );
        assert_eq!(
            a.metrics_jsonl(),
            b.metrics_jsonl(),
            "metrics drift in '{}'",
            spec.name
        );
        assert_eq!(
            a.metrics_csv(),
            b.metrics_csv(),
            "metrics CSV drift in '{}'",
            spec.name
        );
    }
}

/// Observation is behavior-neutral: the observed report serializes
/// byte-identically to the unobserved one, for every registered spec.
#[test]
fn observed_reports_equal_unobserved_reports() {
    for spec in builtin_specs() {
        let spec = spec.quick();
        let plain = spec
            .run()
            .unwrap_or_else(|e| panic!("{} plain run failed: {e}", spec.name));
        let (seen, rec) = observed(&spec);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&seen).unwrap(),
            "observation changed '{}'",
            spec.name
        );
        // And observing actually observed something.
        assert!(
            !rec.events.is_empty(),
            "'{}' produced no trace events",
            spec.name
        );
        assert!(
            !rec.metrics.is_empty(),
            "'{}' produced no gauge rows",
            spec.name
        );
    }
}

/// The Chrome trace artifact has the `trace_event` shape Perfetto loads:
/// a `traceEvents` array whose entries carry `ph`/`name`/`ts`/`pid`/`tid`,
/// with process-name metadata events naming each simulation layer.
#[test]
fn chrome_trace_has_trace_event_shape() {
    for spec in builtin_specs() {
        let spec = spec.quick();
        let (_, rec) = observed(&spec);
        let doc = rec.chrome_trace();
        assert!(
            doc.starts_with('{') && doc.contains("\"traceEvents\":["),
            "'{}' trace is not a trace_event document",
            spec.name
        );
        assert!(
            doc.contains("\"displayTimeUnit\":\"ms\""),
            "'{}' trace missing displayTimeUnit",
            spec.name
        );
        assert!(
            doc.contains("\"ph\":\"M\"") && doc.contains("\"process_name\""),
            "'{}' trace missing process-name metadata",
            spec.name
        );
        // Every JSONL line is one event object with the required keys.
        for line in rec.trace_jsonl().lines() {
            for key in ["\"ph\":", "\"name\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
                assert!(
                    line.contains(key),
                    "'{}' event missing {key}: {line}",
                    spec.name
                );
            }
        }
    }
}

/// The self-profile is the one deliberately non-deterministic artifact,
/// and says so in its own schema.
#[test]
fn self_profile_declares_non_determinism() {
    let spec = parvagpu::scenarios::spec_by_name("fleet_chaos")
        .expect("registered")
        .quick();
    let (_, rec) = observed(&spec);
    let profile = rec.profile_json();
    assert!(profile.contains("\"deterministic\":false"), "{profile}");
    assert!(profile.contains("\"schema\":\"parva-obs/profile/v1\""));
    // Fleet orchestration profiles its four phases.
    for phase in ["schedule", "plan", "probe-fanout", "merge"] {
        assert!(profile.contains(&format!("\"{phase}\"")), "{profile}");
    }
}
