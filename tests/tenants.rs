//! The tenant × service layer end to end: noisy-neighbor isolation under
//! admission quotas, quota-admission conservation, the `tenants` spec
//! block's round-trip (no-tenants default included), default-tenant
//! report neutrality across the registry, and the multi_tenant builtin's
//! P&L ledger arithmetic.

use parvagpu::deploy::Tenant;
use parvagpu::prelude::*;
use parvagpu::scenarios::{builtin_specs, spec_by_name, Mode, TenantSpec};
use proptest::prelude::*;
use serde::Value;

fn s2() -> (Deployment, Vec<ServiceSpec>) {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    (d, specs)
}

fn quick_window(seed: u64) -> ServingConfig {
    ServingConfig {
        warmup_s: 0.5,
        duration_s: 2.0,
        drain_s: 0.5,
        seed,
        arrivals: ArrivalProcess::Poisson,
    }
}

/// The noisy tenant owns S2's hottest service (ResNet-50, id 8, ~829
/// req/s); the victims own everything else.
const NOISY_SERVICE: u32 = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Noisy-neighbor isolation: one tenant switching to an MMPP burst
    /// under an admission quota leaves every other tenant's p99 latency
    /// and SLO attainment within tolerance of its solo baseline (the
    /// victims scheduled and run without the noisy tenant at all).
    #[test]
    fn quota_keeps_victims_at_their_solo_baseline(
        seed in 0u64..1 << 32,
        burst in 2.0f64..10.0,
    ) {
        let book = ProfileBook::builtin();
        let specs = Scenario::S2.services();

        // Solo baseline: the victim services alone, on their own
        // deployment. RNG streams key on service *id*, so the victims'
        // arrival draws are identical with or without the neighbor.
        let solo_specs: Vec<ServiceSpec> = specs
            .iter()
            .filter(|s| s.id != NOISY_SERVICE)
            .map(|s| s.with_tenant(2))
            .collect();
        let victims = [Tenant::new(2, "victim")];
        let solo_d = ParvaGpu::new(&book).schedule(&solo_specs).unwrap();
        let solo = Simulation::new(&solo_d, &solo_specs)
            .tenants(&victims)
            .config(&quick_window(seed))
            .run();
        let solo_victim = &solo.tenants[0];

        // Shared run: neighbor bursting at `burst`× under a 100 req/s
        // quota (~8× over-subscribed), victims untouched.
        let shared_specs: Vec<ServiceSpec> = specs
            .iter()
            .map(|s| s.with_tenant(if s.id == NOISY_SERVICE { 1 } else { 2 }))
            .collect();
        let tenants = [
            Tenant::new(1, "noisy").with_quota_rps(100.0),
            Tenant::new(2, "victim"),
        ];
        let noisy_at = specs.iter().position(|s| s.id == NOISY_SERVICE).unwrap();
        let mut overrides: Vec<Option<ArrivalProcess>> = vec![None; specs.len()];
        overrides[noisy_at] = Some(ArrivalProcess::Mmpp {
            burst_factor: burst,
            mean_phase_s: 0.4,
        });
        let shared_d = ParvaGpu::new(&book).schedule(&shared_specs).unwrap();
        let shared = Simulation::new(&shared_d, &shared_specs)
            .tenants(&tenants)
            .arrival_overrides(&overrides)
            .config(&quick_window(seed))
            .run();
        let noisy = &shared.tenants[0];
        let victim = &shared.tenants[1];

        // The burst is real: the quota actually had to reject.
        prop_assert!(noisy.rejected > 0, "no quota pressure at {burst}x");

        // The victims never feel it.
        let p99_solo = solo_victim.latency.quantile_ms(0.99);
        let p99_shared = victim.latency.quantile_ms(0.99);
        prop_assert!(
            (p99_shared - p99_solo).abs() <= (0.05 * p99_solo).max(1.0),
            "victim p99 moved: solo {p99_solo} ms, beside noisy neighbor {p99_shared} ms"
        );
        prop_assert!(
            (victim.attainment() - solo_victim.attainment()).abs() <= 0.01,
            "victim attainment moved: solo {}, beside noisy neighbor {}",
            solo_victim.attainment(),
            victim.attainment()
        );
    }
}

/// Quota admission conserves requests: per tenant, `admitted + rejected
/// == offered`, service-level rejection counters sum to the tenant
/// rollups, and unlimited tenants reject nothing.
#[test]
fn quota_admission_conserves_offered_load() {
    let (_, base) = s2();
    let specs: Vec<ServiceSpec> = base
        .iter()
        .map(|s| s.with_tenant(if s.id == NOISY_SERVICE { 1 } else { 2 }))
        .collect();
    let book = ProfileBook::builtin();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let tenants = [
        Tenant::new(1, "capped").with_quota_rps(100.0),
        Tenant::new(2, "free"),
    ];
    let report = Simulation::new(&d, &specs)
        .tenants(&tenants)
        .config(&quick_window(7))
        .run();
    assert_eq!(report.tenants.len(), 2);
    for t in &report.tenants {
        assert_eq!(
            t.admitted + t.rejected,
            t.offered,
            "tenant #{} leaks requests at the admission gate",
            t.tenant
        );
        let svc = |f: fn(&parvagpu::serve::ServiceReport) -> u64| -> u64 {
            specs
                .iter()
                .zip(&report.services)
                .filter(|(spec, _)| spec.tenant == t.tenant)
                .map(|(_, s)| f(s))
                .sum()
        };
        assert_eq!(t.offered, svc(|s| s.offered));
        assert_eq!(t.rejected, svc(|s| s.rejected));
        assert_eq!(t.completed, svc(|s| s.completed));
    }
    let capped = &report.tenants[0];
    assert!(capped.rejected > 0, "8x over-quota tenant never rejected");
    assert!(capped.admission_rate() < 0.2);
    let free = &report.tenants[1];
    assert_eq!(free.rejected, 0);
    assert_eq!(free.admitted, free.offered);
    // Every service is bound, so the tenant rollups partition the run.
    let total: u64 = report.services.iter().map(|s| s.offered).sum();
    let rolled: u64 = report.tenants.iter().map(|t| t.offered).sum();
    assert_eq!(total, rolled);
}

/// The `tenants` and `spot_markets` blocks round-trip losslessly, and
/// their no-tenants default serializes to the exact pre-tenant schema:
/// an untenanted spec's JSON carries neither key, and parsing JSON
/// without them yields empty blocks.
#[test]
fn tenant_blocks_round_trip_and_default_to_absent() {
    // The tenanted builtin: full block round-trip, byte-identical.
    let spec = spec_by_name("multi_tenant").expect("registered");
    assert_eq!(spec.tenants.len(), 3);
    assert_eq!(spec.spot_markets.len(), 3);
    let json = serde_json::to_string(&spec).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(back.tenants, spec.tenants);
    assert_eq!(back.spot_markets, spec.spot_markets);

    // The no-tenants default: absent from the serialized form...
    let plain = spec_by_name("quickstart").expect("registered");
    let plain_json = serde_json::to_string(&plain).unwrap();
    assert!(!plain_json.contains("\"tenants\""));
    assert!(!plain_json.contains("\"spot_markets\""));
    // ...parsed back as empty blocks...
    let back: ScenarioSpec = serde_json::from_str(&plain_json).unwrap();
    assert!(back.tenants.is_empty());
    assert!(back.spot_markets.is_empty());
    // ...and explicitly-empty blocks collapse to the same bytes.
    let spelled = format!(
        "{},\"tenants\":[],\"spot_markets\":[]}}",
        &plain_json[..plain_json.len() - 1]
    );
    let back: ScenarioSpec = serde_json::from_str(&spelled).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), plain_json);

    // The committed on-disk example parses and round-trips too.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/tenant_fleet.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec on disk");
    let spec: ScenarioSpec = serde_json::from_str(&text).expect("spec JSON parses");
    assert_eq!(spec.tenants.len(), 2);
    assert!(spec.tenants[0].quota_rps == 0.0 && spec.tenants[1].quota_rps > 0.0);
    let json = serde_json::to_string(&spec).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
}

/// Serialize a scenario report with its tenant-era rollups (`tenants`,
/// `billing`) stripped — what the report's bytes would have been before
/// the tenant layer existed.
fn strip_rollups(report: &ScenarioReport) -> String {
    let v: Value = serde_json::from_str(&serde_json::to_string(report).unwrap()).unwrap();
    let Value::Map(outer) = v else {
        panic!("report is not an object")
    };
    let stripped: Vec<(String, Value)> = outer
        .into_iter()
        .map(|(tag, inner)| match inner {
            Value::Map(fields) => (
                tag,
                Value::Map(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k != "tenants" && k != "billing")
                        .collect(),
                ),
            ),
            other => (tag, other),
        })
        .collect();
    serde_json::to_string(&Value::Map(stripped)).unwrap()
}

/// Wrapping every service of a serve or fleet scenario in one unlimited
/// passthrough tenant is report-neutral: stripping the added rollups
/// restores byte identity with the untenanted run. (Region scenarios are
/// excluded by design — once tenants exist, spill routing switches to
/// the weighted-fair water-filling path, which is documented to allocate
/// differently from the tenant-blind legacy split.)
#[test]
fn passthrough_tenant_is_report_neutral_for_serve_and_fleet() {
    let mut covered = 0;
    for spec in builtin_specs() {
        if matches!(spec.mode, Mode::Region { .. }) || !spec.tenants.is_empty() {
            continue;
        }
        let quick = spec.quick();
        let plain = quick.run().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let mut tenanted = quick.clone();
        tenanted.tenants = vec![TenantSpec {
            id: 1,
            name: "passthrough".into(),
            slo_class: Default::default(),
            quota_rps: 0.0,
            weight: 1.0,
            rate_usd_per_1k: 0.25,
            services: quick
                .workload
                .services()
                .unwrap()
                .iter()
                .map(|s| s.id)
                .collect(),
        }];
        let wrapped = tenanted
            .run()
            .unwrap_or_else(|e| panic!("{} (tenanted): {e}", spec.name));
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            strip_rollups(&wrapped),
            "passthrough tenant changed '{}' beyond its rollups",
            spec.name
        );
        covered += 1;
    }
    assert!(covered >= 5, "only {covered} specs covered");
}

/// The multi_tenant builtin's ledger adds up: revenue is in-SLO
/// completions at the contracted rate, margin is revenue minus cost, the
/// quota-capped tenant visibly rejects, and rows partition cleanly by
/// (interval, tenant).
#[test]
fn multi_tenant_billing_arithmetic_holds() {
    let spec = spec_by_name("multi_tenant").unwrap();
    let report = spec.quick().run().expect("runs");
    let ScenarioReport::Region(r) = report else {
        panic!("multi_tenant must be a region scenario");
    };
    let billing = r.billing.as_ref().expect("tenanted run must bill");
    let intervals = r.intervals.len() + 1; // + baseline
    assert_eq!(billing.rows.len(), intervals * spec.tenants.len());
    let rate_of = |tenant: u32| -> f64 {
        spec.tenants
            .iter()
            .find(|t| t.id == tenant)
            .map(|t| t.rate_usd_per_1k)
            .unwrap()
    };
    for row in &billing.rows {
        assert!(row.rejected <= row.offered);
        let expected = row.completed_within_slo as f64 * rate_of(row.tenant) / 1000.0;
        assert!(
            (row.revenue_usd - expected).abs() < 1e-9,
            "tenant #{} interval {} bills {} instead of {expected}",
            row.tenant,
            row.interval,
            row.revenue_usd
        );
        assert!((row.margin_usd() - (row.revenue_usd - row.cost_usd)).abs() < 1e-12);
        assert!(row.cost_usd >= 0.0);
    }
    // The quota-capped bursty tenant (250 req/s cap) rejects somewhere.
    let bursty: u64 = billing.tenant_rows(3).map(|r| r.rejected).sum();
    assert!(bursty > 0, "quota-capped tenant never rejected");
    // Unlimited tenants never do.
    for id in [1u32, 2] {
        assert_eq!(billing.tenant_rows(id).map(|r| r.rejected).sum::<u64>(), 0);
    }
}
