//! The observability pipeline audits itself, end to end: for **every**
//! registered built-in spec, stream a run to shards, then let
//! `parvactl trace audit` independently recompute the report's
//! accounting from the raw trace/metrics stream — with **exact** float
//! equality. Plus: audits catch doctored reports, `summary` and `diff`
//! render, and `tail` replays a finalized stream losslessly.
//!
//! CI runs the same audit through the binary for each spec (see the
//! observability job), so this suite is the in-tree mirror of that gate.

use parvagpu::cli::{
    run_spec_with, run_trace_audit, run_trace_diff, run_trace_summary, run_trace_tail, ObsPaths,
};
use parvagpu::scenarios::builtin_specs;

struct Streamed {
    dir: std::path::PathBuf,
    shards: String,
    report: String,
}

/// Stream one spec at quick scale into a fresh temp dir; returns the
/// shard dir and the report JSON path.
fn stream(name: &str) -> Streamed {
    let dir = std::env::temp_dir()
        .join("parva-trace-analytics-it")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let shards = dir.join("shards").to_string_lossy().into_owned();
    let obs = ObsPaths {
        stream: Some(shards.clone()),
        ..ObsPaths::default()
    };
    let out = run_spec_with(name, true, true, &obs)
        .unwrap_or_else(|e| panic!("{name} streamed run failed: {e}"));
    let report = dir.join("report.json").to_string_lossy().into_owned();
    std::fs::write(&report, &out.stdout).unwrap();
    Streamed {
        dir,
        shards,
        report,
    }
}

/// `trace audit` passes — exactly, no tolerance — for every registered
/// spec across all three engines.
#[test]
fn audit_matches_report_for_every_registered_spec() {
    for spec in builtin_specs() {
        let s = stream(&spec.name);
        let msg = run_trace_audit(&s.shards, &s.report, None, None)
            .unwrap_or_else(|e| panic!("audit of '{}' diverged:\n{e}", spec.name));
        assert!(msg.contains("all match"), "{}: {msg}", spec.name);
        assert!(msg.contains("exact"), "{}: {msg}", spec.name);
    }
}

/// A report whose numbers were tampered with cannot pass the audit.
#[test]
fn audit_rejects_doctored_reports() {
    let s = stream("quickstart");
    let original = std::fs::read_to_string(&s.report).unwrap();
    // Inflate the first per-service "offered" counter by a digit.
    let doctored = original.replacen("\"offered\":", "\"offered\":7", 1);
    assert_ne!(doctored, original);
    let bad = s.dir.join("doctored.json");
    std::fs::write(&bad, doctored).unwrap();
    let err = run_trace_audit(&s.shards, bad.to_str().unwrap(), None, None)
        .expect_err("doctored report must fail the audit");
    assert!(err.contains("diverged"), "{err}");
    assert!(err.contains("offered"), "{err}");
}

/// A quota-capped serve run audits exactly — the per-service and
/// per-tenant rejection counters are recounted from the `rejected: true`
/// arrival instants — and tampering with a rejection counter is caught.
#[test]
fn audit_recounts_quota_rejections_and_catches_tampering() {
    let spec = r#"{
      "name": "tenant_serve_probe",
      "description": "one quota-capped tenant, one free",
      "seed": 11,
      "window": {"warmup_s": 0.5, "duration_s": 2.0, "drain_s": 0.5},
      "arrivals": null,
      "workload": {"Services": [
        {"model": "ResNet-50", "rate_rps": 800.0, "slo_ms": 200.0},
        {"model": "BERT-large", "rate_rps": 50.0, "slo_ms": 6000.0}
      ]},
      "mode": {"Serve": {"scheduler": "parvagpu", "ingress": []}},
      "tenants": [
        {"id": 1, "name": "capped", "quota_rps": 100.0, "services": [0]},
        {"id": 2, "name": "free", "services": [1]}
      ]
    }"#;
    let dir = std::env::temp_dir()
        .join("parva-trace-analytics-it")
        .join("tenant_serve_probe");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let shards = dir.join("shards").to_string_lossy().into_owned();
    let obs = ObsPaths {
        stream: Some(shards.clone()),
        ..ObsPaths::default()
    };
    let out = run_spec_with(spec, true, true, &obs).unwrap();
    // The quota actually bit: the capped tenant's rejections show up in
    // the report (so the tampering below flips a non-zero counter).
    assert!(out.stdout.contains("\"rejected\":"), "{}", out.stdout);
    assert!(out.stdout.contains("\"tenants\":"), "{}", out.stdout);
    let report = dir.join("report.json").to_string_lossy().into_owned();
    std::fs::write(&report, &out.stdout).unwrap();
    let msg = run_trace_audit(&shards, &report, None, None).unwrap();
    assert!(msg.contains("all match"), "{msg}");
    assert!(msg.contains("exact"), "{msg}");
    // Inflate the first rejection counter by a digit: the audit's
    // independent recount from the arrival instants must disagree.
    let doctored = out.stdout.replacen("\"rejected\":", "\"rejected\":9", 1);
    assert_ne!(doctored, out.stdout);
    let bad = dir.join("doctored.json");
    std::fs::write(&bad, doctored).unwrap();
    let err = run_trace_audit(&shards, bad.to_str().unwrap(), None, None)
        .expect_err("doctored rejection counter must fail the audit");
    assert!(err.contains("diverged"), "{err}");
    assert!(err.contains("rejected"), "{err}");
}

/// An explicit tolerance forgives small float drift but not counter
/// tampering.
#[test]
fn tolerance_relaxes_floats_only() {
    let s = stream("single_node_mps");
    // Huge tolerance: still passes (it's already exact).
    let msg = run_trace_audit(&s.shards, &s.report, None, Some(0.5)).unwrap();
    assert!(msg.contains("tolerance 0.5"), "{msg}");
}

/// `summary` renders phase breakdowns and slowest requests for a serve
/// trace, and `diff` of two different specs reports population deltas.
#[test]
fn summary_and_diff_render() {
    let a = stream("quickstart");
    let b = stream("llm");
    let summary = run_trace_summary(&a.shards, 5).unwrap();
    assert!(summary.contains("request"), "{summary}");
    assert!(summary.contains("recomputed SLO attainment"), "{summary}");
    let diff = run_trace_diff(&a.shards, &b.shards).unwrap();
    assert!(diff.contains("request"), "{diff}");
}

/// Tailing a finalized shard directory replays exactly the lines the
/// stream wrote, both lanes.
#[test]
fn tail_replays_a_finalized_stream_losslessly() {
    let s = stream("fleet_chaos");
    for lane in ["trace", "metrics"] {
        let mut lines = Vec::new();
        run_trace_tail(&s.shards, lane, 1, None, &mut |l| lines.push(l.to_string())).unwrap();
        let concat =
            parvagpu::obs::read_concat_shards(std::path::Path::new(&s.shards), lane).unwrap();
        assert_eq!(
            lines,
            concat.lines().map(str::to_string).collect::<Vec<_>>(),
            "{lane} lane replay drift"
        );
    }
}
