//! The §V discussion, end to end: memory-intensive LLM workloads on
//! successive GPU generations.

use parvagpu::mig::InstanceProfile;
use parvagpu::perf::math::fits_memory_on;
use parvagpu::perf::ComputeShare;
use parvagpu::prelude::*;
use parvagpu::profile::{ProfileBook as Book, ProfileTable, SweepGrid};

fn llm_grid() -> SweepGrid {
    SweepGrid {
        instances: InstanceProfile::ALL.to_vec(),
        batches: vec![1, 2, 4, 8],
        procs: vec![1, 2, 3],
    }
}

fn llm_services() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(0, Model::LlamaLite7B, 30.0, 4_000.0),
        ServiceSpec::new(1, Model::Guanaco7B, 20.0, 5_000.0),
        ServiceSpec::new(2, Model::Guanaco65B, 2.0, 15_000.0),
    ]
}

/// Smallest instance profile whose memory holds the model at batch 1.
fn smallest_fit(model: Model, gpu: GpuModel) -> Option<InstanceProfile> {
    InstanceProfile::ALL
        .iter()
        .copied()
        .find(|g| fits_memory_on(model, ComputeShare::Mig(*g), 1, 1, gpu))
}

#[test]
fn paper_quoted_memory_footprints() {
    // §V: 7 GB (lightweight LLaMA), 5 GB (Guanaco 7B QLoRA), 41 GB
    // (Guanaco 65B) — weights only; the working set adds context + KV.
    let weights = |m: Model| parvagpu::perf::PerfParams::for_model(m).weights_gib;
    assert_eq!(weights(Model::LlamaLite7B), 7.0);
    assert_eq!(weights(Model::Guanaco7B), 5.0);
    assert_eq!(weights(Model::Guanaco65B), 41.0);
}

#[test]
fn feasibility_ladder_improves_with_gpu_memory() {
    // For every LLM, the smallest feasible instance is non-increasing in
    // GPU memory, and the 65B model specifically walks 7g → 3g → 2g.
    let gpus = [
        GpuModel::A100_80GB,
        GpuModel::H200_141GB,
        GpuModel::B200_192GB,
    ];
    for m in Model::LLMS {
        let ladder: Vec<Option<u8>> = gpus
            .iter()
            .map(|g| smallest_fit(m, *g).map(|p| p.gpcs()))
            .collect();
        for w in ladder.windows(2) {
            let (a, b) = (w[0].unwrap_or(u8::MAX), w[1].unwrap_or(u8::MAX));
            assert!(b <= a, "{m}: ladder {ladder:?} not improving");
        }
    }
    let g65 = |gpu| smallest_fit(Model::Guanaco65B, gpu).map(|p| p.gpcs());
    assert_eq!(g65(GpuModel::A100_80GB), Some(7));
    assert_eq!(g65(GpuModel::H200_141GB), Some(3));
    assert_eq!(g65(GpuModel::B200_192GB), Some(2));
}

#[test]
fn a100_40gb_cannot_host_the_65b_at_all() {
    assert_eq!(smallest_fit(Model::Guanaco65B, GpuModel::A100_40GB), None);
    // And the profiler concurs: the sweep drops every point.
    let table = ProfileTable::measure_on(Model::Guanaco65B, &llm_grid(), GpuModel::A100_40GB);
    assert!(table.entries().is_empty());
}

#[test]
fn parvagpu_fleet_shrinks_with_gpu_memory() {
    let mut gpu_counts = Vec::new();
    for gpu in [
        GpuModel::A100_80GB,
        GpuModel::H200_141GB,
        GpuModel::B200_192GB,
    ] {
        let book = Book::measure_on(&Model::LLMS, &llm_grid(), gpu);
        let d = ParvaGpu::new(&book)
            .schedule(&llm_services())
            .unwrap_or_else(|e| panic!("{}: {e}", gpu.name));
        assert!(external_fragmentation(&d) < 1e-9, "{}", gpu.name);
        gpu_counts.push(d.gpu_count());
    }
    assert!(
        gpu_counts.windows(2).all(|w| w[1] <= w[0]),
        "fleet should shrink with memory: {gpu_counts:?}"
    );
    assert!(
        gpu_counts[0] > *gpu_counts.last().unwrap(),
        "B200 should strictly beat A100-80 on this scenario: {gpu_counts:?}"
    );
}

#[test]
fn llm_capacity_still_covers_rates() {
    let book = Book::measure_on(&Model::LLMS, &llm_grid(), GpuModel::B200_192GB);
    let specs = llm_services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    for s in &specs {
        assert!(
            d.capacity_of(s.id) * 0.95 >= s.request_rate_rps,
            "svc {} under-provisioned",
            s.id
        );
    }
}

#[test]
fn cnn_zoo_unaffected_by_llm_additions() {
    // Adding LLM variants must not disturb the Table IV evaluation set.
    assert_eq!(Model::ALL.len(), 11);
    assert!(Model::ALL.iter().all(|m| !m.is_llm()));
    assert_eq!(Model::LLMS.len(), 3);
    // Index stability: the first 11 extended indices are the Table IV order.
    for (i, m) in Model::ALL.iter().enumerate() {
        assert_eq!(m.index(), i);
    }
}
