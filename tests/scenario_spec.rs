//! The declarative scenario layer end to end: schema round-trips, registry
//! execution across all three engines, and determinism of the reports.

use parvagpu::scenarios::{
    builtin_specs, spec_by_name, ClassSplit, Mode, ScenarioReport, ScenarioSpec, Window, Workload,
};

/// Every built-in spec serializes → deserializes → re-serializes byte-
/// identically: the JSON schema is lossless over the whole registry
/// (which collectively covers every field of the spec grammar).
#[test]
fn builtin_specs_round_trip_byte_identically() {
    for spec in builtin_specs() {
        let json = serde_json::to_string(&spec).expect("serializable");
        let back: ScenarioSpec =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let rejson = serde_json::to_string(&back).expect("re-serializable");
        assert_eq!(json, rejson, "round-trip drift in '{}'", spec.name);
    }
}

/// Pretty-printed JSON parses too (the on-disk format people will edit).
#[test]
fn pretty_json_round_trips() {
    for spec in builtin_specs() {
        let pretty = serde_json::to_string_pretty(&spec).expect("serializable");
        let back: ScenarioSpec = serde_json::from_str(&pretty).expect("pretty JSON parses");
        assert_eq!(
            serde_json::to_string(&spec).unwrap(),
            serde_json::to_string(&back).unwrap(),
            "pretty round-trip drift in '{}'",
            spec.name
        );
    }
}

/// Every registered spec runs at quick scale, lands in the report variant
/// its mode promises, and produces byte-identical JSON across two runs.
#[test]
fn every_builtin_runs_deterministically_at_quick_scale() {
    for spec in builtin_specs() {
        let quick = spec.quick();
        let a = quick
            .run()
            .unwrap_or_else(|e| panic!("'{}' failed: {e}", spec.name));
        let b = quick.run().expect("second run");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "nondeterministic report from '{}'",
            spec.name
        );
        match (&quick.mode, &a) {
            (Mode::Serve { .. }, ScenarioReport::Serve(_))
            | (Mode::Fleet { .. }, ScenarioReport::Fleet(_))
            | (Mode::Region { .. }, ScenarioReport::Region(_)) => {}
            _ => panic!("'{}' returned the wrong report variant", spec.name),
        }
        assert!(!a.render().is_empty());
    }
}

/// The three specs the registry adds beyond the old binaries exercise
/// their advertised corners.
#[test]
fn new_corner_specs_deliver_their_corners() {
    // spot_heavy: majority-preemptible pools.
    let spot = spec_by_name("spot_heavy").unwrap();
    if let Mode::Fleet { fleet, .. } = &spot.mode {
        if let parvagpu::scenarios::FleetSource::Pools(pools) = fleet {
            let spot_nodes: usize = pools
                .pools
                .iter()
                .filter(|p| p.preemptible)
                .map(|p| p.count)
                .sum();
            let total: usize = pools.pools.iter().map(|p| p.count).sum();
            assert!(
                spot_nodes * 2 > total,
                "spot_heavy must be majority-preemptible ({spot_nodes}/{total})"
            );
        } else {
            panic!("spot_heavy must carry explicit pools");
        }
    } else {
        panic!("spot_heavy must be a fleet scenario");
    }

    // evacuation_drill: a four-region topology (not the built-in three).
    let drill = spec_by_name("evacuation_drill").unwrap();
    if let Mode::Region {
        federation: parvagpu::scenarios::FederationSource::Custom(fed),
        drill: Some(d),
        ..
    } = &drill.mode
    {
        assert_eq!(fed.regions.len(), 4);
        assert!(d.failback_at > d.evacuate_at);
    } else {
        panic!("evacuation_drill must be a custom-federation region scenario with a drill");
    }

    // single_node_mps: an MPS scheduler plus a split-ingress bursty load.
    let mps = spec_by_name("single_node_mps").unwrap();
    if let Mode::Serve {
        scheduler, ingress, ..
    } = &mps.mode
    {
        assert_eq!(scheduler, "gpulet");
        assert_eq!(ingress.len(), 2);
        assert!(mps.arrivals.is_some(), "bursty arrivals expected");
    } else {
        panic!("single_node_mps must be a serve scenario");
    }
}

/// The MPS corner actually produces MPS class-level reports with the RTT
/// charged, and the fleet corner actually records preemptions.
#[test]
fn corner_reports_show_the_corner_physics() {
    let mps = spec_by_name("single_node_mps").unwrap().quick();
    match mps.run().expect("runs") {
        ScenarioReport::Serve(r) => {
            // Two ingress classes per service, remote one RTT-shifted.
            let classes = r.classes_of(0);
            assert_eq!(classes.len(), 2);
            assert_eq!(classes[1].network_ms, 40.0);
            assert!(classes[1].latency.quantile_ms(0.5) >= 40.0);
        }
        _ => panic!("wrong variant"),
    }

    let spot = spec_by_name("spot_heavy").unwrap().quick();
    match spot.run().expect("runs") {
        ScenarioReport::Fleet(r) => {
            assert!(!r.events.is_empty());
        }
        _ => panic!("wrong variant"),
    }
}

/// A hand-written spec (the README's annotated example, unknown to the
/// registry) parses from JSON and runs — the "experiments as data" loop.
#[test]
fn custom_json_spec_runs() {
    let json = r#"{
        "name": "custom_burst_probe",
        "description": "S1 under 6x bursts with a 30% remote split",
        "seed": 7,
        "window": {"warmup_s": 0.5, "duration_s": 2.0, "drain_s": 0.5},
        "arrivals": {"Mmpp": {"burst_factor": 6.0, "mean_phase_s": 0.4}},
        "workload": {"Table": {"scenario": "S1", "scale": 1}},
        "mode": {"Serve": {
            "scheduler": "parvagpu",
            "ingress": [
                {"share": 0.7, "network_ms": 0.0},
                {"share": 0.3, "network_ms": 60.0}
            ]
        }}
    }"#;
    let spec: ScenarioSpec = serde_json::from_str(json).expect("schema parses");
    assert_eq!(spec.name, "custom_burst_probe");
    let report = spec.run().expect("runs");
    match report {
        ScenarioReport::Serve(r) => {
            assert_eq!(r.services.len(), 6, "S1 has six services");
            assert!(r.classes.len() >= 12, "two classes per service");
        }
        _ => panic!("wrong variant"),
    }
}

/// The committed on-disk spec (`examples/specs/h200_spot_market.json`)
/// stays loadable and runnable — the file `parvactl run <path>` and the
/// CI registry job both exercise.
#[test]
fn on_disk_example_spec_parses_and_runs() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/h200_spot_market.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec on disk");
    let spec: ScenarioSpec = serde_json::from_str(&text).expect("spec JSON parses");
    assert_eq!(spec.name, "h200_spot_market");
    assert!(
        spec_by_name(&spec.name).is_none(),
        "the on-disk example must not shadow a registry name"
    );
    let report = spec.quick().run().expect("runs");
    match report {
        ScenarioReport::Fleet(r) => assert!(!r.events.is_empty()),
        _ => panic!("wrong variant"),
    }
}

/// Malformed specs fail loudly, not silently.
#[test]
fn invalid_specs_are_rejected() {
    let base = ScenarioSpec {
        name: "bad".into(),
        description: String::new(),
        seed: 1,
        window: Window {
            warmup_s: 0.2,
            duration_s: 1.0,
            drain_s: 0.2,
        },
        arrivals: None,
        workload: Workload::Services(vec![]),
        mode: Mode::Serve {
            scheduler: String::new(),
            gpu: None,
            ingress: Vec::new(),
            recovery: None,
        },
        observability: Default::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
    };
    assert!(base.validate().unwrap_err().contains("empty"));

    let mut bad_gpu = base.clone();
    bad_gpu.workload = Workload::FleetDemo;
    bad_gpu.mode = Mode::Serve {
        scheduler: String::new(),
        gpu: Some("TPU-v9".into()),
        ingress: Vec::new(),
        recovery: None,
    };
    assert!(bad_gpu.validate().unwrap_err().contains("TPU-v9"));

    let mut bad_window = base.clone();
    bad_window.workload = Workload::FleetDemo;
    bad_window.window.duration_s = 0.0;
    assert!(bad_window.validate().is_err());

    let mut bad_split = base.clone();
    bad_split.workload = Workload::FleetDemo;
    bad_split.mode = Mode::Serve {
        scheduler: String::new(),
        gpu: None,
        ingress: vec![ClassSplit {
            share: -0.2,
            network_ms: 0.0,
        }],
        recovery: None,
    };
    assert!(bad_split.validate().is_err());

    // Non-finite ingress shares would wedge the arrival process — they
    // must die in validation, not in the event loop.
    let mut inf_split = base.clone();
    inf_split.workload = Workload::FleetDemo;
    inf_split.mode = Mode::Serve {
        scheduler: String::new(),
        gpu: None,
        ingress: vec![ClassSplit {
            share: f64::INFINITY,
            network_ms: 0.0,
        }],
        recovery: None,
    };
    assert!(inf_split.validate().unwrap_err().contains("finite"));

    // A drill landing beyond the run's intervals would silently never
    // fire; a drill region outside the topology likewise.
    let region_base = |drill| ScenarioSpec {
        name: "drilled".into(),
        description: String::new(),
        seed: 1,
        window: base.window,
        arrivals: None,
        workload: Workload::RegionDemo,
        mode: Mode::Region {
            federation: parvagpu::scenarios::FederationSource::ThreeRegionDemo,
            intervals: 4,
            drill: Some(drill),
            diurnal: None,
            follow_the_sun: None,
        },
        observability: Default::default(),
        tenants: Vec::new(),
        spot_markets: Vec::new(),
        resilience: None,
        pods: Vec::new(),
    };
    let late = region_base(parvagpu::region::EvacuationDrill {
        region: 0,
        evacuate_at: 9,
        failback_at: 12,
    });
    assert!(late.validate().unwrap_err().contains("never fire"));
    let late_failback = region_base(parvagpu::region::EvacuationDrill {
        region: 0,
        evacuate_at: 2,
        failback_at: 9,
    });
    assert!(late_failback.validate().unwrap_err().contains("never fire"));
    // Interval 0 is the baseline, not a drillable interval.
    let zero_evac = region_base(parvagpu::region::EvacuationDrill {
        region: 0,
        evacuate_at: 0,
        failback_at: 2,
    });
    assert!(zero_evac.validate().unwrap_err().contains("never fire"));

    // Colliding service ids (explicit vs position default) shadow report
    // lookups; they must be rejected up front.
    let mut dup_ids = base.clone();
    dup_ids.mode = Mode::Serve {
        scheduler: String::new(),
        gpu: None,
        ingress: Vec::new(),
        recovery: None,
    };
    dup_ids.workload = Workload::Services(vec![
        parvagpu::scenarios::ServiceEntry {
            model: "ResNet-50".into(),
            rate_rps: 100.0,
            slo_ms: 200.0,
            id: None, // defaults to position 0
        },
        parvagpu::scenarios::ServiceEntry {
            model: "BERT-large".into(),
            rate_rps: 10.0,
            slo_ms: 6_000.0,
            id: Some(0), // collides with the defaulted id above
        },
    ]);
    assert!(dup_ids.validate().unwrap_err().contains("duplicate"));
    let ghost = region_base(parvagpu::region::EvacuationDrill {
        region: 7,
        evacuate_at: 1,
        failback_at: 3,
    });
    assert!(ghost.validate().unwrap_err().contains("does not exist"));

    assert!(serde_json::from_str::<ScenarioSpec>("{\"nope\": 1}").is_err());
}

/// The follow-the-sun optimizer is opt-in at the spec layer: absent from
/// legacy JSON (both parse-side and serialize-side), validated when
/// present, and the `follow_the_sun` builtin actually produces a priced
/// ledger.
#[test]
fn follow_the_sun_spec_field_is_optional_and_validated() {
    // Pre-optimizer specs serialize without the key; the shipped builtin
    // that enables it carries the key.
    let legacy = spec_by_name("region_failover").unwrap();
    assert!(!serde_json::to_string(&legacy)
        .unwrap()
        .contains("follow_the_sun"));
    let sun = spec_by_name("follow_the_sun").unwrap();
    assert!(serde_json::to_string(&sun)
        .unwrap()
        .contains("\"follow_the_sun\":{\"night_threshold\":"));

    // Old JSON (no key) still parses, defaulting the optimizer off.
    let mut json = serde_json::to_string(&legacy).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    if let Mode::Region { follow_the_sun, .. } = &back.mode {
        assert!(follow_the_sun.is_none());
    } else {
        panic!("region_failover must stay a region scenario");
    }

    // A bad optimizer config is caught by spec validation, not at run time.
    json = serde_json::to_string(&sun)
        .unwrap()
        .replace("\"shift_fraction\":0.9", "\"shift_fraction\":1.5");
    let bad: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert!(bad.validate().unwrap_err().contains("shift_fraction"));

    // The builtin runs and prices its shifts.
    let report = sun.quick().run().expect("follow_the_sun runs");
    let ScenarioReport::Region(r) = report else {
        panic!("follow_the_sun must produce a region report");
    };
    let billing = r.billing.as_ref().expect("optimizer must open a ledger");
    assert!(
        !billing.follow_the_sun.is_empty(),
        "no overnight shift fired"
    );
    assert!(billing
        .follow_the_sun
        .iter()
        .all(|row| row.shifted_rps > 0.0));
}
