//! Node packing and cost accounting over real scheduler output — the §I
//! cost-efficiency claim at cloud billing granularity.

use parvagpu::baselines::{Gpulet, MigServing};
use parvagpu::cluster::{pack, CostReport, NodeType, PricingPlan, VCPUS_PER_PROCESS};
use parvagpu::prelude::*;

#[test]
fn packing_respects_node_capacity_for_every_framework() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S4.services();
    let node = NodeType::P4DE_24XLARGE;
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(ParvaGpu::new(&book)),
        Box::new(Gpulet::new()),
        Box::new(MigServing::new(&book)),
    ];
    for sched in schedulers {
        let d = sched.schedule(&specs).unwrap();
        let plan = pack(&d, node);
        // Lower bound: ceil(gpus / 8); upper bound sanity: one node per GPU.
        assert!(
            plan.node_count() >= node.nodes_for_gpus(d.gpu_count()),
            "{}",
            sched.name()
        );
        assert!(
            plan.node_count() <= d.gpu_count().max(1),
            "{}",
            sched.name()
        );
        for n in &plan.nodes {
            assert!(
                n.gpu_indices.len() <= usize::from(node.gpus),
                "{}",
                sched.name()
            );
            assert!(n.vcpus_used <= node.vcpus, "{}", sched.name());
        }
        // Every deployment GPU appears exactly once.
        let mut all: Vec<usize> = plan
            .nodes
            .iter()
            .flat_map(|n| n.gpu_indices.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..d.gpu_count()).collect::<Vec<_>>(),
            "{}",
            sched.name()
        );
    }
}

#[test]
fn parvagpu_monthly_bill_never_exceeds_baselines() {
    let book = ProfileBook::builtin();
    let node = NodeType::P4DE_24XLARGE;
    for scenario in Scenario::ALL {
        let specs = scenario.services();
        let parva = ParvaGpu::new(&book).schedule(&specs).unwrap();
        let parva_cost =
            CostReport::from_plan("ParvaGPU", &pack(&parva, node), PricingPlan::OnDemand);
        for baseline in [
            Gpulet::new().schedule(&specs).ok(),
            MigServing::new(&book).schedule(&specs).ok(),
        ]
        .into_iter()
        .flatten()
        {
            let cost =
                CostReport::from_plan("baseline", &pack(&baseline, node), PricingPlan::OnDemand);
            assert!(
                parva_cost.usd_per_month <= cost.usd_per_month + 1e-9,
                "{scenario:?}: ParvaGPU ${:.0} > baseline ${:.0}",
                parva_cost.usd_per_month,
                cost.usd_per_month
            );
        }
    }
}

#[test]
fn vcpu_accounting_counts_every_process() {
    let book = ProfileBook::builtin();
    let specs = Scenario::S2.services();
    let d = ParvaGpu::new(&book).schedule(&specs).unwrap();
    let plan = pack(&d, NodeType::P4DE_24XLARGE);
    let total_procs: u32 = d
        .as_mig()
        .unwrap()
        .segments()
        .iter()
        .map(|ps| ps.segment.triplet.procs)
        .sum();
    let total_vcpus: u32 = plan.nodes.iter().map(|n| n.vcpus_used).sum();
    assert_eq!(total_vcpus, total_procs * VCPUS_PER_PROCESS);
}

#[test]
fn spot_pricing_is_cheapest_reserved_in_between() {
    let book = ProfileBook::builtin();
    let d = ParvaGpu::new(&book)
        .schedule(&Scenario::S3.services())
        .unwrap();
    let plan = pack(&d, NodeType::P4DE_24XLARGE);
    let bill = |p: PricingPlan| CostReport::from_plan("x", &plan, p).usd_per_month;
    assert!(bill(PricingPlan::Spot) < bill(PricingPlan::Reserved3Yr));
    assert!(bill(PricingPlan::Reserved3Yr) < bill(PricingPlan::Reserved1Yr));
    assert!(bill(PricingPlan::Reserved1Yr) < bill(PricingPlan::OnDemand));
}

#[test]
fn p4d_is_cheaper_but_smaller_memory() {
    // The A100-40GB node is cheaper per hour; memory-heavy working sets are
    // the reason to pay for p4de (§V's memory argument at node granularity).
    let (p4d, p4de) = (NodeType::P4D_24XLARGE, NodeType::P4DE_24XLARGE);
    assert!(p4d.on_demand_usd_per_hour < p4de.on_demand_usd_per_hour);
    assert!(p4d.gpu_model.total_memory_gib() < p4de.gpu_model.total_memory_gib());
}
