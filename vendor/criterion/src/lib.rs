//! Minimal offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `sample_size`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock measurement
//! loop (one warm-up call, then `sample_size` timed iterations; min /
//! mean / max reported). No statistics, outlier analysis or plotting.
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLE_SIZE` — override every group's sample size (use
//!   `CRITERION_SAMPLE_SIZE=1` for a smoke pass).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("pack", "8gpus")` → `pack/8gpus`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], mirroring criterion's blanket
/// string support.
pub trait IntoBenchmarkId {
    /// The id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// The per-iteration timing context handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once untimed (warm-up), then `sample_size` timed
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn effective_sample_size(requested: usize) -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(requested)
        .max(1)
}

fn run_one(group: &str, id: &BenchmarkId, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: effective_sample_size(sample_size),
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    if bencher.samples.is_empty() {
        println!("{name:<52} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{name:<52} time: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.into_benchmark_id(), self.default_sample_size, |b| {
            f(b)
        });
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id(), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Define a benchmark group function from bench functions, as criterion
/// does. Only the simple `criterion_group!(name, target, …)` form is
/// supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 4,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5, "one warm-up + four timed");
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", "x").label, "f/x");
        assert_eq!(BenchmarkId::from_parameter(3).label, "3");
        assert_eq!("plain".into_benchmark_id().label, "plain");
    }

    #[test]
    fn groups_and_macros_compile_and_run() {
        fn target(c: &mut Criterion) {
            let mut group = c.benchmark_group("shim");
            group.sample_size(2);
            group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
                b.iter(|| black_box(n * n))
            });
            group.finish();
        }
        criterion_group!(benches, target);
        benches();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
