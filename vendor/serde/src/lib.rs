//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a tree-based serialization shim with the same import surface the code
//! uses: `serde::{Serialize, Deserialize}` as derivable traits. Instead of
//! serde's visitor architecture, both traits go through a self-describing
//! [`Value`] tree; `serde_json` (also vendored) renders and parses that
//! tree. The derive macros live in `vendor/serde_derive`.
//!
//! Supported shapes are exactly what this workspace needs: non-generic
//! structs and enums, std scalars, `String`, `&'static str`, `Vec`,
//! `VecDeque`, slices/arrays, `Option`, and small tuples.
//! `#[serde(default)]` is the only honoured attribute.

// Re-export the derive macros under the trait names, like serde's `derive`
// feature does. (Trait and macro namespaces are distinct, so both coexist.)
pub use serde_derive::Deserialize;
pub use serde_derive::Serialize;

/// A self-describing data tree: the intermediate form between typed values
/// and any wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key → value map with stable insertion order (deterministic output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Error raised by [`Deserialize::from_value`].
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Look a field up in a map's entries (helper for derived code).
#[must_use]
pub fn find_field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the self-describing tree.
    ///
    /// # Errors
    /// Returns [`Error`] on a shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// A [`Value`] is its own tree: the identity impls let generic JSON code
// (e.g. trace analyzers reading arbitrary `args` payloads) parse into and
// emit from the self-describing form directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------- Serialize

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
    )*};
}
ser_int!(i8, i16, i32, u8, u16, u32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}
impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Serialize for u64 {
    fn to_value(&self) -> Value {
        i64::try_from(*self).map_or(Value::UInt(*self), Value::Int)
    }
}
impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

// ----------------------------------------------------------- Deserialize

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {got:?}")))
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n).map_err(Error::custom),
                    Value::UInt(n) => <$t>::try_from(*n).map_err(Error::custom),
                    _ => type_err("integer", v),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => type_err("number", v),
        }
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            _ => type_err("single-char string", v),
        }
    }
}
/// `&'static str` fields (catalog names) round-trip by leaking the parsed
/// string — acceptable for the shim's test/CLI workloads.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => type_err("string", v),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => type_err("sequence", v),
        }
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => type_err("sequence", v),
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) if s.len() == N => {
                let items: Result<Vec<T>, Error> = s.iter().map(T::from_value).collect();
                items?
                    .try_into()
                    .map_err(|_| Error::custom(format!("expected {N}-element array")))
            }
            _ => type_err("fixed-size array", v),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) if s.len() == 2 => Ok((A::from_value(&s[0])?, B::from_value(&s[1])?)),
            _ => type_err("2-tuple", v),
        }
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) if s.len() == 3 => Ok((
                A::from_value(&s[0])?,
                B::from_value(&s[1])?,
                C::from_value(&s[2])?,
            )),
            _ => type_err("3-tuple", v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn value_identity_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v).unwrap(), v);
    }
}
