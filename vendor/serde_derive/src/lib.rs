//! Minimal offline stand-in for `serde_derive`.
//!
//! The workspace vendors a tree-based `serde` shim (see `vendor/serde`)
//! because the build environment has no access to crates.io. This crate
//! derives that shim's `Serialize`/`Deserialize` traits for the type shapes
//! the workspace actually uses: non-generic structs (named, tuple, unit)
//! and enums with unit, tuple and struct variants. The only field attribute
//! honoured is `#[serde(default)]`.
//!
//! The parser works directly on `proc_macro::TokenStream` (no `syn`/`quote`)
//! and emits code as strings, which keeps the shim dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

/// Variant payload shape.
enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("derive shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("literal"),
    }
}

// ---------------------------------------------------------------- parsing

/// Does an attribute group body (`serde(...)`) request `default`?
fn attr_is_serde_default(body: &TokenStream) -> bool {
    let mut it = body.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g)))
            if i.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(d) if d.to_string() == "default"))
        }
        _ => false,
    }
}

/// Consume leading attributes; report whether any is `#[serde(default)]`.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut default = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            if attr_is_serde_default(&g.stream()) {
                default = true;
            }
        }
    }
    default
}

/// Consume `pub` / `pub(...)` if present.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Skip tokens to the next top-level `,` (angle-bracket aware). Returns
/// `true` if any tokens were consumed (a non-empty chunk).
fn skip_to_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut depth = 0i32;
    let mut prev_dash = false;
    let mut any = false;
    while let Some(tok) = iter.peek() {
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                iter.next();
                return any;
            }
            if c == '<' {
                depth += 1;
            } else if c == '>' && !prev_dash {
                depth -= 1;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        any = true;
        iter.next();
    }
    any
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    _ => return Err(format!("expected `:` after field `{name}`")),
                }
                skip_to_comma(&mut iter);
                fields.push(Field {
                    name: name.to_string(),
                    default,
                });
            }
            None => break,
            Some(other) => return Err(format!("unexpected token in fields: `{other}`")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut iter = ts.into_iter().peekable();
    let mut n = 0;
    loop {
        // Leading attrs / visibility on each element.
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        if skip_to_comma(&mut iter) {
            n += 1;
        }
    }
    n
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: `{other}`")),
        };
        let data = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantData::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantData::Named(fields)
            }
            _ => VariantData::Unit,
        };
        // Optional `= discriminant`, then the separating comma.
        skip_to_comma(&mut iter);
        variants.push(Variant { name, data });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility ahead of the struct/enum keyword.
    let keyword = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) => {
                let s = i.to_string();
                match s.as_str() {
                    "pub" => {
                        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                    }
                    "struct" | "enum" => break s,
                    _ => return Err(format!("serde shim derive: unsupported item `{s}`")),
                }
            }
            Some(other) => return Err(format!("unexpected token `{other}`")),
            None => return Err("empty derive input".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected type name".into()),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    let kind = if keyword == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        }
    };
    Ok(Item { name, kind })
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantData::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantData::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Seq(::std::vec![{vals}]))])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(::std::vec![{vals}]))])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

/// Deserialization expression for one named-field set, reading from the
/// slice binding `__m`.
fn named_fields_init(owner: &str, type_path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::custom(&::std::format!(\"missing field `{n}` in `{owner}`\")))"
                )
            };
            format!(
                "{n}: match ::serde::find_field(__m, {n:?}) {{ \
                   ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::std::option::Option::None => {missing}, \
                 }}"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let init = named_fields_init(name, name, fields);
            format!(
                "let __m = match __v {{ \
                   ::serde::Value::Map(__m) => __m, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for `{name}`\")), \
                 }}; \
                 let _ = &__m; \
                 ::std::result::Result::Ok({init})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = match __v {{ \
                   ::serde::Value::Seq(__s) if __s.len() == {n} => __s, \
                   _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected {n}-element sequence for `{name}`\")), \
                 }}; \
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn})",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => None,
                        VariantData::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))"
                        )),
                        VariantData::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ \
                                   let __s = match __inner {{ \
                                     ::serde::Value::Seq(__s) if __s.len() == {n} => __s, \
                                     _ => return ::std::result::Result::Err(::serde::Error::custom(\"bad payload for `{name}::{vn}`\")), \
                                   }}; \
                                   ::std::result::Result::Ok({name}::{vn}({elems})) \
                                 }}",
                                elems = elems.join(", ")
                            ))
                        }
                        VariantData::Named(fields) => {
                            let init = named_fields_init(
                                &format!("{name}::{vn}"),
                                &format!("{name}::{vn}"),
                                fields,
                            );
                            Some(format!(
                                "{vn:?} => {{ \
                                   let __m = match __inner {{ \
                                     ::serde::Value::Map(__m) => __m, \
                                     _ => return ::std::result::Result::Err(::serde::Error::custom(\"bad payload for `{name}::{vn}`\")), \
                                   }}; \
                                   let _ = &__m; \
                                   ::std::result::Result::Ok({init}) \
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit_arms}{unit_sep} \
                     _ => ::std::result::Result::Err(::serde::Error::custom(&::std::format!(\"unknown `{name}` variant `{{__s}}`\"))), \
                   }}, \
                   ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                     let (__k, __inner) = &__m[0]; \
                     let _ = __inner; \
                     match __k.as_str() {{ \
                       {payload_arms}{payload_sep} \
                       _ => ::std::result::Result::Err(::serde::Error::custom(&::std::format!(\"unknown `{name}` variant `{{__k}}`\"))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum `{name}`\")), \
                 }}",
                unit_arms = unit_arms.join(", "),
                unit_sep = if unit_arms.is_empty() { "" } else { "," },
                payload_arms = payload_arms.join(", "),
                payload_sep = if payload_arms.is_empty() { "" } else { "," },
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
