//! Minimal offline stand-in for `serde_json`, rendering and parsing the
//! vendored `serde` shim's [`serde::Value`] tree as JSON.
//!
//! Deterministic output (map entries keep insertion order), shortest
//! round-trip float formatting via `f64`'s `Display`, and a strict
//! recursive-descent parser that rejects trailing garbage.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
///
/// # Errors
/// Returns [`Error`] on non-finite floats.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to an indented JSON string.
///
/// # Errors
/// Returns [`Error`] on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// --------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) -> Result<()> {
    let nl = |out: &mut String, depth: usize| {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                nl(out, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                nl(out, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v: Vec<f64> = from_str("[1.5, 2, -3.25]").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -3.25]);
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<f64>>("not json").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
        assert!(from_str::<Vec<f64>>("[1] extra").is_err());
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_and_exponents() {
        let v: Vec<f64> = from_str("[1e3, 2.5E-2]").unwrap();
        assert_eq!(v, vec![1000.0, 0.025]);
        let s: String = from_str(r#""A""#).unwrap();
        assert_eq!(s, "A");
    }
}
