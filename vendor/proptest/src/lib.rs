//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small randomized-testing harness with the `proptest` import surface
//! the repo's property tests use: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `Strategy` with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::sample::Index`, `any::<T>()` and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the case number; rerun with the same build to reproduce — the RNG is
//! seeded deterministically from the test name), and strategies are sampled
//! uniformly rather than with proptest's bias toward edge values.

/// Deterministic splitmix64-based RNG, seeded from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h | 1)
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` family (mirrors proptest's
/// `TestCaseError` just enough for `?`/`return Ok(())` bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from each value and sample it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any draw is in bounds.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.uniform() * (self.end - self.start)
    }
}

/// Sampling every element strategy-wise: `Vec<S>` draws one value per
/// element (matches proptest's `Strategy for Vec<S>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        prop::sample::Index(rng.next_u64() as usize)
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` module tree mirrored from proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec`s with strategy-drawn elements and a length
        /// drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice among explicit options.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        /// A raw index reducible modulo any collection length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(pub(crate) usize);

        impl Index {
            /// Reduce into `[0, len)`; `len` must be positive.
            #[must_use]
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert inside a `proptest!` body; failure aborts the case via `Err`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ::std::default::Default::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                #[allow(unreachable_code, clippy::diverging_sub_expression)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest {} failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(1u32..=3), &mut rng);
            assert!((1..=3).contains(&y));
            let f = Strategy::sample(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: args bind, maps apply, collections size.
        #[test]
        fn macro_machinery(
            v in prop::collection::vec(0u8..10, 2..6),
            x in prop::sample::select(vec![1u32, 2, 3]),
            i in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!((1..=3).contains(&x));
            prop_assert!(i.index(7) < 7);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn flat_map_composes(pair in (1usize..4).prop_flat_map(|n| prop::collection::vec(crate::Just(n), n..n + 1))) {
            prop_assert!(!pair.is_empty());
            prop_assert!(pair.iter().all(|&x| x == pair.len()));
        }
    }
}
